//! Campaign-throughput bench: wall-clock time for fixed-budget Avis
//! campaigns at increasing worker counts, verifying along the way that
//! the parallel engine's `CampaignResult` is bit-identical to the serial
//! one.
//!
//! Two scenarios bracket the engine's speculation behaviour:
//!
//! - **fixed** — the repaired code base: no run is unsafe, so found-bug
//!   pruning never rejects speculated work and the engine scales ~linearly
//!   with the worker count (the realistic large-budget regime, where most
//!   scenarios are safe).
//! - **buggy** — the paper's "current code base": most runs trigger
//!   found-bug pruning, which invalidates speculated siblings, so the
//!   useful parallelism is bounded by the commit-accept ratio. This is
//!   the engine's worst case and is reported for honesty.
//!
//! A third scenario measures the **checkpoint tree** (`avis::snapshot`):
//! a *late-injection* sweep — single sensor failures injected in the last
//! ~40% of the mission, the regime SABRE's deeper anchors live in — run
//! once with checkpointing disabled (every scenario cold-starts from
//! t = 0) and once with a bounded snapshot-cache budget (scenarios fork
//! from the deepest cached prefix). The two campaigns must be
//! bit-identical; the report records cold vs checkpointed scenarios/sec.
//!
//! A **warm-start** scenario measures the persistent snapshot store
//! (`avis::store`): a very-late-injection sweep run storeless-cold,
//! then against an empty store root (persisting its chains), then
//! again against the populated root — the persisted-warm session must
//! finish its search phase >= 2x faster than cold and stay
//! bit-identical at parallelism 1 and 4. `AVIS_BENCH_WARM_SMOKE=1`
//! runs just this scenario's single-session smoke against the
//! `AVIS_BENCH_STORE` root (CI invokes the binary twice and the second
//! invocation gates the cross-process ratio).
//!
//! Two further scenarios measure the PR-5 store and engine work: the
//! **delta-density** sweep compares full snapshots (keyframe stride 1)
//! against delta chains (stride 16) under one dense-anchor, tight-budget
//! configuration — resident cuts and mean fork depth must come out ≥ 3×
//! ahead for delta chains — and the **sharded-dispatch** scenario runs a
//! four-family branch sweep at parallelism 4 under round-robin vs
//! prefix-sharded placement, reporting each mode's local-cache hit share
//! (per-worker stats via `WorkerStatsCollector`).
//!
//! Finally, two PR-6 sections cover the protocol layer: a **codec
//! microbench** (per-message encode/decode cost plus the `Link` burst
//! drain rate, guarding the linear-time `recv` path) and a
//! **link-fault smoke** (a tiny clean-vs-arm-storm matrix sweep that
//! must reproduce the seeded protocol defect bit-identically at
//! parallelism 1 and 2).
//!
//! Unlike the Criterion-style micro-benches this harness owns its `main`
//! (`harness = false`): one campaign is seconds of work, so it runs each
//! configuration once and reports wall-clock plus speedup directly, and
//! it emits the machine-readable `BENCH_campaign.json` consumed by CI as
//! the perf-trajectory artefact. With `AVIS_BENCH_BASELINE` set, the
//! harness compares the measured checkpoint speedup against the
//! committed baseline and exits non-zero on a >20% regression —
//! the speedup is a ratio of two runs on the same host, so the gate is
//! robust to slow CI machines.
//!
//! Environment knobs:
//! - `AVIS_BENCH_SIMS` — simulation budget per campaign (default 64)
//! - `AVIS_BENCH_PARALLELISM` — comma-separated worker counts to measure
//!   (default `2,4`; `1` is always measured first as the baseline)
//! - `AVIS_BENCH_OUT` — output path (default `BENCH_campaign.json`)
//! - `AVIS_BENCH_BASELINE` — committed baseline JSON to gate against
//! - `AVIS_BENCH_WARM_SMOKE` — run only the warm-start smoke (one
//!   session) and exit
//! - `AVIS_BENCH_STORE` — persistent store root for the warm-start
//!   smoke

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget, CampaignResult};
use avis::json::{self, Json};
use avis::matrix::ScenarioMatrix;
use avis::runner::{ExperimentConfig, ExperimentRunner};
use avis::snapshot::CheckpointConfig;
use avis::strategy::{Candidate, Decision, Observation, Strategy, StrategyContext};
use avis_firmware::{BugId, BugSet, FirmwareProfile};
use avis_hinj::{
    FaultPlan, FaultSpec, LinkDirection, LinkFaultKind, LinkFaultPlan, LinkFaultSpec, StormCommand,
};
use avis_mavlite::{decode_frame, encode_frame, Endpoint, Link, Message, ProtocolMode};
use avis_sim::{SensorInstance, SensorKind, SensorNoise};
use avis_workload::auto_box_mission;
use std::time::Instant;

/// Snapshot-cache budget for the checkpointed measurement (bytes): small
/// enough to prove the memory bound is honoured, large enough to hold the
/// fault-free chain plus a few branches.
const CHECKPOINT_BUDGET_BYTES: usize = 48 * 1024 * 1024;

/// Profiling runs funding the late-injection sweep's monitor calibration
/// (shared by the campaign configuration and the scenarios/s
/// denominator).
const LATE_SWEEP_PROFILING_RUNS: usize = 2;

fn run_campaign(bugs: &BugSet, simulations: usize, parallelism: usize) -> (CampaignResult, f64) {
    let campaign = Campaign::builder()
        .firmware(FirmwareProfile::ArduPilotLike)
        .bugs(bugs.clone())
        .workload(auto_box_mission())
        .approach(Approach::Avis)
        .budget(Budget::simulations(simulations))
        .parallelism(parallelism)
        .max_duration(110.0)
        // Two profiling runs: liveliness calibration from a single golden
        // trace has no run-to-run variance to measure and flags every
        // faulted run as divergent.
        .profiling_runs(2)
        .build();
    let start = Instant::now();
    let result = campaign.run();
    (result, start.elapsed().as_secs_f64())
}

fn bench_scenario(name: &str, bugs: &BugSet, simulations: usize, worker_counts: &[usize]) -> Json {
    println!("scenario `{name}`: {simulations}-simulation Avis campaign");
    let (serial_result, serial_seconds) = run_campaign(bugs, simulations, 1);
    println!(
        "  parallelism=1: {serial_seconds:.2}s wall, {} unsafe conditions, {} simulations",
        serial_result.unsafe_count(),
        serial_result.simulations
    );

    let mut measurements = vec![(1usize, serial_seconds)];
    for &workers in worker_counts {
        if workers <= 1 {
            continue;
        }
        let (result, seconds) = run_campaign(bugs, simulations, workers);
        let identical = result == serial_result;
        println!(
            "  parallelism={workers}: {seconds:.2}s wall, speedup {:.2}x, result {}",
            serial_seconds / seconds,
            if identical {
                "bit-identical to serial"
            } else {
                "DIVERGED FROM SERIAL"
            }
        );
        assert!(
            identical,
            "parallel campaign ({name}, workers={workers}) diverged from the serial result"
        );
        measurements.push((workers, seconds));
    }

    json::object(vec![
        ("scenario", Json::String(name.to_string())),
        (
            "unsafe_conditions",
            Json::Number(serial_result.unsafe_count() as f64),
        ),
        (
            "simulations",
            Json::Number(serial_result.simulations as f64),
        ),
        (
            "measurements",
            Json::Array(
                measurements
                    .iter()
                    .map(|&(workers, seconds)| {
                        json::object(vec![
                            ("parallelism", Json::Number(workers as f64)),
                            ("wall_seconds", Json::Number(seconds)),
                            ("speedup_vs_serial", Json::Number(serial_seconds / seconds)),
                            ("result_identical", Json::Bool(true)),
                            // These campaigns never touch a snapshot
                            // store; the flag keeps every measurement
                            // object comparable with the warm-start
                            // scenario's.
                            ("warm_start", Json::Bool(false)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The late-injection sweep: one round of single sensor failures stepped
/// across the last ~40% of the golden run — every scenario shares a long
/// fault-free prefix, which is exactly what the checkpoint tree caches.
struct LateSweep {
    plans: Vec<FaultPlan>,
    proposed: bool,
}

impl LateSweep {
    fn new() -> Self {
        LateSweep {
            plans: Vec::new(),
            proposed: false,
        }
    }
}

impl Strategy for LateSweep {
    fn name(&self) -> &str {
        "Late-injection sweep"
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        let instances = [
            SensorInstance::new(SensorKind::Accelerometer, 0),
            SensorInstance::new(SensorKind::Gps, 0),
            SensorInstance::new(SensorKind::Gps, 1),
            SensorInstance::new(SensorKind::Barometer, 0),
            SensorInstance::new(SensorKind::Compass, 0),
            SensorInstance::new(SensorKind::Gyroscope, 0),
        ];
        let start = ctx.golden.duration * 0.6;
        let end = ctx.golden.duration * 0.95;
        let slots = 8;
        for slot in 0..slots {
            let time = start + (end - start) * slot as f64 / slots as f64;
            for instance in instances {
                self.plans
                    .push(FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]));
            }
        }
    }

    fn propose(&mut self) -> Vec<Candidate> {
        if std::mem::replace(&mut self.proposed, true) {
            return Vec::new();
        }
        self.plans
            .iter()
            .enumerate()
            .map(|(slot, plan)| Candidate::speculate(slot as u64, plan.clone()))
            .collect()
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        Decision::run(self.plans[candidate.token() as usize].clone())
    }

    fn observe(&mut self, _observation: &Observation<'_>) {}
}

/// The warm-start sweep: a handful of *very* late single-sensor
/// failures (last ~10% of the golden run). Within one session only the
/// first plan pays the full fault-free prefix — the rest fork from the
/// in-memory tier — so a session that hydrates the prefix chain from a
/// persistent store skips that one cold run too, and the store's
/// benefit dominates the session's wall time.
struct WarmSweep {
    plans: Vec<FaultPlan>,
    proposed: bool,
}

/// Scenario plans per warm-start session (one very late failure each).
const WARM_SWEEP_PLANS: usize = 4;

impl WarmSweep {
    fn new() -> Self {
        WarmSweep {
            plans: Vec::new(),
            proposed: false,
        }
    }
}

impl Strategy for WarmSweep {
    fn name(&self) -> &str {
        "Warm-start sweep"
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        let instances = [
            SensorInstance::new(SensorKind::Gps, 0),
            SensorInstance::new(SensorKind::Accelerometer, 0),
            SensorInstance::new(SensorKind::Barometer, 0),
            SensorInstance::new(SensorKind::Compass, 0),
        ];
        for (slot, instance) in instances.into_iter().take(WARM_SWEEP_PLANS).enumerate() {
            let time = ctx.golden.duration * (0.90 + 0.015 * slot as f64);
            self.plans
                .push(FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]));
        }
    }

    fn propose(&mut self) -> Vec<Candidate> {
        if std::mem::replace(&mut self.proposed, true) {
            return Vec::new();
        }
        self.plans
            .iter()
            .enumerate()
            .map(|(slot, plan)| Candidate::speculate(slot as u64, plan.clone()))
            .collect()
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        Decision::run(self.plans[candidate.token() as usize].clone())
    }

    fn observe(&mut self, _observation: &Observation<'_>) {}
}

/// The branching sweep the sharded-dispatch scenario runs: four distinct
/// *first* failures fork four prefix branches off the golden chain, and
/// a late second failure is swept across each branch — 48 two-fault
/// plans in four prefix families, proposed interleaved (consecutive
/// candidates alternate branches, the way SABRE's queue mixes anchors).
/// Under a cache budget that cannot hold every branch, placement decides
/// whether a worker's local cache keeps *its* branches hot (sharded) or
/// all four branches keep evicting each other on every worker
/// (round-robin).
struct BranchSweep {
    plans: Vec<FaultPlan>,
    proposed: bool,
}

impl BranchSweep {
    fn new() -> Self {
        BranchSweep {
            plans: Vec::new(),
            proposed: false,
        }
    }
}

impl Strategy for BranchSweep {
    fn name(&self) -> &str {
        "Branch sweep"
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        let branch_time = ctx.golden.duration * 0.35;
        let firsts = [
            SensorInstance::new(SensorKind::Accelerometer, 0),
            SensorInstance::new(SensorKind::Gps, 0),
            SensorInstance::new(SensorKind::Barometer, 0),
            SensorInstance::new(SensorKind::Compass, 0),
        ];
        let second = SensorInstance::new(SensorKind::Gps, 1);
        let start = ctx.golden.duration * 0.6;
        let end = ctx.golden.duration * 0.95;
        for slot in [11usize, 3, 7, 0, 9, 5, 1, 10, 4, 8, 2, 6] {
            let time = start + (end - start) * slot as f64 / 12.0;
            for first in firsts {
                self.plans.push(FaultPlan::from_specs(vec![
                    FaultSpec::new(first, branch_time),
                    FaultSpec::new(second, time),
                ]));
            }
        }
    }

    fn propose(&mut self) -> Vec<Candidate> {
        if std::mem::replace(&mut self.proposed, true) {
            return Vec::new();
        }
        self.plans
            .iter()
            .enumerate()
            .map(|(slot, plan)| Candidate::speculate(slot as u64, plan.clone()))
            .collect()
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        Decision::run(self.plans[candidate.token() as usize].clone())
    }

    fn observe(&mut self, _observation: &Observation<'_>) {}
}

/// Stamps the moment profiling/calibration ends, so the measurement
/// covers only the scenario-search phase (profiling runs execute once
/// and are never checkpointed — including them would dilute the
/// comparison at small budgets).
struct SearchPhaseClock {
    search_started: Option<Instant>,
}

impl avis::campaign::CampaignObserver for SearchPhaseClock {
    fn on_event(&mut self, event: &avis::campaign::CampaignEvent) {
        if matches!(
            event,
            avis::campaign::CampaignEvent::ProfilingFinished { .. }
        ) {
            self.search_started = Some(Instant::now());
        }
    }
}

/// Runs the late-injection sweep, returning the result and the wall time
/// of the search phase alone.
fn run_late_injection(
    simulations: usize,
    checkpoints: CheckpointConfig,
    parallelism: usize,
) -> (CampaignResult, f64) {
    run_sweep_dispatched(
        simulations,
        checkpoints,
        parallelism,
        LateSweep::new(),
        avis::DispatchMode::default(),
        None,
    )
}

/// [`run_branch_sweep_dispatched`] over the [`BranchSweep`] strategy.
fn run_branch_sweep_dispatched(
    simulations: usize,
    checkpoints: CheckpointConfig,
    parallelism: usize,
    dispatch: avis::DispatchMode,
    worker_stats: Option<std::sync::Arc<avis::WorkerStatsCollector>>,
) -> (CampaignResult, f64) {
    run_sweep_dispatched(
        simulations,
        checkpoints,
        parallelism,
        BranchSweep::new(),
        dispatch,
        worker_stats,
    )
}

/// Runs a one-round sweep strategy with an explicit dispatch mode and an
/// optional per-worker statistics collector (the sharded-dispatch
/// scenario's instrumentation).
fn run_sweep_dispatched(
    simulations: usize,
    checkpoints: CheckpointConfig,
    parallelism: usize,
    sweep: impl Strategy + 'static,
    dispatch: avis::DispatchMode,
    worker_stats: Option<std::sync::Arc<avis::WorkerStatsCollector>>,
) -> (CampaignResult, f64) {
    let mut builder = Campaign::builder()
        .firmware(FirmwareProfile::ArduPilotLike)
        .bugs(BugSet::none())
        .workload(auto_box_mission())
        .strategy(sweep)
        .budget(Budget::simulations(simulations))
        .parallelism(parallelism)
        .max_duration(110.0)
        .profiling_runs(LATE_SWEEP_PROFILING_RUNS)
        .checkpoints(checkpoints)
        // Scalar lanes: these scenarios isolate the checkpoint store
        // (cold-vs-checkpointed ratio, fork depth, local-hit share),
        // which lockstep batching would partly absorb — the batched
        // path has its own scenario, `batched-lockstep`, including its
        // checkpointed and combined variants.
        .lockstep_lanes(1)
        .dispatch(dispatch);
    if let Some(collector) = worker_stats {
        builder = builder.worker_stats(collector);
    }
    let campaign = builder.build();
    let mut clock = SearchPhaseClock {
        search_started: None,
    };
    let result = campaign.run_with_observer(&mut clock);
    let search_seconds = clock
        .search_started
        .expect("campaign emitted ProfilingFinished")
        .elapsed()
        .as_secs_f64();
    (result, search_seconds)
}

/// Runs the late-injection sweep with an explicit lockstep lane count
/// and defect set (the batched-lockstep scenario's runner).
fn run_lockstep_sweep(
    simulations: usize,
    bugs: &BugSet,
    checkpoints: CheckpointConfig,
    parallelism: usize,
    lanes: usize,
) -> (CampaignResult, f64) {
    let campaign = Campaign::builder()
        .firmware(FirmwareProfile::ArduPilotLike)
        .bugs(bugs.clone())
        .workload(auto_box_mission())
        .strategy(LateSweep::new())
        .budget(Budget::simulations(simulations))
        .parallelism(parallelism)
        .max_duration(110.0)
        .profiling_runs(LATE_SWEEP_PROFILING_RUNS)
        .checkpoints(checkpoints)
        .lockstep_lanes(lanes)
        .build();
    let mut clock = SearchPhaseClock {
        search_started: None,
    };
    let result = campaign.run_with_observer(&mut clock);
    let search_seconds = clock
        .search_started
        .expect("campaign emitted ProfilingFinished")
        .elapsed()
        .as_secs_f64();
    (result, search_seconds)
}

/// The batched-lockstep scenario: the late-injection sweep at equal
/// budget, scalar (`lockstep_lanes(1)`) vs SoA lockstep batches of 4 and
/// 8 lanes (`avis::batch`), on the fixed and buggy firmware. The
/// fixed-sweep cold comparison is the headline step-throughput number —
/// the sweep's same-slot siblings share a 60–95% injection prefix that
/// lockstep advances once instead of `lanes` times — and carries a
/// hard gate of >= 1.5x. Every batched variant (cold, checkpointed,
/// parallelism 1 and 4) must be bit-identical to the scalar cold
/// reference.
fn bench_batched_lockstep(simulations: usize) -> (Json, f64) {
    println!(
        "scenario `batched-lockstep`: {simulations}-simulation sweeps, scalar vs SoA lockstep lanes"
    );
    let fixed = BugSet::none();
    let buggy = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
    let cold = CheckpointConfig::disabled;
    let budgeted = || CheckpointConfig::with_max_bytes(CHECKPOINT_BUDGET_BYTES);

    // Fixed sweep, cold, parallelism 1: scalar vs 4 and 8 lanes.
    let (scalar_result, scalar_seconds) = run_lockstep_sweep(simulations, &fixed, cold(), 1, 1);
    let scenarios = scalar_result
        .simulations
        .saturating_sub(LATE_SWEEP_PROFILING_RUNS);
    let scalar_sps = scenarios as f64 / scalar_seconds;
    println!("  fixed scalar:     {scalar_seconds:.2}s wall, {scenarios} scenarios, {scalar_sps:.2} scenarios/s");
    let (lanes4_result, lanes4_seconds) = run_lockstep_sweep(simulations, &fixed, cold(), 1, 4);
    let lanes4_sps = scenarios as f64 / lanes4_seconds;
    let speedup4 = lanes4_sps / scalar_sps;
    let (lanes8_result, lanes8_seconds) = run_lockstep_sweep(simulations, &fixed, cold(), 1, 8);
    let lanes8_sps = scenarios as f64 / lanes8_seconds;
    let speedup8 = lanes8_sps / scalar_sps;
    let cold_identical = lanes4_result == scalar_result && lanes8_result == scalar_result;
    println!(
        "  fixed lanes=4:    {lanes4_seconds:.2}s wall, {lanes4_sps:.2} scenarios/s, speedup {speedup4:.2}x, result {}",
        if cold_identical { "bit-identical to scalar" } else { "DIVERGED FROM SCALAR" }
    );
    println!(
        "  fixed lanes=8:    {lanes8_seconds:.2}s wall, {lanes8_sps:.2} scenarios/s, speedup {speedup8:.2}x"
    );
    assert!(
        cold_identical,
        "batched lockstep sweep diverged from the scalar result"
    );
    assert!(
        speedup4 >= 1.5,
        "batched lockstep fixed-sweep speedup {speedup4:.2}x fell below the 1.5x gate \
         (scalar {scalar_sps:.2} vs lanes=4 {lanes4_sps:.2} scenarios/s at equal budget)"
    );

    // Result identity across the remaining execution modes: batched +
    // checkpointed, and both batched variants at parallelism 4.
    let (ckpt_result, _) = run_lockstep_sweep(simulations, &fixed, budgeted(), 1, 4);
    assert!(
        ckpt_result == scalar_result,
        "batched+checkpointed sweep diverged from the scalar cold result"
    );
    let (par4_cold_result, _) = run_lockstep_sweep(simulations, &fixed, cold(), 4, 4);
    let (par4_ckpt_result, _) = run_lockstep_sweep(simulations, &fixed, budgeted(), 4, 4);
    assert!(
        par4_cold_result == scalar_result && par4_ckpt_result == scalar_result,
        "parallel-4 batched sweep diverged from the scalar cold result"
    );
    println!("  fixed variants:   checkpointed and parallel-4 (cold + checkpointed) bit-identical");

    // Buggy sweep: unsafe commits raise the sizer's bug rate, which
    // withdraws speculative batching mid-campaign (the documented
    // bypass) — identity must hold regardless; the speedup is reported,
    // not gated.
    let (buggy_scalar_result, buggy_scalar_seconds) =
        run_lockstep_sweep(simulations, &buggy, cold(), 1, 1);
    let (buggy_lanes4_result, buggy_lanes4_seconds) =
        run_lockstep_sweep(simulations, &buggy, cold(), 1, 4);
    let buggy_speedup = buggy_scalar_seconds / buggy_lanes4_seconds;
    assert!(
        buggy_lanes4_result == buggy_scalar_result,
        "buggy batched sweep diverged from its scalar result"
    );
    println!(
        "  buggy lanes=4:    {buggy_lanes4_seconds:.2}s vs scalar {buggy_scalar_seconds:.2}s ({buggy_speedup:.2}x), {} unsafe conditions, bit-identical",
        buggy_scalar_result.unsafe_count()
    );

    let section = json::object(vec![
        ("scenario", Json::String("batched-lockstep".to_string())),
        ("simulations", Json::Number(scenarios as f64)),
        ("scalar_wall_seconds", Json::Number(scalar_seconds)),
        ("scalar_scenarios_per_sec", Json::Number(scalar_sps)),
        ("lanes4_wall_seconds", Json::Number(lanes4_seconds)),
        ("lanes4_scenarios_per_sec", Json::Number(lanes4_sps)),
        ("lanes4_speedup", Json::Number(speedup4)),
        ("lanes8_wall_seconds", Json::Number(lanes8_seconds)),
        ("lanes8_scenarios_per_sec", Json::Number(lanes8_sps)),
        ("lanes8_speedup", Json::Number(speedup8)),
        (
            "buggy_scalar_wall_seconds",
            Json::Number(buggy_scalar_seconds),
        ),
        (
            "buggy_lanes4_wall_seconds",
            Json::Number(buggy_lanes4_seconds),
        ),
        ("buggy_lanes4_speedup", Json::Number(buggy_speedup)),
        (
            "buggy_unsafe_conditions",
            Json::Number(buggy_scalar_result.unsafe_count() as f64),
        ),
        ("result_identical", Json::Bool(true)),
    ]);
    (section, speedup4)
}

/// Cold vs checkpointed execution of the late-injection sweep. Returns
/// the JSON section and the measured speedup.
fn bench_checkpointing(simulations: usize) -> (Json, f64) {
    println!("scenario `late-injection`: {simulations}-simulation checkpoint-tree sweep");
    let (cold_result, cold_seconds) =
        run_late_injection(simulations, CheckpointConfig::disabled(), 1);
    let scenarios = cold_result
        .simulations
        .saturating_sub(LATE_SWEEP_PROFILING_RUNS);
    let cold_sps = scenarios as f64 / cold_seconds;
    println!("  cold:          {cold_seconds:.2}s wall, {scenarios} scenarios, {cold_sps:.2} scenarios/s");

    let (checkpointed_result, checkpointed_seconds) = run_late_injection(
        simulations,
        CheckpointConfig::with_max_bytes(CHECKPOINT_BUDGET_BYTES),
        1,
    );
    let checkpointed_sps = scenarios as f64 / checkpointed_seconds;
    let speedup = checkpointed_sps / cold_sps;
    let identical = checkpointed_result == cold_result;
    println!(
        "  checkpointed:  {checkpointed_seconds:.2}s wall, {checkpointed_sps:.2} scenarios/s, speedup {speedup:.2}x, result {}",
        if identical {
            "bit-identical to cold"
        } else {
            "DIVERGED FROM COLD"
        }
    );
    assert!(
        identical,
        "checkpointed campaign diverged from cold execution"
    );

    // The parallel-4 checkpointed sweep: per-worker caches warmed
    // through the shared tier (one worker's cold chain serves every
    // sibling after the next wavefront republish).
    let (par4_cold_result, par4_cold_seconds) =
        run_late_injection(simulations, CheckpointConfig::disabled(), 4);
    let (par4_result, par4_seconds) = run_late_injection(
        simulations,
        CheckpointConfig::with_max_bytes(CHECKPOINT_BUDGET_BYTES),
        4,
    );
    let par4_sps = scenarios as f64 / par4_seconds;
    let par4_speedup = (scenarios as f64 / par4_seconds) / (scenarios as f64 / par4_cold_seconds);
    assert!(
        par4_result == cold_result && par4_cold_result == cold_result,
        "parallel-4 sweep diverged from the serial cold result"
    );
    println!(
        "  parallel-4:    cold {par4_cold_seconds:.2}s, checkpointed {par4_seconds:.2}s ({par4_sps:.2} scenarios/s, {par4_speedup:.2}x vs cold-4), results bit-identical"
    );

    let section = json::object(vec![
        ("scenario", Json::String("late-injection".to_string())),
        ("simulations", Json::Number(scenarios as f64)),
        (
            "cache_budget_bytes",
            Json::Number(CHECKPOINT_BUDGET_BYTES as f64),
        ),
        ("cold_wall_seconds", Json::Number(cold_seconds)),
        ("cold_scenarios_per_sec", Json::Number(cold_sps)),
        (
            "checkpointed_wall_seconds",
            Json::Number(checkpointed_seconds),
        ),
        (
            "checkpointed_scenarios_per_sec",
            Json::Number(checkpointed_sps),
        ),
        ("speedup", Json::Number(speedup)),
        (
            "parallel4_cold_wall_seconds",
            Json::Number(par4_cold_seconds),
        ),
        (
            "parallel4_checkpointed_wall_seconds",
            Json::Number(par4_seconds),
        ),
        (
            "parallel4_checkpointed_scenarios_per_sec",
            Json::Number(par4_sps),
        ),
        ("parallel4_speedup_vs_cold", Json::Number(par4_speedup)),
        ("result_identical", Json::Bool(true)),
    ]);
    (section, speedup)
}

/// Search-phase clock that also records what the snapshot store
/// hydrated, so the warm-start scenario can tell a genuine warm start
/// from an accidentally-cold one.
struct WarmSessionClock {
    search_started: Option<Instant>,
    hydrated_chains: u64,
}

impl avis::campaign::CampaignObserver for WarmSessionClock {
    fn on_event(&mut self, event: &avis::campaign::CampaignEvent) {
        match event {
            avis::campaign::CampaignEvent::ProfilingFinished { .. } => {
                self.search_started = Some(Instant::now());
            }
            avis::campaign::CampaignEvent::StoreHydrated { chains, .. } => {
                self.hydrated_chains = *chains;
            }
            _ => {}
        }
    }
}

/// Runs one warm-start sweep session, optionally against a persistent
/// store root. Returns the result, the search-phase wall time, and the
/// number of chains hydrated from disk (0 without a store or on a
/// first session).
fn run_warm_session(
    parallelism: usize,
    store: Option<&std::path::Path>,
) -> (CampaignResult, f64, u64) {
    let mut builder = Campaign::builder()
        .firmware(FirmwareProfile::ArduPilotLike)
        .bugs(BugSet::none())
        .workload(auto_box_mission())
        .strategy(WarmSweep::new())
        .budget(Budget::simulations(
            WARM_SWEEP_PLANS + LATE_SWEEP_PROFILING_RUNS,
        ))
        .parallelism(parallelism)
        .max_duration(110.0)
        .profiling_runs(LATE_SWEEP_PROFILING_RUNS)
        .checkpoints(CheckpointConfig::with_max_bytes(CHECKPOINT_BUDGET_BYTES))
        .lockstep_lanes(1);
    if let Some(root) = store {
        builder = builder.snapshot_store(root.to_path_buf());
    }
    let campaign = builder.build();
    let mut clock = WarmSessionClock {
        search_started: None,
        hydrated_chains: 0,
    };
    let result = campaign.run_with_observer(&mut clock);
    let search_seconds = clock
        .search_started
        .expect("campaign emitted ProfilingFinished")
        .elapsed()
        .as_secs_f64();
    (result, search_seconds, clock.hydrated_chains)
}

/// The warm-start scenario (`avis::store`): the [`WarmSweep`] run three
/// times — storeless cold, first session against an empty store root
/// (persists its chains), second session against the now-populated root
/// (hydrates and forks from last session's chains). Warm search time
/// must come in >= 2x under cold, and every session — including a
/// parallelism-4 warm rerun — must be bit-identical to the cold
/// result.
fn bench_warm_start() -> (Json, f64) {
    println!(
        "scenario `warm-start`: {WARM_SWEEP_PLANS}-plan very-late sweep, cold vs persisted-warm"
    );
    let root = std::env::temp_dir().join(format!("avis-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let (cold_result, cold_seconds, _) = run_warm_session(1, None);
    let scenarios = cold_result
        .simulations
        .saturating_sub(LATE_SWEEP_PROFILING_RUNS);
    println!("  cold:          {cold_seconds:.2}s search, {scenarios} scenarios");

    let (first_result, first_seconds, first_hydrated) = run_warm_session(1, Some(&root));
    assert_eq!(
        first_hydrated, 0,
        "an empty store hydrated {first_hydrated} chains"
    );
    assert!(
        first_result == cold_result,
        "store-backed first session diverged from cold execution"
    );
    println!("  first session: {first_seconds:.2}s search (cold + write-behind flush)");

    let (warm_result, warm_seconds, warm_hydrated) = run_warm_session(1, Some(&root));
    let speedup = cold_seconds / warm_seconds;
    let identical = warm_result == cold_result;
    println!(
        "  persisted-warm: {warm_seconds:.2}s search, {warm_hydrated} chains hydrated, speedup {speedup:.2}x, result {}",
        if identical {
            "bit-identical to cold"
        } else {
            "DIVERGED FROM COLD"
        }
    );
    assert!(
        identical,
        "persisted-warm session diverged from cold execution"
    );
    assert!(
        warm_hydrated > 0,
        "the second session should warm-start from disk"
    );
    assert!(
        speedup >= 2.0,
        "warm-start speedup {speedup:.2}x below the 2x floor"
    );

    // The parallelism-4 warm rerun: hydrated chains republished through
    // the shared tier must serve every worker without perturbing the
    // result.
    let (par4_result, par4_seconds, par4_hydrated) = run_warm_session(4, Some(&root));
    assert!(
        par4_result == cold_result,
        "parallel-4 persisted-warm session diverged from cold execution"
    );
    assert!(par4_hydrated > 0, "the parallel-4 session should hydrate");
    println!("  parallel-4 warm: {par4_seconds:.2}s search, result bit-identical");

    let _ = std::fs::remove_dir_all(&root);

    let measurement = |parallelism: usize, seconds: f64, warm: bool| {
        json::object(vec![
            ("parallelism", Json::Number(parallelism as f64)),
            ("wall_seconds", Json::Number(seconds)),
            ("speedup_vs_serial", Json::Number(cold_seconds / seconds)),
            ("result_identical", Json::Bool(true)),
            ("warm_start", Json::Bool(warm)),
        ])
    };
    let section = json::object(vec![
        ("scenario", Json::String("warm-start".to_string())),
        ("simulations", Json::Number(scenarios as f64)),
        (
            "cache_budget_bytes",
            Json::Number(CHECKPOINT_BUDGET_BYTES as f64),
        ),
        ("cold_wall_seconds", Json::Number(cold_seconds)),
        ("first_session_wall_seconds", Json::Number(first_seconds)),
        ("warm_wall_seconds", Json::Number(warm_seconds)),
        ("store_warm_start_speedup", Json::Number(speedup)),
        ("hydrated_chains", Json::Number(warm_hydrated as f64)),
        (
            "measurements",
            Json::Array(vec![
                measurement(1, cold_seconds, false),
                measurement(1, first_seconds, false),
                measurement(1, warm_seconds, true),
                measurement(4, par4_seconds, true),
            ]),
        ),
        ("result_identical", Json::Bool(true)),
    ]);
    (section, speedup)
}

/// `AVIS_BENCH_WARM_SMOKE` mode: one warm-start session against the
/// `AVIS_BENCH_STORE` root. The first invocation records its
/// search-phase seconds in a marker file inside the root; the second
/// finds the marker, asserts it actually hydrated chains, and gates the
/// first/second ratio at >= 2x. CI runs the binary twice against one
/// directory and the pair proves persisted warm starts across
/// *processes* — no shared in-memory state survives between them.
fn run_warm_smoke() {
    let root = std::path::PathBuf::from(
        std::env::var("AVIS_BENCH_STORE")
            .expect("AVIS_BENCH_WARM_SMOKE requires AVIS_BENCH_STORE to name the store root"),
    );
    let marker = root.join("warm-smoke-first.txt");
    let (result, seconds, hydrated) = run_warm_session(1, Some(&root));
    match std::fs::read_to_string(&marker) {
        Ok(text) => {
            let mut parts = text.split_whitespace();
            let first_seconds: f64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .expect("marker records the first invocation's seconds");
            let first_simulations: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .expect("marker records the first invocation's simulation count");
            assert_eq!(
                result.simulations, first_simulations,
                "warm invocation ran a different campaign shape than the first"
            );
            let ratio = first_seconds / seconds;
            println!(
                "warm-start smoke: first {first_seconds:.2}s, warm {seconds:.2}s, \
                 {hydrated} chains hydrated, ratio {ratio:.2}x"
            );
            if hydrated == 0 {
                eprintln!("REGRESSION: warm invocation hydrated nothing from the store");
                std::process::exit(1);
            }
            if ratio < 2.0 {
                eprintln!("REGRESSION: persisted warm start {ratio:.2}x below the 2x floor");
                std::process::exit(1);
            }
        }
        Err(_) => {
            std::fs::write(&marker, format!("{seconds} {}\n", result.simulations))
                .expect("write warm-smoke marker");
            println!(
                "warm-start smoke: first invocation {seconds:.2}s search \
                 ({} chains hydrated), marker written",
                hydrated
            );
        }
    }
}

/// The delta-chain density sweep: a *dense-anchor* configuration — cuts
/// every simulated second, a memory budget far too small for them all —
/// executed once with full snapshots (keyframe stride 1) and once with
/// delta chains (stride 16), over the same late-injection plans on one
/// runner each. At the shared budget, delta chains must keep ≥ 3× more
/// cuts resident (equivalently, serve ≥ 3× deeper mean forks when full
/// snapshots evict the deep cuts a late injection needs), with every
/// result bit-identical to cold execution.
fn bench_delta_density() -> Json {
    use avis::snapshot::CheckpointStats;
    println!("scenario `delta-density`: dense-anchor sweep, full vs delta chains at equal budget");
    const DENSE_BUDGET_BYTES: usize = 128 * 1024;
    let experiment = |checkpoints: CheckpointConfig| {
        let mut experiment = ExperimentConfig::new(
            FirmwareProfile::ArduPilotLike,
            BugSet::none(),
            auto_box_mission(),
        );
        experiment.max_duration = 110.0;
        experiment.checkpoints = checkpoints;
        experiment
    };
    // The late-injection plan set (the prefix-sharing regime SABRE's
    // deep anchors live in), taken from a golden run like LateSweep's.
    let mut profiler = ExperimentRunner::new(experiment(CheckpointConfig::disabled()));
    let golden = profiler.run_profiling(0);
    let duration = golden.trace.duration;
    let instances = [
        SensorInstance::new(SensorKind::Accelerometer, 0),
        SensorInstance::new(SensorKind::Gps, 0),
        SensorInstance::new(SensorKind::Barometer, 0),
        SensorInstance::new(SensorKind::Compass, 0),
    ];
    // Slots are visited in SABRE's actual order — anchors are *not*
    // swept monotonically, the queue jumps between transition depths —
    // so a store whose residency window only covers the most recent
    // depth keeps thrashing while a delta store's several-times-wider
    // window keeps serving deep forks.
    let mut plans = Vec::new();
    for slot in [7usize, 2, 5, 0, 6, 3, 1, 4] {
        let time = duration * 0.6 + duration * 0.35 * slot as f64 / 8.0;
        for instance in instances {
            plans.push(FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]));
        }
    }

    let mut cold = ExperimentRunner::new(experiment(CheckpointConfig::disabled()));
    let cold_results: Vec<_> = plans
        .iter()
        .map(|p| cold.run_with_plan(p.clone()))
        .collect();
    let sweep = |keyframe_stride: usize| -> (CheckpointStats, f64) {
        let mut runner = ExperimentRunner::new(experiment(CheckpointConfig {
            interval: 1.0,
            max_bytes: DENSE_BUDGET_BYTES,
            anchor_placement: false,
            keyframe_stride,
            ..CheckpointConfig::default()
        }));
        let start = Instant::now();
        for (plan, reference) in plans.iter().zip(&cold_results) {
            let result = runner.run_with_plan(plan.clone());
            assert!(
                result == *reference,
                "stride {keyframe_stride}: dense-anchor run diverged from cold execution"
            );
        }
        (runner.checkpoint_stats(), start.elapsed().as_secs_f64())
    };
    let (full, full_seconds) = sweep(1);
    let (delta, delta_seconds) = sweep(16);
    let mean_depth = |s: &CheckpointStats| {
        let runs = s.forked_runs + s.cold_runs;
        if runs == 0 {
            0.0
        } else {
            s.simulated_seconds_skipped / runs as f64
        }
    };
    let cuts_ratio = delta.snapshots_cached as f64 / full.snapshots_cached.max(1) as f64;
    let depth_ratio = mean_depth(&delta) / mean_depth(&full).max(1e-9);
    println!(
        "  full  (stride 1):  {:>3} resident cuts, {:>4} KiB, mean fork depth {:>5.1}s/run, {full_seconds:.2}s wall",
        full.snapshots_cached,
        full.cached_bytes / 1024,
        mean_depth(&full)
    );
    println!(
        "  delta (stride 16): {:>3} resident cuts ({} delta-encoded, {} KiB of deltas), {:>4} KiB, mean fork depth {:>5.1}s/run, {delta_seconds:.2}s wall",
        delta.snapshots_cached,
        delta.delta_snapshots,
        delta.delta_bytes / 1024,
        delta.cached_bytes / 1024,
        mean_depth(&delta)
    );
    println!(
        "  at equal {} KiB budget: {cuts_ratio:.1}x resident cuts, {depth_ratio:.1}x mean fork depth",
        DENSE_BUDGET_BYTES / 1024
    );
    assert!(
        cuts_ratio >= 3.0 || depth_ratio >= 3.0,
        "delta chains should keep >=3x more cuts (or serve >=3x deeper forks) at equal budget: \
         cuts {cuts_ratio:.2}x, depth {depth_ratio:.2}x (full {full:?}, delta {delta:?})"
    );
    json::object(vec![
        ("scenario", Json::String("delta-density".to_string())),
        ("budget_bytes", Json::Number(DENSE_BUDGET_BYTES as f64)),
        ("plans", Json::Number(plans.len() as f64)),
        (
            "full_resident_cuts",
            Json::Number(full.snapshots_cached as f64),
        ),
        (
            "delta_resident_cuts",
            Json::Number(delta.snapshots_cached as f64),
        ),
        (
            "delta_encoded_cuts",
            Json::Number(delta.delta_snapshots as f64),
        ),
        ("delta_bytes", Json::Number(delta.delta_bytes as f64)),
        ("full_mean_fork_depth_s", Json::Number(mean_depth(&full))),
        ("delta_mean_fork_depth_s", Json::Number(mean_depth(&delta))),
        ("resident_cuts_ratio", Json::Number(cuts_ratio)),
        ("mean_fork_depth_ratio", Json::Number(depth_ratio)),
        ("full_wall_seconds", Json::Number(full_seconds)),
        ("delta_wall_seconds", Json::Number(delta_seconds)),
        ("result_identical", Json::Bool(true)),
    ])
}

/// The sharded-dispatch scenario: the parallel-4 late-injection sweep
/// under round-robin vs prefix-sharded placement, with per-worker cache
/// statistics collected. Sharding pins each prefix family to one worker,
/// so the local-cache share of served forks (vs shared-tier pulls) rises
/// and the tier traffic shrinks; results are bit-identical either way.
fn bench_sharded_dispatch(simulations: usize) -> Json {
    use avis::{DispatchMode, WorkerStatsCollector};
    use std::sync::Arc;
    println!("scenario `sharded-dispatch`: parallel-4 branch sweep, round-robin vs prefix-sharded");
    // Dispatch locality only differentiates across wavefront boundaries
    // (the tier republishes between wavefronts); a budget that fits the
    // whole sweep into one wavefront measures nothing, so this scenario
    // runs the full 48-plan sweep even under the reduced CI smoke
    // budget. The snapshot budget is deliberately too small for every
    // branch: locality only matters when caches cannot hold everything.
    let simulations = simulations.max(LATE_SWEEP_PROFILING_RUNS + 48);
    const BRANCH_BUDGET_BYTES: usize = 256 * 1024;
    let measure = |dispatch: DispatchMode| {
        let collector = Arc::new(WorkerStatsCollector::new());
        let (result, seconds) = run_branch_sweep_dispatched(
            simulations,
            CheckpointConfig::with_max_bytes(BRANCH_BUDGET_BYTES),
            4,
            dispatch,
            Some(Arc::clone(&collector)),
        );
        let share = collector.local_hit_share().unwrap_or(0.0);
        let depth = collector.mean_fork_depth().unwrap_or(0.0);
        println!(
            "  {dispatch:?}: {seconds:.2}s wall, local-cache hit share {:.0}%, mean fork depth {depth:.1}s",
            share * 100.0
        );
        (result, seconds, share, depth)
    };
    let (rr_result, rr_seconds, rr_share, rr_depth) = measure(DispatchMode::RoundRobin);
    let (sh_result, sh_seconds, sh_share, sh_depth) = measure(DispatchMode::PrefixSharded);
    assert!(
        rr_result == sh_result,
        "dispatch mode changed a campaign observable"
    );
    println!(
        "  prefix sharding raises the local share by {:+.0} points, results bit-identical",
        (sh_share - rr_share) * 100.0
    );
    json::object(vec![
        ("scenario", Json::String("sharded-dispatch".to_string())),
        ("parallelism", Json::Number(4.0)),
        ("round_robin_wall_seconds", Json::Number(rr_seconds)),
        ("sharded_wall_seconds", Json::Number(sh_seconds)),
        ("round_robin_local_hit_share", Json::Number(rr_share)),
        ("sharded_local_hit_share", Json::Number(sh_share)),
        ("round_robin_mean_fork_depth_s", Json::Number(rr_depth)),
        ("sharded_mean_fork_depth_s", Json::Number(sh_depth)),
        ("result_identical", Json::Bool(true)),
    ])
}

/// The matrix-reuse scenario: two strategies over one firmware ×
/// workload pair, run as a `ScenarioMatrix` whose cells share a snapshot
/// tier. The second strategy's campaign warm-starts from the first one's
/// checkpoint tree — measured as per-campaign search time with sharing
/// on vs off, with bit-identical reports asserted.
fn bench_matrix_reuse(simulations: usize) -> Json {
    println!("scenario `matrix-reuse`: 2 strategies x shared firmware/workload");
    struct CellClock {
        started: Vec<Instant>,
        durations: Vec<f64>,
    }
    impl avis::campaign::CampaignObserver for CellClock {
        fn on_event(&mut self, event: &avis::campaign::CampaignEvent) {
            match event {
                avis::campaign::CampaignEvent::CampaignStarted { .. } => {
                    self.started.push(Instant::now());
                }
                avis::campaign::CampaignEvent::CampaignFinished { .. } => {
                    let start = self.started.last().expect("started before finished");
                    self.durations.push(start.elapsed().as_secs_f64());
                }
                _ => {}
            }
        }
    }
    let run = |share: bool| {
        let matrix = ScenarioMatrix::new()
            .firmware(FirmwareProfile::ArduPilotLike)
            .workload(auto_box_mission())
            .bugs(BugSet::none())
            .strategy("Late sweep A", || Box::new(LateSweep::new()))
            .strategy("Late sweep B", || Box::new(LateSweep::new()))
            .budget(Budget::simulations(simulations))
            .profiling_runs(LATE_SWEEP_PROFILING_RUNS)
            .parallelism(1)
            .max_duration(110.0)
            .noise(SensorNoise::default())
            .share_snapshots(share);
        let mut clock = CellClock {
            started: Vec::new(),
            durations: Vec::new(),
        };
        let report = matrix.run_with_observer(&mut clock);
        (report, clock.durations)
    };
    let (shared_report, shared_durations) = run(true);
    let (unshared_report, unshared_durations) = run(false);
    assert_eq!(
        shared_report, unshared_report,
        "matrix-level snapshot sharing changed a cell result"
    );
    let warm_speedup = unshared_durations[1] / shared_durations[1].max(1e-9);
    println!(
        "  first campaign:  shared {:.2}s vs unshared {:.2}s",
        shared_durations[0], unshared_durations[0]
    );
    println!(
        "  second campaign: shared {:.2}s vs unshared {:.2}s -> warm-start speedup {warm_speedup:.2}x, reports bit-identical",
        shared_durations[1], unshared_durations[1]
    );
    json::object(vec![
        ("scenario", Json::String("matrix-reuse".to_string())),
        ("strategies", Json::Number(2.0)),
        (
            "first_campaign_shared_seconds",
            Json::Number(shared_durations[0]),
        ),
        (
            "second_campaign_shared_seconds",
            Json::Number(shared_durations[1]),
        ),
        (
            "second_campaign_unshared_seconds",
            Json::Number(unshared_durations[1]),
        ),
        ("warm_start_speedup", Json::Number(warm_speedup)),
        ("report_identical", Json::Bool(true)),
    ])
}

/// The snapshot-record microbenchmark: per-record overhead at growing
/// run depth. With copy-on-write recording the cost per snapshot is flat
/// in the run length (the sample history is sealed and `Arc`-shared, not
/// cloned) — the pre-CoW implementation grew linearly with depth.
fn bench_record_cost() -> Json {
    println!("microbench `snapshot-record`: per-record cost vs run depth");
    let experiment = |max_duration: f64, checkpoints: CheckpointConfig| {
        let mut experiment = ExperimentConfig::new(
            FirmwareProfile::ArduPilotLike,
            BugSet::none(),
            auto_box_mission(),
        );
        experiment.max_duration = max_duration;
        experiment.checkpoints = checkpoints;
        experiment
    };
    let mut rows = Vec::new();
    for depth in [30.0, 60.0, 105.0] {
        // Dense 1 s cuts so the record path dominates the delta.
        let dense = CheckpointConfig {
            interval: 1.0,
            anchor_placement: false,
            ..CheckpointConfig::default()
        };
        let repetitions = 3;
        let mut cold_seconds = 0.0;
        let mut recording_seconds = 0.0;
        let mut records = 0u64;
        for _ in 0..repetitions {
            let mut cold = ExperimentRunner::new(experiment(depth, CheckpointConfig::disabled()));
            let start = Instant::now();
            let _ = cold.run_with_plan(FaultPlan::empty());
            cold_seconds += start.elapsed().as_secs_f64();

            let mut recording = ExperimentRunner::new(experiment(depth, dense.clone()));
            let start = Instant::now();
            let _ = recording.run_with_plan(FaultPlan::empty());
            recording_seconds += start.elapsed().as_secs_f64();
            records += recording.checkpoint_stats().snapshots_recorded;
        }
        let per_record_us =
            ((recording_seconds - cold_seconds).max(0.0) / records.max(1) as f64) * 1e6;
        println!(
            "  depth {depth:>5.0}s: {:>3} records/run, ~{per_record_us:.0}us per record",
            records / repetitions
        );
        rows.push(json::object(vec![
            ("depth_seconds", Json::Number(depth)),
            (
                "records_per_run",
                Json::Number((records / repetitions) as f64),
            ),
            ("per_record_micros", Json::Number(per_record_us)),
        ]));
    }
    json::object(vec![
        ("microbench", Json::String("snapshot-record".to_string())),
        ("depths", Json::Array(rows)),
    ])
}

/// The codec microbenchmark: per-message encode/decode cost and the
/// `Link` stream-drain rate. The drain measurement covers the `recv`
/// hot path, which now pops decoded frames off a contiguous buffer —
/// the pre-fix implementation re-shifted the queue per frame, so long
/// bursts (e.g. a command storm) decoded in quadratic time.
fn bench_codec_cost() -> Json {
    println!("microbench `mavlite-codec`: encode/decode and stream-drain cost");
    let messages = [
        Message::Heartbeat {
            mode: ProtocolMode::Auto,
            armed: true,
        },
        Message::Status {
            x: 12.5,
            y: -3.25,
            altitude: 30.0,
            climb_rate: 0.5,
            mission_seq: 3,
            landed: false,
        },
        Message::ArmDisarm { arm: true },
    ];

    let iterations = 20_000usize;
    let start = Instant::now();
    for i in 0..iterations {
        let msg = &messages[i % messages.len()];
        let frame = encode_frame(msg, i as u8);
        let (decoded, seq, consumed) = decode_frame(&frame).expect("round-trip decodes");
        assert_eq!(&decoded, msg);
        assert_eq!(seq, i as u8);
        assert_eq!(consumed, frame.len());
    }
    let round_trip_ns = start.elapsed().as_secs_f64() / iterations as f64 * 1e9;
    println!("  encode+decode round-trip: ~{round_trip_ns:.0}ns per message");

    // Stream drain: a long single-direction burst queued before any recv,
    // the shape a command storm produces on the wire.
    let burst = 5_000usize;
    let mut link = Link::new();
    for i in 0..burst {
        link.send(Endpoint::GroundStation, &messages[i % messages.len()]);
    }
    let start = Instant::now();
    let drained = link.drain(Endpoint::Vehicle);
    let drain_seconds = start.elapsed().as_secs_f64();
    assert_eq!(drained.len(), burst, "burst drained losslessly");
    assert_eq!(link.pending_bytes(Endpoint::Vehicle), 0);
    let drain_rate = burst as f64 / drain_seconds.max(1e-9);
    println!("  {burst}-message burst drained in {drain_seconds:.4}s (~{drain_rate:.0} msgs/s)");

    json::object(vec![
        ("microbench", Json::String("mavlite-codec".to_string())),
        ("round_trip_nanos", Json::Number(round_trip_ns)),
        ("burst_messages", Json::Number(burst as f64)),
        ("burst_drain_seconds", Json::Number(drain_seconds)),
        ("burst_messages_per_second", Json::Number(drain_rate)),
    ])
}

/// The link-fault smoke scenario: a tiny matrix sweep over a clean link
/// and an arm-storm link scenario against the seeded protocol defect.
/// The storm cell must reproduce `ProtoDoubleArm`, the clean cell must
/// not, and the sweep must be bit-identical at parallelism 1 and 2 —
/// a fast end-to-end check that protocol fault injection stays both
/// effective and deterministic.
fn bench_link_fault_smoke() -> Json {
    println!("scenario `link-fault-smoke`: clean vs arm-storm matrix sweep");
    let storm = LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
        LinkFaultKind::Storm {
            command: StormCommand::Arm,
            count: 8,
        },
        LinkDirection::ToVehicle,
        40.0,
    )]);
    let run = |parallelism: usize| {
        let matrix = ScenarioMatrix::new()
            .firmware(FirmwareProfile::ArduPilotLike)
            .workload(auto_box_mission())
            .bugs(BugSet::only(BugId::ProtoDoubleArm))
            .approach(Approach::Avis)
            .link_scenario("clean", LinkFaultPlan::empty())
            .link_scenario("arm-storm", storm.clone())
            .budget(Budget::simulations(5))
            .profiling_runs(1)
            .parallelism(parallelism)
            .max_duration(110.0)
            .noise(SensorNoise::default());
        let start = Instant::now();
        let report = matrix.run();
        (report, start.elapsed().as_secs_f64())
    };
    let (serial_report, serial_seconds) = run(1);
    let (parallel_report, parallel_seconds) = run(2);
    assert_eq!(
        serial_report, parallel_report,
        "link-fault sweep diverged between parallelism 1 and 2"
    );
    let storm_cell = serial_report
        .results
        .iter()
        .find(|r| r.link_scenario.as_deref() == Some("arm-storm"))
        .expect("storm cell present");
    let clean_cell = serial_report
        .results
        .iter()
        .find(|r| r.link_scenario.as_deref() == Some("clean"))
        .expect("clean cell present");
    assert!(
        storm_cell.bugs_found().contains(&BugId::ProtoDoubleArm),
        "arm-storm scenario failed to reproduce the protocol defect"
    );
    assert!(
        clean_cell.bugs_found().is_empty(),
        "clean link scenario unexpectedly exposed a defect"
    );
    println!(
        "  serial {serial_seconds:.2}s / parallel {parallel_seconds:.2}s, \
         storm cell reproduces PROTO-101, clean cell finds nothing, reports bit-identical"
    );
    json::object(vec![
        ("scenario", Json::String("link-fault-smoke".to_string())),
        ("serial_wall_seconds", Json::Number(serial_seconds)),
        ("parallel_wall_seconds", Json::Number(parallel_seconds)),
        ("defect_reproduced", Json::Bool(true)),
        ("clean_cell_silent", Json::Bool(true)),
        ("result_identical", Json::Bool(true)),
    ])
}

/// Gates the measured checkpoint speedup against the committed baseline:
/// a >20% drop fails the run. The speedup is a same-host ratio, so the
/// gate holds on hosts of any speed.
fn check_baseline(
    baseline_path: &str,
    measured_speedup: f64,
    measured_batched_speedup: f64,
    measured_warm_speedup: f64,
) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = Json::parse(&text).expect("baseline is valid JSON");
    let expected = baseline
        .get("checkpoint_speedup")
        .and_then(|v| v.as_f64())
        .expect("baseline has a numeric `checkpoint_speedup`");
    let floor = expected * 0.8;
    println!(
        "baseline gate: measured {measured_speedup:.2}x vs committed {expected:.2}x (floor {floor:.2}x)"
    );
    if measured_speedup < floor {
        eprintln!(
            "REGRESSION: checkpoint speedup {measured_speedup:.2}x fell more than 20% below the committed baseline {expected:.2}x"
        );
        std::process::exit(1);
    }
    // The batched-lockstep gate: same 20%-regression contract against
    // the committed ratio, on top of the absolute >= 1.5x floor the
    // scenario itself asserts.
    if let Some(expected) = baseline
        .get("batched_lockstep_speedup")
        .and_then(|v| v.as_f64())
    {
        let floor = expected * 0.8;
        println!(
            "baseline gate: batched lockstep {measured_batched_speedup:.2}x vs committed {expected:.2}x (floor {floor:.2}x)"
        );
        if measured_batched_speedup < floor {
            eprintln!(
                "REGRESSION: batched lockstep speedup {measured_batched_speedup:.2}x fell more than 20% below the committed baseline {expected:.2}x"
            );
            std::process::exit(1);
        }
    }
    // The warm-start gate: same 20%-regression contract against the
    // committed ratio, on top of the absolute >= 2x floor the scenario
    // itself asserts.
    if let Some(expected) = baseline
        .get("store_warm_start_speedup")
        .and_then(|v| v.as_f64())
    {
        let floor = expected * 0.8;
        println!(
            "baseline gate: warm start {measured_warm_speedup:.2}x vs committed {expected:.2}x (floor {floor:.2}x)"
        );
        if measured_warm_speedup < floor {
            eprintln!(
                "REGRESSION: warm-start speedup {measured_warm_speedup:.2}x fell more than 20% below the committed baseline {expected:.2}x"
            );
            std::process::exit(1);
        }
    }
}

/// Physical processor count of the host, from `/proc/cpuinfo` where it
/// exists. [`avis::engine::default_parallelism`] reflects
/// cgroup/affinity limits (`available_parallelism`), which undercounts
/// containerised CI hosts — the report records both, and the cpuinfo
/// count is the `host_cores` of record.
fn host_cpu_count() -> usize {
    std::fs::read_to_string("/proc/cpuinfo")
        .map(|text| {
            text.lines()
                .filter(|line| line.starts_with("processor"))
                .count()
        })
        .ok()
        .filter(|&count| count > 0)
        .unwrap_or_else(avis::engine::default_parallelism)
}

fn main() {
    if std::env::var("AVIS_BENCH_WARM_SMOKE").is_ok() {
        run_warm_smoke();
        return;
    }
    let simulations: usize = std::env::var("AVIS_BENCH_SIMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let worker_counts: Vec<usize> = std::env::var("AVIS_BENCH_PARALLELISM")
        .ok()
        .map(|s| s.split(',').filter_map(|p| p.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![2, 4]);
    let out_path =
        std::env::var("AVIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_campaign.json".to_string());

    let scenarios = [
        ("fixed", BugSet::none()),
        (
            "buggy",
            BugSet::current_code_base(FirmwareProfile::ArduPilotLike),
        ),
    ];
    let reports: Vec<Json> = scenarios
        .iter()
        .map(|(name, bugs)| bench_scenario(name, bugs, simulations, &worker_counts))
        .collect();
    let (checkpoint_report, checkpoint_speedup) = bench_checkpointing(simulations);
    let (warm_report, warm_speedup) = bench_warm_start();
    let (batched_report, batched_speedup) = bench_batched_lockstep(simulations);
    let delta_report = bench_delta_density();
    let sharded_report = bench_sharded_dispatch(simulations);
    let matrix_report = bench_matrix_reuse(simulations);
    let record_report = bench_record_cost();
    let codec_report = bench_codec_cost();
    let link_fault_report = bench_link_fault_smoke();

    let doc = json::object(vec![
        ("bench", Json::String("campaign_throughput".to_string())),
        ("approach", Json::String("Avis".to_string())),
        ("budget_simulations", Json::Number(simulations as f64)),
        ("host_cores", Json::Number(host_cpu_count() as f64)),
        (
            "host_available_parallelism",
            Json::Number(avis::engine::default_parallelism() as f64),
        ),
        ("scenarios", Json::Array(reports)),
        ("checkpoint", checkpoint_report),
        ("warm_start", warm_report),
        ("batched_lockstep", batched_report),
        ("delta_chain", delta_report),
        ("sharded_dispatch", sharded_report),
        ("matrix_reuse", matrix_report),
        ("record_microbench", record_report),
        ("codec_microbench", codec_report),
        ("link_fault_smoke", link_fault_report),
    ]);
    std::fs::write(&out_path, doc.to_pretty()).expect("write BENCH_campaign.json");
    println!("wrote {out_path}");

    if let Ok(baseline_path) = std::env::var("AVIS_BENCH_BASELINE") {
        check_baseline(
            &baseline_path,
            checkpoint_speedup,
            batched_speedup,
            warm_speedup,
        );
    }
}
