//! Campaign-throughput bench: wall-clock time for fixed-budget Avis
//! campaigns at increasing worker counts, verifying along the way that
//! the parallel engine's `CampaignResult` is bit-identical to the serial
//! one.
//!
//! Two scenarios bracket the engine's speculation behaviour:
//!
//! - **fixed** — the repaired code base: no run is unsafe, so found-bug
//!   pruning never rejects speculated work and the engine scales ~linearly
//!   with the worker count (the realistic large-budget regime, where most
//!   scenarios are safe).
//! - **buggy** — the paper's "current code base": most runs trigger
//!   found-bug pruning, which invalidates speculated siblings, so the
//!   useful parallelism is bounded by the commit-accept ratio. This is
//!   the engine's worst case and is reported for honesty.
//!
//! Unlike the Criterion-style micro-benches this harness owns its `main`
//! (`harness = false`): one campaign is seconds of work, so it runs each
//! configuration once and reports wall-clock plus speedup directly, and
//! it emits the machine-readable `bench_campaign.json` consumed by CI as
//! the perf-trajectory artefact.
//!
//! Environment knobs:
//! - `AVIS_BENCH_SIMS` — simulation budget per campaign (default 64)
//! - `AVIS_BENCH_PARALLELISM` — comma-separated worker counts to measure
//!   (default `2,4`; `1` is always measured first as the baseline)
//! - `AVIS_BENCH_OUT` — output path (default `bench_campaign.json`)

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget, CampaignResult};
use avis::json::{self, Json};
use avis_firmware::{BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;
use std::time::Instant;

fn run_campaign(bugs: &BugSet, simulations: usize, parallelism: usize) -> (CampaignResult, f64) {
    let campaign = Campaign::builder()
        .firmware(FirmwareProfile::ArduPilotLike)
        .bugs(bugs.clone())
        .workload(auto_box_mission())
        .approach(Approach::Avis)
        .budget(Budget::simulations(simulations))
        .parallelism(parallelism)
        .max_duration(110.0)
        // Two profiling runs: liveliness calibration from a single golden
        // trace has no run-to-run variance to measure and flags every
        // faulted run as divergent.
        .profiling_runs(2)
        .build();
    let start = Instant::now();
    let result = campaign.run();
    (result, start.elapsed().as_secs_f64())
}

fn bench_scenario(name: &str, bugs: &BugSet, simulations: usize, worker_counts: &[usize]) -> Json {
    println!("scenario `{name}`: {simulations}-simulation Avis campaign");
    let (serial_result, serial_seconds) = run_campaign(bugs, simulations, 1);
    println!(
        "  parallelism=1: {serial_seconds:.2}s wall, {} unsafe conditions, {} simulations",
        serial_result.unsafe_count(),
        serial_result.simulations
    );

    let mut measurements = vec![(1usize, serial_seconds)];
    for &workers in worker_counts {
        if workers <= 1 {
            continue;
        }
        let (result, seconds) = run_campaign(bugs, simulations, workers);
        let identical = result == serial_result;
        println!(
            "  parallelism={workers}: {seconds:.2}s wall, speedup {:.2}x, result {}",
            serial_seconds / seconds,
            if identical {
                "bit-identical to serial"
            } else {
                "DIVERGED FROM SERIAL"
            }
        );
        assert!(
            identical,
            "parallel campaign ({name}, workers={workers}) diverged from the serial result"
        );
        measurements.push((workers, seconds));
    }

    json::object(vec![
        ("scenario", Json::String(name.to_string())),
        (
            "unsafe_conditions",
            Json::Number(serial_result.unsafe_count() as f64),
        ),
        (
            "simulations",
            Json::Number(serial_result.simulations as f64),
        ),
        (
            "measurements",
            Json::Array(
                measurements
                    .iter()
                    .map(|&(workers, seconds)| {
                        json::object(vec![
                            ("parallelism", Json::Number(workers as f64)),
                            ("wall_seconds", Json::Number(seconds)),
                            ("speedup_vs_serial", Json::Number(serial_seconds / seconds)),
                            ("result_identical", Json::Bool(true)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let simulations: usize = std::env::var("AVIS_BENCH_SIMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let worker_counts: Vec<usize> = std::env::var("AVIS_BENCH_PARALLELISM")
        .ok()
        .map(|s| s.split(',').filter_map(|p| p.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![2, 4]);
    let out_path =
        std::env::var("AVIS_BENCH_OUT").unwrap_or_else(|_| "bench_campaign.json".to_string());

    let scenarios = [
        ("fixed", BugSet::none()),
        (
            "buggy",
            BugSet::current_code_base(FirmwareProfile::ArduPilotLike),
        ),
    ];
    let reports: Vec<Json> = scenarios
        .iter()
        .map(|(name, bugs)| bench_scenario(name, bugs, simulations, &worker_counts))
        .collect();

    let doc = json::object(vec![
        ("bench", Json::String("campaign_throughput".to_string())),
        ("approach", Json::String("Avis".to_string())),
        ("budget_simulations", Json::Number(simulations as f64)),
        (
            "host_cores",
            Json::Number(avis::engine::default_parallelism() as f64),
        ),
        ("scenarios", Json::Array(reports)),
    ]);
    std::fs::write(&out_path, doc.to_pretty()).expect("write bench_campaign.json");
    println!("wrote {out_path}");
}
