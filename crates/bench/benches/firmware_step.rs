//! Criterion bench: one full firmware-in-the-loop step (sensor frontend,
//! estimator, failsafes, navigation and physics).

use avis_firmware::{BugSet, Firmware, FirmwareProfile};
use avis_hinj::SharedInjector;
use avis_sim::simulator::Simulator;
use avis_sim::MotorCommands;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_firmware_step(c: &mut Criterion) {
    c.bench_function("firmware_in_the_loop_step", |b| {
        let mut sim = Simulator::with_defaults();
        let mut firmware = Firmware::new(
            FirmwareProfile::ArduPilotLike,
            BugSet::none(),
            SharedInjector::passthrough(),
        );
        let mut readings = sim.step(&MotorCommands::IDLE).readings;
        b.iter(|| {
            let cmd = firmware.step(&readings, sim.time(), 0.001);
            let out = sim.step(&cmd);
            readings = out.readings;
            black_box(out.state)
        });
    });
}

criterion_group!(benches, bench_firmware_step);
criterion_main!(benches);
