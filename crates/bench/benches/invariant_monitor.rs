//! Criterion bench: invariant-monitor calibration and per-trace checking.

use avis::monitor::{InvariantMonitor, MonitorConfig};
use avis::trace::{ModeTransition, StateSample, Trace};
use avis_firmware::OperatingMode;
use avis_sim::Vec3;
use avis_workload::WorkloadStatus;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn synthetic_run(offset: f64) -> Trace {
    let dt = 0.1;
    let mut samples = Vec::new();
    let mut transitions = vec![ModeTransition {
        time: 0.0,
        mode: OperatingMode::PreFlight,
    }];
    let mut mode = OperatingMode::PreFlight;
    for k in 0..900 {
        let t = k as f64 * dt;
        let (pos, new_mode) = if t < 2.0 {
            (Vec3::new(offset, 0.0, 0.0), OperatingMode::PreFlight)
        } else if t < 12.0 {
            (
                Vec3::new(offset, 0.0, (t - 2.0) * 2.0),
                OperatingMode::Takeoff,
            )
        } else if t < 50.0 {
            (
                Vec3::new(offset + (t - 12.0), 0.0, 20.0),
                OperatingMode::Auto { leg: 1 },
            )
        } else {
            (
                Vec3::new(offset + 38.0, 0.0, (20.0 - (t - 50.0) * 0.7).max(0.0)),
                OperatingMode::Land,
            )
        };
        if new_mode != mode {
            transitions.push(ModeTransition {
                time: t,
                mode: new_mode,
            });
            mode = new_mode;
        }
        samples.push(StateSample {
            time: t,
            position: pos,
            acceleration: Vec3::ZERO,
            mode,
        });
    }
    Trace {
        sample_interval: dt,
        samples,
        mode_transitions: transitions,
        collision: None,
        fence_violations: 0,
        workload_status: WorkloadStatus::Passed,
        protocol: Vec::new(),
        duration: 90.0,
    }
}

fn bench_monitor(c: &mut Criterion) {
    let profiling = vec![synthetic_run(0.0), synthetic_run(0.3), synthetic_run(-0.2)];

    c.bench_function("monitor_calibration_3_runs", |b| {
        b.iter(|| {
            black_box(InvariantMonitor::calibrate(
                profiling.clone(),
                MonitorConfig::default(),
            ))
        });
    });

    let monitor = InvariantMonitor::calibrate(profiling, MonitorConfig::default());
    let clean = synthetic_run(0.15);
    let mut divergent = synthetic_run(0.0);
    for s in divergent.samples.iter_mut().filter(|s| s.time > 20.0) {
        s.position.y = (s.time - 20.0) * 5.0;
        s.mode = OperatingMode::Auto { leg: 1 };
    }

    c.bench_function("monitor_check_clean_trace", |b| {
        b.iter(|| black_box(monitor.check(&clean)));
    });
    c.bench_function("monitor_check_divergent_trace", |b| {
        b.iter(|| black_box(monitor.check(&divergent)));
    });
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
