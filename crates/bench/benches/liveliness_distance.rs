//! Criterion bench: the normalized state-distance computation at the core
//! of the liveliness check, with and without the mode-graph component
//! (one of the design-choice ablations called out in DESIGN.md).

use avis::monitor::{InvariantMonitor, ModeGraph, MonitorConfig};
use avis::trace::{ModeTransition, StateSample, Trace};
use avis_firmware::OperatingMode;
use avis_sim::Vec3;
use avis_workload::WorkloadStatus;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn flat_trace() -> Trace {
    let dt = 0.1;
    let samples: Vec<StateSample> = (0..600)
        .map(|k| {
            let t = k as f64 * dt;
            StateSample {
                time: t,
                position: Vec3::new(t, 0.5 * t, 15.0),
                acceleration: Vec3::new(0.1, 0.0, 0.0),
                mode: OperatingMode::Auto { leg: 1 },
            }
        })
        .collect();
    Trace {
        sample_interval: dt,
        samples,
        mode_transitions: vec![
            ModeTransition {
                time: 0.0,
                mode: OperatingMode::PreFlight,
            },
            ModeTransition {
                time: 1.0,
                mode: OperatingMode::Takeoff,
            },
            ModeTransition {
                time: 5.0,
                mode: OperatingMode::Auto { leg: 1 },
            },
            ModeTransition {
                time: 50.0,
                mode: OperatingMode::Land,
            },
        ],
        collision: None,
        fence_violations: 0,
        workload_status: WorkloadStatus::Passed,
        protocol: Vec::new(),
        duration: 60.0,
    }
}

fn bench_distance(c: &mut Criterion) {
    let profiling = vec![flat_trace(), flat_trace()];
    let monitor = InvariantMonitor::calibrate(profiling, MonitorConfig::default());
    let a = StateSample {
        time: 10.0,
        position: Vec3::new(10.0, 5.0, 15.0),
        acceleration: Vec3::new(0.1, 0.0, 0.0),
        mode: OperatingMode::Auto { leg: 1 },
    };
    let b_sample = StateSample {
        time: 10.0,
        position: Vec3::new(30.0, -5.0, 2.0),
        acceleration: Vec3::new(2.0, 1.0, -3.0),
        mode: OperatingMode::Land,
    };

    c.bench_function("state_distance_full_tuple", |bench| {
        bench.iter(|| black_box(monitor.state_distance(&a, &b_sample)));
    });

    // Ablation: position-only distance (what the paper says takes tens of
    // seconds to detect violations with, versus seconds for the full tuple).
    c.bench_function("state_distance_position_only", |bench| {
        bench.iter(|| black_box(a.position.distance(b_sample.position)));
    });

    let graph = ModeGraph::from_traces([&flat_trace()]);
    c.bench_function("mode_graph_distance", |bench| {
        bench.iter(|| {
            black_box(graph.distance(OperatingMode::PreFlight.code(), OperatingMode::Land.code()))
        });
    });
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
