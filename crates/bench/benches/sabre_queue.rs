//! Criterion bench: SABRE queue operations (anchor dequeue, plan
//! construction with pruning, and re-enqueueing of mode transitions).

use avis::pruning::candidate_failure_sets;
use avis::sabre::{SabreConfig, SabreQueue};
use avis_sim::SensorSuiteConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sabre_queue(c: &mut Criterion) {
    let transitions: Vec<f64> = (0..8).map(|i| 2.0 + i as f64 * 10.0).collect();
    let candidates = candidate_failure_sets(&SensorSuiteConfig::iris());

    c.bench_function("sabre_anchor_expansion", |b| {
        b.iter(|| {
            let mut queue = SabreQueue::new(&transitions, SabreConfig::default());
            let mut plans = 0usize;
            while let Some(anchor) = queue.next_anchor() {
                for set in &candidates {
                    if let Some(plan) = queue.plan_for(&anchor, set) {
                        plans += 1;
                        queue.record_ok(&plan, &transitions[..2]);
                    }
                }
                if plans > 500 {
                    break;
                }
            }
            black_box(plans)
        });
    });
}

criterion_group!(benches, bench_sabre_queue);
criterion_main!(benches);
