//! Criterion bench: raw simulator step throughput (the physics + sensor
//! synthesis cost that every checked scenario pays per millisecond of
//! simulated flight).

use avis_sim::simulator::Simulator;
use avis_sim::MotorCommands;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulator_step(c: &mut Criterion) {
    c.bench_function("simulator_step_hover", |b| {
        let mut sim = Simulator::with_defaults();
        let cmd = MotorCommands::uniform(0.38);
        b.iter(|| black_box(sim.step(&cmd)));
    });

    c.bench_function("simulator_step_climb", |b| {
        let mut sim = Simulator::with_defaults();
        let cmd = MotorCommands::uniform(0.8);
        b.iter(|| black_box(sim.step(&cmd)));
    });
}

criterion_group!(benches, bench_simulator_step);
criterion_main!(benches);
