//! Criterion bench: a scaled-down Table III — how quickly each approach
//! turns a small simulation budget into unsafe conditions on the buggy
//! ArduPilot-like code base.

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget};
use avis_firmware::{BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_efficiency");
    group.sample_size(10);
    for approach in Approach::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(approach.name()),
            &approach,
            |b, &approach| {
                b.iter(|| {
                    let result = Campaign::builder()
                        .firmware(FirmwareProfile::ArduPilotLike)
                        .bugs(BugSet::current_code_base(FirmwareProfile::ArduPilotLike))
                        .workload(auto_box_mission())
                        .approach(approach)
                        .budget(Budget {
                            max_simulations: 8,
                            max_cost_seconds: 1200.0,
                        })
                        .profiling_runs(1)
                        .build()
                        .run();
                    black_box(result.unsafe_count())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
