//! Criterion bench: the redundancy-elimination policies — sensor-instance
//! symmetry signatures and found-bug subset checks (Figure 6 / §IV.B.1).

use avis::pruning::{candidate_failure_sets, PruningState, RoleSignature};
use avis_hinj::{FaultPlan, FaultSpec};
use avis_sim::{SensorInstance, SensorKind, SensorSuiteConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn plans_for_bench() -> Vec<FaultPlan> {
    let config = SensorSuiteConfig::iris();
    candidate_failure_sets(&config)
        .into_iter()
        .enumerate()
        .map(|(i, set)| {
            FaultPlan::from_specs(
                set.into_iter()
                    .map(|inst| FaultSpec::new(inst, 5.0 + (i % 7) as f64)),
            )
        })
        .collect()
}

fn bench_pruning(c: &mut Criterion) {
    let plans = plans_for_bench();

    c.bench_function("role_signature_construction", |b| {
        b.iter(|| {
            for plan in &plans {
                black_box(RoleSignature::of(plan));
            }
        });
    });

    c.bench_function("pruning_state_should_prune", |b| {
        b.iter(|| {
            let mut state = PruningState::new();
            // Seed with one found bug so the subset check is exercised.
            let bug = FaultPlan::from_specs(vec![FaultSpec::new(
                SensorInstance::new(SensorKind::Gps, 0),
                5.0,
            )]);
            state.record_bug(&bug);
            let mut pruned = 0usize;
            for plan in &plans {
                if state.should_prune(plan) {
                    pruned += 1;
                } else {
                    state.record_explored(plan);
                }
            }
            // Second pass: everything is now a duplicate.
            for plan in &plans {
                if state.should_prune(plan) {
                    pruned += 1;
                }
            }
            black_box(pruned)
        });
    });
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
