//! Regenerates **Figure 10**: the APM-16967 case study. A compass failure
//! between waypoints freezes the heading estimate; the land fail-safe
//! engages, the state estimate is reset near the ground and the vehicle
//! crashes.

use avis::checker::Budget;
use avis::runner::{ExperimentConfig, ExperimentRunner};
use avis_bench::{altitude_chart, first_condition_for};
use avis_firmware::{BugId, BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;

fn main() {
    let bug = BugId::Apm16967;
    println!(
        "Figure 10: sequence of events in {} ({})\n",
        bug,
        bug.info().window_description
    );

    let (result, condition) = first_condition_for(bug, auto_box_mission(), Budget::simulations(80));
    let Some(condition) = condition else {
        println!(
            "Avis did not trigger {bug} within {} simulations — increase the budget.",
            result.simulations
        );
        return;
    };

    let mut config = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::only(bug),
        auto_box_mission(),
    );
    config.max_duration = 110.0;
    let mut runner = ExperimentRunner::new(config);
    let golden = runner.run_profiling(0);
    let faulted = runner.run_with_plan(condition.plan.clone());

    println!("Injected faults: {}", condition.plan);
    println!("Found after {} simulations.\n", condition.simulations_used);
    altitude_chart(&golden.trace, &faulted.trace);

    println!("\nEvents:");
    println!(
        "  1. Compass fault injected between waypoints ({})",
        condition.plan
    );
    println!("  2. Firmware keeps using the stale heading; track error grows");
    println!("  3. Emergency land fail-safe engages");
    println!("  4. State-estimate reset near the ground");
    match faulted.trace.collision {
        Some(c) => println!("  5. Crash at {:.1} m/s", c.impact_speed),
        None => println!("  5. (no crash reproduced in this run)"),
    }
    println!(
        "\nMonitor verdict: {:?}",
        condition.violations.first().map(|v| v.kind.to_string())
    );
}
