//! Regenerates **Figure 1** (case study APM-16682): an IMU failure at the
//! end of the landing sequence triggers the GPS-driven return-home
//! fail-safe; GPS altitude is too coarse to guide the manoeuvre and the
//! vehicle crashes. The paper notes the vulnerable window is when the
//! vehicle is fewer than ~2 m above ground.

use avis::checker::Budget;
use avis::runner::{ExperimentConfig, ExperimentRunner};
use avis_bench::{altitude_chart, first_condition_for};
use avis_firmware::{BugId, BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;

fn main() {
    let bug = BugId::Apm16682;
    println!(
        "Figure 1: execution analysis of a mishandled sensor failure ({}, {})\n",
        bug,
        bug.info().window_description
    );

    let (result, condition) =
        first_condition_for(bug, auto_box_mission(), Budget::simulations(120));
    let Some(condition) = condition else {
        println!(
            "Avis did not trigger {bug} within {} simulations — increase the budget.",
            result.simulations
        );
        return;
    };

    let mut config = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::only(bug),
        auto_box_mission(),
    );
    config.max_duration = 110.0;
    let mut runner = ExperimentRunner::new(config);
    let golden = runner.run_profiling(0);
    let faulted = runner.run_with_plan(condition.plan.clone());

    println!("Injected faults: {}", condition.plan);
    println!(
        "Found after {} simulations ({} unsafe conditions in the campaign).\n",
        condition.simulations_used,
        result.unsafe_count()
    );
    altitude_chart(&golden.trace, &faulted.trace);

    println!("\nTimeline (cf. the paper's Figure 1):");
    println!("  - takeoff, fly to waypoints, land, return home (golden column)");
    for spec in condition.plan.specs() {
        println!("  - {spec}: IMU fails during the final metres of landing");
    }
    println!("  - firmware engages GPS-driven return home");
    match faulted.trace.collision {
        Some(c) => println!(
            "  - GPS resolution is too coarse at low altitude: crash at {:.1} m/s",
            c.impact_speed
        ),
        None => println!("  - (no crash reproduced in this run)"),
    }
}
