//! Regenerates **Figure 3** (and Findings 1–3): the sensor-bug impact
//! study over the 215-report corpus.

use avis::study::{analyse, synthetic_corpus, RootCause};
use avis_bench::{header, row};

fn main() {
    let corpus = synthetic_corpus();
    let stats = analyse(&corpus);

    println!(
        "Figure 3: Analysis of reported bugs for ArduPilot and PX4 ({} reports)\n",
        stats.total
    );

    println!("(A) Type of bug");
    println!("{}", header(&["Root cause", "Reports", "Share"]));
    for (cause, count) in &stats.per_cause {
        println!(
            "{}",
            row(&[
                cause.to_string(),
                count.to_string(),
                format!("{:.0}%", 100.0 * *count as f64 / stats.total as f64),
            ])
        );
    }

    println!("\n(B) Sensor-bug reproducibility");
    println!(
        "  reproducible under default settings: {:.0}% (paper: 47%)",
        100.0 * stats.sensor_default_reproducible
    );

    println!("\n(C) Sensor-bug outcomes");
    println!(
        "  serious (crash / fly-away): {:.0}% (paper: ~34%)",
        100.0 * stats.sensor_serious
    );

    println!("\nFindings");
    println!(
        "  Finding 1: sensor bugs account for {:.0}% of control-firmware bugs (paper: 20%)",
        100.0 * stats.sensor_share
    );
    println!(
        "             and {:.0}% of crash-causing bugs (paper: 40%)",
        100.0 * stats.sensor_share_of_serious
    );
    println!(
        "  Finding 2: {:.0}% of sensor bugs reproducible under default settings (paper: 47%)",
        100.0 * stats.sensor_default_reproducible
    );
    println!(
        "  Finding 3: {:.0}% of sensor bugs have serious symptoms (paper: 34%)",
        100.0 * stats.sensor_serious
    );
    println!(
        "  (semantic bugs asymptomatic: {:.0}%, paper: ~90%)",
        100.0 * stats.semantic_asymptomatic
    );
    let sensor_count = stats
        .per_cause
        .iter()
        .find(|(c, _)| *c == RootCause::Sensor)
        .map(|(_, n)| *n)
        .unwrap_or(0);
    println!("  sensor bugs in corpus: {sensor_count} (paper: 44)");
}
