//! Regenerates **Figure 5**: the order in which depth-first search,
//! breadth-first search and SABRE explore the toy fault space (two sensors
//! — GPS and barometer — over a five-step workload with mode transitions
//! at t1, t2 and t4).

use avis::sabre::{SabreConfig, SabreQueue};
use avis_sim::{SensorInstance, SensorKind};

const STEPS: usize = 5;

fn label(set: &[&str], active: &[bool]) -> String {
    let names: Vec<&str> = set
        .iter()
        .zip(active)
        .filter(|(_, &a)| a)
        .map(|(n, _)| *n)
        .collect();
    if names.is_empty() {
        "∅".to_string()
    } else {
        format!("{{{}}}", names.join(","))
    }
}

/// Renders a schedule `<F1,...,F5>` where the chosen sensors fail from
/// `start` onwards (the paper's permanent-failure fault model).
fn schedule(sensors: &[bool; 2], start: usize) -> String {
    let mut cells = Vec::new();
    for t in 0..STEPS {
        let active = [sensors[0] && t >= start, sensors[1] && t >= start];
        cells.push(label(&["GPS", "Baro"], &active));
    }
    format!("⟨{}⟩", cells.join(", "))
}

fn main() {
    println!("Figure 5: exploration order over 2 sensors x 5 time-steps\n");
    let subsets: [[bool; 2]; 3] = [[true, false], [false, true], [true, true]];

    println!("Depth-first search (explores the latest step exhaustively first):");
    let mut count = 0;
    'dfs: for start in (0..STEPS).rev() {
        for subset in subsets {
            println!("  {}", schedule(&subset, start));
            count += 1;
            if count >= 6 {
                println!("  ...");
                break 'dfs;
            }
        }
    }

    println!("\nBreadth-first search (explores earlier, similar scenarios first):");
    let mut count = 0;
    'bfs: for subset in subsets {
        for start in 0..STEPS {
            println!("  {}", schedule(&subset, start));
            count += 1;
            if count >= 6 {
                println!("  ...");
                break 'bfs;
            }
        }
    }

    println!("\nSABRE (anchors at the mode transitions t1, t2, t4 first):");
    // Mode transitions of the toy workload: takeoff at t1, auto at t2, land at t4.
    let transitions = [1.0, 2.0, 4.0];
    let mut queue = SabreQueue::new(
        &transitions,
        SabreConfig {
            time_increment: 1.0,
            horizon: 4.0,
            max_queue: 64,
        },
    );
    let gps = SensorInstance::new(SensorKind::Gps, 0);
    let baro = SensorInstance::new(SensorKind::Barometer, 0);
    let candidate_sets: [(&str, Vec<SensorInstance>); 3] = [
        ("GPS", vec![gps]),
        ("Baro", vec![baro]),
        ("GPS,Baro", vec![gps, baro]),
    ];
    let mut shown = 0;
    while shown < 9 {
        let Some(anchor) = queue.next_anchor() else {
            break;
        };
        for (name, set) in &candidate_sets {
            if queue.plan_for(&anchor, set).is_some() {
                let start = anchor.timestamp as usize;
                let sensors = [name.contains("GPS"), name.contains("Baro")];
                println!("  {}   (anchor t{})", schedule(&sensors, start), start);
                shown += 1;
            }
        }
    }
    println!("\nSABRE reaches the dissimilar scenario at t4 after only the t1/t2 anchors,");
    println!("whereas DFS and BFS spend their early budget on near-duplicate schedules.");
}
