//! Regenerates **Figure 6** (and the §IV.B.1 state-explosion numbers): the
//! sensor-instance symmetry pruning, including the 21 → 5 reduction for a
//! three-compass vehicle.

use avis::pruning::{naive_combination_count, representative_subsets, symmetric_combination_count};
use avis_bench::{header, row};
use avis_sim::SensorKind;

fn main() {
    println!("Figure 6 / §IV.B.1: sensor-instance symmetry\n");
    println!(
        "{}",
        header(&[
            "Instances N",
            "Naive N×(2^N−1)",
            "With symmetry 2N−1",
            "Reduction"
        ])
    );
    for n in 1..=6u32 {
        let naive = naive_combination_count(n);
        let pruned = symmetric_combination_count(n);
        println!(
            "{}",
            row(&[
                n.to_string(),
                naive.to_string(),
                pruned.to_string(),
                format!("{:.1}x", naive as f64 / pruned as f64),
            ])
        );
    }

    println!("\nRepresentative failure sets for the paper's 3-compass example:");
    for subset in representative_subsets(SensorKind::Compass, 3) {
        let names: Vec<String> = subset
            .iter()
            .map(|i| {
                if i.index == 0 {
                    "P".to_string()
                } else {
                    format!("B{}", i.index)
                }
            })
            .collect();
        println!("  {{{}}}", names.join(", "));
    }
    println!("\n(The paper's Figure 6 explores exactly these 5 scenarios instead of 21.)");
}
