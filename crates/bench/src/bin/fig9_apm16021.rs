//! Regenerates **Figure 9**: the APM-16021 case study. An accelerometer
//! fault injected during the climb makes the vehicle overshoot its target
//! altitude, the firmware over-corrects into a landing on a stale estimate
//! and the vehicle crashes.

use avis::checker::Budget;
use avis::runner::{ExperimentConfig, ExperimentRunner};
use avis_bench::{altitude_chart, first_condition_for};
use avis_firmware::{BugId, BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;

fn main() {
    let bug = BugId::Apm16021;
    println!(
        "Figure 9: sequence of events in {} ({})\n",
        bug,
        bug.info().window_description
    );

    let (result, condition) = first_condition_for(bug, auto_box_mission(), Budget::simulations(60));
    let Some(condition) = condition else {
        println!(
            "Avis did not trigger {bug} within {} simulations — increase the budget.",
            result.simulations
        );
        return;
    };

    // Re-execute the golden run and the bug-triggering plan to chart them.
    let mut config = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::only(bug),
        auto_box_mission(),
    );
    config.max_duration = 110.0;
    let mut runner = ExperimentRunner::new(config);
    let golden = runner.run_profiling(0);
    let faulted = runner.run_with_plan(condition.plan.clone());

    println!("Injected faults: {}", condition.plan);
    println!("Found after {} simulations.\n", condition.simulations_used);
    altitude_chart(&golden.trace, &faulted.trace);

    println!("\nEvents:");
    for spec in condition.plan.specs() {
        println!("  1. {spec} injected (accelerometer fault during the climb)");
    }
    if let Some(max) = faulted
        .trace
        .altitude_series()
        .iter()
        .map(|(_, a)| *a)
        .fold(None::<f64>, |acc, a| Some(acc.map_or(a, |m| m.max(a))))
    {
        println!("  2. UAV overshoots the 20 m target (peak {max:.1} m)");
    }
    println!("  3. Firmware over-corrects into a landing on the stale estimate");
    match faulted.trace.collision {
        Some(c) => println!("  4. Crash at {:.1} m/s", c.impact_speed),
        None => println!("  4. (no crash reproduced in this run)"),
    }
    println!(
        "\nMonitor verdict: {:?}",
        condition.violations.first().map(|v| v.kind.to_string())
    );
}
