//! Regenerates **Table I**: the distinguishing features of Avis versus the
//! competing fault-injection approaches.

use avis::checker::Approach;
use avis_bench::{check_mark, header, row};

fn main() {
    println!("Table I: Distinguishing features of Avis versus competing approaches\n");
    println!(
        "{}",
        header(&["Feature", "Avis", "Strat. BFI", "BFI", "Rnd"])
    );
    let approaches = [
        Approach::Avis,
        Approach::StratifiedBfi,
        Approach::Bfi,
        Approach::Random,
    ];
    type Feature = (&'static str, fn(Approach) -> bool);
    let features: [Feature; 3] = [
        (
            "Targets operating mode transitions",
            Approach::targets_mode_transitions,
        ),
        (
            "Prior bugs inform injection sites",
            Approach::uses_prior_bugs,
        ),
        (
            "Search dissimilar scenarios first",
            Approach::searches_dissimilar_first,
        ),
    ];
    for (name, predicate) in features {
        let mut cells = vec![name.to_string()];
        cells.extend(
            approaches
                .iter()
                .map(|&a| check_mark(predicate(a)).to_string()),
        );
        println!("{}", row(&cells));
    }
}
