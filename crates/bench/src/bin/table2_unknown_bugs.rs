//! Regenerates **Table II**: the previously-unknown bugs, with the sensor
//! failure that triggers each, the failure starting moment, and whether
//! Avis and Stratified BFI expose them within the budget.

use avis::checker::{Approach, Budget};
use avis_bench::{check_mark, evaluation_matrix, header, row};
use avis_firmware::BugId;
use avis_workload::default_workloads;
use std::collections::BTreeSet;

fn bugs_found(approach: Approach, budget_per_campaign: usize) -> BTreeSet<BugId> {
    evaluation_matrix(
        [approach],
        default_workloads(),
        Budget::simulations(budget_per_campaign),
    )
    .run()
    .bugs_found()
}

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    eprintln!("running Avis and Stratified BFI campaigns ({budget} simulations each)...");
    let avis_found = bugs_found(Approach::Avis, budget);
    let sbfi_found = bugs_found(Approach::StratifiedBfi, budget);

    println!("Table II: Unknown bugs found by Avis\n");
    println!(
        "{}",
        header(&[
            "Report #",
            "Firmware",
            "Symptom",
            "Sensor Failure",
            "Failure Starting Moment",
            "Avis",
            "Stratified BFI",
        ])
    );
    for bug in BugId::UNKNOWN {
        let info = bug.info();
        println!(
            "{}",
            row(&[
                bug.report_id().to_string(),
                info.firmware.name().to_string(),
                info.symptom.to_string(),
                info.sensor.to_string(),
                info.window_description.to_string(),
                check_mark(avis_found.contains(&bug)).to_string(),
                check_mark(sbfi_found.contains(&bug)).to_string(),
            ])
        );
    }
    println!(
        "\nAvis found {}/10 unknown bugs; Stratified BFI found {}/10.",
        BugId::UNKNOWN
            .iter()
            .filter(|b| avis_found.contains(b))
            .count(),
        BugId::UNKNOWN
            .iter()
            .filter(|b| sbfi_found.contains(b))
            .count()
    );
    println!("(Paper: Avis 10/10, Stratified BFI 4/10.)");
}
