//! Regenerates **Table III**: unsafe scenarios identified by each approach
//! on each firmware under the same test budget, plus the headline
//! efficiency ratios (Avis ≈ 2.4× Stratified BFI, ≫ BFI and Random).

use avis::checker::{Approach, Budget, CampaignResult};
use avis::metrics::{efficiency_ratio, unsafe_scenario_table};
use avis_bench::{evaluation_matrix, header, row};
use avis_workload::default_workloads;

fn main() {
    // The paper budgets 2 wall-clock hours of SITL per approach and
    // workload; this harness budgets by cost seconds (simulated flight time
    // plus the modelled 10 s BFI labelling latency). Override with the
    // first CLI argument.
    let budget_seconds: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7200.0);
    eprintln!(
        "running 4 approaches x 2 firmware x 2 workloads ({budget_seconds} s budget each)..."
    );

    let report = evaluation_matrix(
        Approach::ALL,
        default_workloads(),
        Budget::seconds(budget_seconds),
    )
    .run();
    let results = report.results;

    println!("Table III: Unsafe scenarios identified by each approach\n");
    println!(
        "{}",
        header(&["Approach", "ArduPilot Unsafe #", "PX4 Unsafe #", "Total #"])
    );
    let table = unsafe_scenario_table(&results);
    for r in &table {
        println!(
            "{}",
            row(&[
                r.approach.name().to_string(),
                r.ardupilot.to_string(),
                r.px4.to_string(),
                r.total().to_string(),
            ])
        );
    }

    let by_approach = |a: Approach| -> Vec<&CampaignResult> {
        results.iter().filter(|r| r.approach == Some(a)).collect()
    };
    let avis = by_approach(Approach::Avis);
    let sbfi = by_approach(Approach::StratifiedBfi);
    let bfi = by_approach(Approach::Bfi);
    println!(
        "\nEfficiency: Avis / Stratified BFI = {:.1}x (paper: 2.4x)",
        efficiency_ratio(&avis, &sbfi)
    );
    let bfi_ratio = efficiency_ratio(&avis, &bfi);
    if bfi_ratio.is_finite() {
        println!("            Avis / BFI            = {bfi_ratio:.0}x (paper: 82x)");
    } else {
        println!("            Avis / BFI            = inf (BFI found nothing; paper: 82x)");
    }
    println!("\nSimulations executed per approach:");
    for approach in Approach::ALL {
        let sims: usize = by_approach(approach).iter().map(|r| r.simulations).sum();
        let labels: usize = by_approach(approach)
            .iter()
            .map(|r| r.labels_evaluated)
            .sum();
        println!(
            "  {:15} {sims} runs, {labels} model labels",
            approach.name()
        );
    }
}
