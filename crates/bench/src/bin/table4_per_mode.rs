//! Regenerates **Table IV**: the number of unsafe scenarios identified by
//! each approach in each operating-mode category (Takeoff / Manual /
//! Waypoint / Land).

use avis::checker::{Approach, Budget};
use avis::metrics::per_mode_table;
use avis_bench::{evaluation_matrix, header, row};
use avis_firmware::ModeCategory;
use avis_workload::default_workloads;

fn main() {
    let budget_seconds: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7200.0);
    eprintln!(
        "running 4 approaches x 2 firmware x 2 workloads ({budget_seconds} s budget each)..."
    );

    let results = evaluation_matrix(
        Approach::ALL,
        default_workloads(),
        Budget::seconds(budget_seconds),
    )
    .run()
    .results;

    println!("Table IV: Unsafe scenarios identified by each approach in each mode\n");
    let mut columns = vec!["Approach"];
    let names: Vec<String> = ModeCategory::ALL.iter().map(|c| format!("{c} #")).collect();
    columns.extend(names.iter().map(|s| s.as_str()));
    println!("{}", header(&columns));
    for r in per_mode_table(&results) {
        let mut cells = vec![r.approach.name().to_string()];
        cells.extend(r.per_category.iter().map(|(_, n)| n.to_string()));
        println!("{}", row(&cells));
    }
    println!("\n(Paper: Avis covers every mode; Stratified BFI concentrates on Manual and");
    println!(" Waypoint; BFI and Random find almost nothing in any mode.)");
}
