//! Regenerates **Table V**: the five previously-reported bugs re-inserted
//! into the code base one at a time, with whether each approach exposes
//! them and how many simulations it needs.

use avis::checker::{Approach, Budget};
use avis_bench::{campaign, header, row};
use avis_firmware::{BugId, BugSet};
use avis_workload::{auto_box_mission, manual_box_survey};

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    eprintln!("re-inserting 5 known bugs, Avis + Stratified BFI, {budget} simulations each...");

    println!("Table V: Existing bugs triggered by Avis\n");
    println!(
        "{}",
        header(&[
            "Bug ID",
            "Avis Found",
            "Avis Simulations",
            "Strat. BFI Found",
            "Strat. BFI Simulations"
        ])
    );
    for bug in BugId::KNOWN {
        let info = bug.info();
        // APM-4455 manifests while holding position, so it needs the manual
        // survey workload; the others use the default auto mission.
        let workload = if bug == BugId::Apm4455 {
            manual_box_survey()
        } else {
            auto_box_mission()
        };
        let mut cells = vec![bug.report_id().to_string()];
        for approach in [Approach::Avis, Approach::StratifiedBfi] {
            let result = campaign(
                approach,
                info.firmware,
                BugSet::only(bug),
                workload.clone(),
                Budget::simulations(budget),
            );
            match result.simulations_to_find(bug) {
                Some(sims) => {
                    cells.push("✓".to_string());
                    cells.push(sims.to_string());
                }
                None => {
                    cells.push("✗".to_string());
                    cells.push("N/A".to_string());
                }
            }
        }
        println!("{}", row(&cells));
    }
    println!("\n(Paper: Avis triggers all 5 within at most 21 simulations; Stratified BFI");
    println!(" triggers only APM-4679 and APM-9349; BFI and Random trigger none.)");
}
