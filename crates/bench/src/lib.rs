//! # avis-bench
//!
//! Shared helpers for the benchmark harnesses that regenerate every table
//! and figure of the paper's evaluation (§VI). Each table/figure has a
//! dedicated binary under `src/bin/` (see DESIGN.md for the experiment
//! index); the Criterion benches under `benches/` measure the hot paths
//! and run a scaled-down version of the Table III comparison.
//!
//! The harnesses configure campaigns through the fluent
//! [`avis::campaign::Campaign`] builder and the
//! [`avis::matrix::ScenarioMatrix`] grid API.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget, CampaignResult};
use avis::matrix::ScenarioMatrix;
use avis::runner::ExperimentConfig;
use avis_firmware::{BugSet, FirmwareProfile};
use avis_workload::ScriptedWorkload;

/// The per-run simulated-time cap shared by the harnesses (s).
pub const MAX_DURATION: f64 = 110.0;

/// Builds the standard experiment configuration used by the harnesses.
pub fn experiment(
    profile: FirmwareProfile,
    bugs: BugSet,
    workload: ScriptedWorkload,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::new(profile, bugs, workload);
    config.max_duration = MAX_DURATION;
    config
}

/// Runs one campaign with default checker settings.
pub fn campaign(
    approach: Approach,
    profile: FirmwareProfile,
    bugs: BugSet,
    workload: ScriptedWorkload,
    budget: Budget,
) -> CampaignResult {
    Campaign::builder()
        .firmware(profile)
        .bugs(bugs)
        .workload(workload)
        .max_duration(MAX_DURATION)
        .approach(approach)
        .budget(budget)
        .build()
        .run()
}

/// The firmware × workload × approach grid the Table II / III / IV
/// harnesses share: every profile's "current code base" flown on the
/// given workloads under one budget, one campaign per cell.
pub fn evaluation_matrix(
    approaches: impl IntoIterator<Item = Approach>,
    workloads: impl IntoIterator<Item = ScriptedWorkload>,
    budget: Budget,
) -> ScenarioMatrix {
    ScenarioMatrix::new()
        .firmwares(FirmwareProfile::ALL)
        .workloads(workloads)
        .approaches(approaches)
        .budget(budget)
        .max_duration(MAX_DURATION)
}

/// Runs an Avis campaign against a firmware that contains only the given
/// bug and returns the campaign plus the first unsafe condition that the
/// bug caused (used by the Figure 1 / 9 / 10 case-study harnesses).
pub fn first_condition_for(
    bug: avis_firmware::BugId,
    workload: ScriptedWorkload,
    budget: Budget,
) -> (CampaignResult, Option<avis::checker::UnsafeCondition>) {
    let profile = bug.info().firmware;
    let result = campaign(Approach::Avis, profile, BugSet::only(bug), workload, budget);
    let condition = result
        .unsafe_conditions
        .iter()
        .find(|u| u.triggered_bugs.contains(&bug))
        .cloned();
    (result, condition)
}

/// Prints a golden-vs-faulted altitude comparison (the content of the
/// paper's Figure 9 / Figure 10 charts) at two-second resolution.
pub fn altitude_chart(golden: &avis::trace::Trace, faulted: &avis::trace::Trace) {
    println!(
        "{}",
        header(&["t (s)", "golden alt (m)", "faulted alt (m)", "faulted mode"])
    );
    let horizon = golden.duration.max(faulted.duration);
    let mut t = 0.0;
    while t <= horizon {
        let g = golden.sample_at(t).map(|s| s.position.z).unwrap_or(0.0);
        let f = faulted.sample_at(t).map(|s| s.position.z).unwrap_or(0.0);
        let mode = faulted
            .mode_at(t)
            .map(|m| m.name())
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{}",
            row(&[
                format!("{t:5.1}"),
                format!("{g:6.2}"),
                format!("{f:6.2}"),
                mode
            ])
        );
        t += 2.0;
    }
}

/// Renders a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Renders a markdown-style header plus separator.
pub fn header(cells: &[&str]) -> String {
    let head = row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    let sep = row(&cells.iter().map(|_| "---".to_string()).collect::<Vec<_>>());
    format!("{head}\n{sep}")
}

/// Formats a boolean as the check-mark notation used in the paper's tables.
pub fn check_mark(found: bool) -> &'static str {
    if found {
        "✓"
    } else {
        "✗"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_helpers() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
        let h = header(&["x", "y"]);
        assert!(h.contains("| x | y |"));
        assert!(h.contains("| --- | --- |"));
        assert_eq!(check_mark(true), "✓");
        assert_eq!(check_mark(false), "✗");
    }

    #[test]
    fn experiment_builder_sets_duration() {
        let cfg = experiment(
            FirmwareProfile::ArduPilotLike,
            BugSet::none(),
            avis_workload::auto_box_mission(),
        );
        assert_eq!(cfg.max_duration, MAX_DURATION);
        assert_eq!(cfg.profile, FirmwareProfile::ArduPilotLike);
    }

    #[test]
    fn evaluation_matrix_spans_the_table_iii_grid() {
        let matrix = evaluation_matrix(
            Approach::ALL,
            avis_workload::default_workloads(),
            Budget::simulations(10),
        );
        assert_eq!(matrix.cell_count(), 4 * 2 * 2);
    }
}
