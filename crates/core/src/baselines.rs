//! The competing fault-injection approaches the paper compares against
//! (Table I): random injection, Bayesian Fault Injection (BFI) and
//! Stratified BFI (BFI's model driven by SABRE's anchor ordering).
//!
//! BFI (Jha et al., DSN'19) learns from prior unsafe conditions which
//! injection sites are likely to trigger new ones. We cannot use the
//! original autonomous-driving model or training corpus, so the model here
//! is a Laplace-smoothed conditional-probability table over
//! `(sensor kind, operating-mode category)` features, trained on a
//! synthetic corpus that encodes the same qualitative property the paper
//! describes: the training data contains unsafe conditions from the *main
//! flight modes* (waypoint flight and manual/position-hold flight, plus
//! IMU failures during takeoff) but not from the landing/RTL phases and
//! never from joint multi-sensor failures. The per-site inference latency
//! the paper measured (~10 s per labelled scenario) is charged against the
//! approach's test budget.

use avis_firmware::ModeCategory;
use avis_hinj::{FaultPlan, FaultSpec};
use avis_sim::{SensorInstance, SensorKind, SensorSuiteConfig, SimRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One labelled example for the BFI model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingExample {
    /// Sensor kind that failed.
    pub sensor: SensorKind,
    /// Mode category in which the failure was injected.
    pub category: ModeCategory,
    /// Whether the example led to an unsafe condition.
    pub led_to_unsafe: bool,
}

/// The Bayesian fault-injection model: a smoothed probability of "unsafe"
/// per `(sensor, mode-category)` feature pair.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BfiModel {
    counts: BTreeMap<(SensorKind, ModeCategory), (u32, u32)>,
    /// Seconds of (budget) time one model inference costs.
    pub label_cost_seconds: f64,
}

impl BfiModel {
    /// Trains a model from labelled examples.
    pub fn train(examples: &[TrainingExample], label_cost_seconds: f64) -> Self {
        let mut counts: BTreeMap<(SensorKind, ModeCategory), (u32, u32)> = BTreeMap::new();
        for ex in examples {
            let entry = counts.entry((ex.sensor, ex.category)).or_insert((0, 0));
            entry.1 += 1;
            if ex.led_to_unsafe {
                entry.0 += 1;
            }
        }
        BfiModel {
            counts,
            label_cost_seconds,
        }
    }

    /// The default training corpus: unsafe conditions observed in the main
    /// flight modes (see the module documentation). This reproduces the
    /// coverage bias the paper attributes to BFI's training data.
    pub fn default_training() -> Vec<TrainingExample> {
        let mut examples = Vec::new();
        let positive: &[(SensorKind, ModeCategory)] = &[
            (SensorKind::Accelerometer, ModeCategory::Waypoint),
            (SensorKind::Gyroscope, ModeCategory::Waypoint),
            (SensorKind::Gps, ModeCategory::Waypoint),
            (SensorKind::Barometer, ModeCategory::Waypoint),
            (SensorKind::Compass, ModeCategory::Waypoint),
            (SensorKind::Accelerometer, ModeCategory::Manual),
            (SensorKind::Gyroscope, ModeCategory::Manual),
            (SensorKind::Compass, ModeCategory::Manual),
            (SensorKind::Barometer, ModeCategory::Manual),
            (SensorKind::Accelerometer, ModeCategory::Takeoff),
            (SensorKind::Gyroscope, ModeCategory::Takeoff),
        ];
        for &(sensor, category) in positive {
            for _ in 0..4 {
                examples.push(TrainingExample {
                    sensor,
                    category,
                    led_to_unsafe: true,
                });
            }
            examples.push(TrainingExample {
                sensor,
                category,
                led_to_unsafe: false,
            });
        }
        // Explicit negatives: failures seen during landing / RTL and for the
        // remaining sensors were handled safely in the training fleet.
        let negative: &[(SensorKind, ModeCategory)] = &[
            (SensorKind::Accelerometer, ModeCategory::Land),
            (SensorKind::Gyroscope, ModeCategory::Land),
            (SensorKind::Barometer, ModeCategory::Land),
            (SensorKind::Compass, ModeCategory::Land),
            (SensorKind::Gps, ModeCategory::Land),
            (SensorKind::Gps, ModeCategory::Manual),
            (SensorKind::Gps, ModeCategory::Takeoff),
            (SensorKind::Barometer, ModeCategory::Takeoff),
            (SensorKind::Compass, ModeCategory::Takeoff),
            (SensorKind::Battery, ModeCategory::Waypoint),
            (SensorKind::Battery, ModeCategory::Manual),
        ];
        for &(sensor, category) in negative {
            for _ in 0..5 {
                examples.push(TrainingExample {
                    sensor,
                    category,
                    led_to_unsafe: false,
                });
            }
        }
        examples
    }

    /// A model trained on [`BfiModel::default_training`] with the paper's
    /// ~10 s per-label inference latency.
    pub fn with_default_training() -> Self {
        BfiModel::train(&BfiModel::default_training(), 10.0)
    }

    /// The Laplace-smoothed probability that failing `sensor` in
    /// `category` leads to an unsafe condition.
    pub fn probability_unsafe(&self, sensor: SensorKind, category: ModeCategory) -> f64 {
        let (unsafe_count, total) = self
            .counts
            .get(&(sensor, category))
            .copied()
            .unwrap_or((0, 0));
        (unsafe_count as f64 + 1.0) / (total as f64 + 2.0)
    }

    /// Whether the model labels the site as worth injecting (probability
    /// above one half).
    pub fn predicts_unsafe(&self, sensor: SensorKind, category: ModeCategory) -> bool {
        self.probability_unsafe(sensor, category) > 0.5
    }

    /// Labels a whole candidate failure set. BFI's model reasons about one
    /// sensor at a time, so joint failures of different kinds are labelled
    /// "not unsafe" — the limitation the PX4-13291 case study exposes.
    pub fn predicts_unsafe_set(&self, set: &[SensorInstance], category: ModeCategory) -> bool {
        let mut kinds: Vec<SensorKind> = set.iter().map(|i| i.kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        match kinds.as_slice() {
            [single] => self.predicts_unsafe(*single, category),
            _ => false,
        }
    }
}

/// Random fault injection: uniformly random instance and uniformly random
/// injection time, with a uniformly random number of simultaneous
/// failures (1 or 2), as the paper's "Rnd" baseline.
#[derive(Debug, Clone)]
pub struct RandomInjection {
    rng: SimRng,
    instances: Vec<SensorInstance>,
    horizon: f64,
}

impl RandomInjection {
    /// Creates a random injector over the vehicle's sensor complement.
    pub fn new(config: &SensorSuiteConfig, horizon: f64, seed: u64) -> Self {
        RandomInjection {
            rng: SimRng::seed_from_u64(seed),
            instances: config.instances(),
            horizon,
        }
    }

    /// Draws the next random fault plan.
    pub fn next_plan(&mut self) -> FaultPlan {
        let failures = if self.rng.chance(0.3) { 2 } else { 1 };
        let mut plan = FaultPlan::empty();
        for _ in 0..failures {
            let instance = self.instances[self.rng.index(self.instances.len())];
            let time = self.rng.uniform_range(0.0, self.horizon);
            plan.add(FaultSpec::new(instance, time));
        }
        plan
    }
}

/// The site enumeration order used by the vanilla BFI baseline: a
/// depth-first walk of the fault space, which (as in the paper's Figure 5
/// discussion) explores the *latest* sensor reads first and works
/// backwards one read at a time.
#[derive(Debug, Clone)]
pub struct DfsSiteIterator {
    instances: Vec<SensorInstance>,
    time: f64,
    step: f64,
    instance_index: usize,
}

impl DfsSiteIterator {
    /// Creates the iterator over all instances, starting from `horizon` and
    /// stepping backwards by `step` seconds (one sensor-read period).
    pub fn new(config: &SensorSuiteConfig, horizon: f64, step: f64) -> Self {
        DfsSiteIterator {
            instances: config.instances(),
            time: horizon,
            step,
            instance_index: 0,
        }
    }
}

impl Iterator for DfsSiteIterator {
    type Item = (SensorInstance, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.time < 0.0 {
            return None;
        }
        let site = (self.instances[self.instance_index], self.time);
        self.instance_index += 1;
        if self.instance_index >= self.instances.len() {
            self.instance_index = 0;
            self.time -= self.step;
        }
        Some(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_reproduces_training_bias() {
        let model = BfiModel::with_default_training();
        // Main-flight-mode failures are predicted unsafe.
        assert!(model.predicts_unsafe(SensorKind::Compass, ModeCategory::Waypoint));
        assert!(model.predicts_unsafe(SensorKind::Gps, ModeCategory::Waypoint));
        assert!(model.predicts_unsafe(SensorKind::Accelerometer, ModeCategory::Takeoff));
        assert!(model.predicts_unsafe(SensorKind::Gyroscope, ModeCategory::Takeoff));
        // Landing-phase and never-seen failures are not.
        assert!(!model.predicts_unsafe(SensorKind::Accelerometer, ModeCategory::Land));
        assert!(!model.predicts_unsafe(SensorKind::Barometer, ModeCategory::Takeoff));
        assert!(!model.predicts_unsafe(SensorKind::Compass, ModeCategory::Takeoff));
        assert!(!model.predicts_unsafe(SensorKind::Gps, ModeCategory::Manual));
        assert!(!model.predicts_unsafe(SensorKind::Battery, ModeCategory::Waypoint));
        assert_eq!(model.label_cost_seconds, 10.0);
    }

    #[test]
    fn probabilities_are_smoothed() {
        let model = BfiModel::train(&[], 1.0);
        // With no data at all the smoothed probability is exactly one half,
        // which is treated as "not predicted unsafe".
        assert_eq!(
            model.probability_unsafe(SensorKind::Gps, ModeCategory::Waypoint),
            0.5
        );
        assert!(!model.predicts_unsafe(SensorKind::Gps, ModeCategory::Waypoint));
    }

    #[test]
    fn joint_failures_are_never_predicted() {
        let model = BfiModel::with_default_training();
        let set = vec![
            SensorInstance::new(SensorKind::Gps, 0),
            SensorInstance::new(SensorKind::Battery, 0),
        ];
        assert!(!model.predicts_unsafe_set(&set, ModeCategory::Waypoint));
        // Multiple instances of the same kind count as one feature.
        let same_kind = vec![
            SensorInstance::new(SensorKind::Compass, 0),
            SensorInstance::new(SensorKind::Compass, 1),
        ];
        assert!(model.predicts_unsafe_set(&same_kind, ModeCategory::Waypoint));
    }

    #[test]
    fn random_injection_is_seeded_and_in_range() {
        let config = SensorSuiteConfig::iris();
        let mut a = RandomInjection::new(&config, 80.0, 42);
        let mut b = RandomInjection::new(&config, 80.0, 42);
        for _ in 0..50 {
            let pa = a.next_plan();
            let pb = b.next_plan();
            assert_eq!(pa, pb, "same seed, same plans");
            assert!(!pa.is_empty() && pa.len() <= 2);
            for spec in pa.specs() {
                assert!((0.0..=80.0).contains(&spec.time));
            }
        }
    }

    #[test]
    fn dfs_iterator_walks_backwards_from_the_end() {
        let config = SensorSuiteConfig::minimal();
        let sites: Vec<(SensorInstance, f64)> = DfsSiteIterator::new(&config, 1.0, 0.5).collect();
        // 6 instances × 3 time points (1.0, 0.5, 0.0).
        assert_eq!(sites.len(), 18);
        assert_eq!(sites[0].1, 1.0);
        assert_eq!(sites[6].1, 0.5);
        assert_eq!(sites[17].1, 0.0);
        // Times never increase.
        for pair in sites.windows(2) {
            assert!(pair[1].1 <= pair[0].1);
        }
    }
}
