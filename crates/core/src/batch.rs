//! Batched lockstep execution: one worker advances a set of *sibling*
//! fault-injection scenarios through a single SoA [`LaneBatch`] instead
//! of running them back to back.
//!
//! The prefix-sharded dispatcher already routes plans that share an
//! injection prefix to the same worker (see [`crate::engine`]); those
//! plans execute identical state evolutions until their first divergent
//! failure fires. Batching exploits exactly that window:
//!
//! - The **leader** — the plan whose first divergence from the batch's
//!   common plan intersection is latest (ties break to the lowest batch
//!   index) — resumes from the deepest cached checkpoint cut at or
//!   before the batch's earliest lane-fork time (or cold-starts at
//!   `t = 0`) and is the only lane that records cuts, exactly as a
//!   scalar run of that plan would. The resume lookup is capped because
//!   lane forks are taken from the *live* leader at loop-tops — a
//!   deeper cut would skip state a sibling still needs.
//! - Every other lane is **virtual** until its divergence time: its
//!   state is the leader's, so nothing is simulated for it. At the first
//!   loop-top at or past its divergence time it **forks from the leader
//!   lane** — the same capture-and-restore used by checkpoint forks,
//!   with the plan swapped at restore — and becomes a live SoA lane.
//! - A live lane is **evicted to the scalar path** when its firmware
//!   control path departs the leader's
//!   ([`Firmware::control_path_matches`]): past that point the lanes'
//!   behaviour has genuinely diverged and lockstep stops paying.
//! - A lane whose plan never diverges from the common intersection
//!   (possible only when it equals the leader's plan) simply rides the
//!   leader's result.
//!
//! Batching is bit-identical to scalar execution by construction: the
//! SoA stepper is byte-equivalent to [`Simulator::step_into`] per lane
//! (tested in `avis-sim`), all lanes share one experiment seed so their
//! scalar runs would consume identical sensor-noise streams at equal
//! simulated time, and forks reuse the snapshot-cut argument from
//! [`crate::snapshot`] (a failure scheduled at `t` first fires at the
//! firmware step at `t`, after a fork taken at loop-top time `t`).
//! Like checkpointing, it is purely a speed knob and is excluded from
//! the experiment fingerprint.

use crate::contain;
use crate::protocol::ProtocolTracker;
use crate::runner::{ExperimentRunner, RunResult, RunVerdict, LINK_RNG_SALT};
use crate::snapshot::{injection_prefix, ChainParent, RunSnapshot, SnapshotCache, SnapshotKey};
use crate::trace::{transition_from_code, ModeTransition, StateSample, Trace};
use avis_firmware::{BugId, Firmware};
use avis_hinj::{FaultInjector, FaultPlan, FaultyLink, LinkSnapshot, SharedInjector};
use avis_mavlite::{Endpoint, Message};
use avis_sim::simulator::{SimConfig, Simulator, StepOutput};
use avis_sim::{CowVec, LaneBatch, MotorCommands, SimRng};
use avis_workload::WorkloadStatus;

/// How often (in lock-step iterations) the wall-clock backstop is
/// consulted — same coarse stride as the scalar loop in
/// [`crate::runner`], so the hot loop never syscalls per step.
const WALL_CLOCK_STRIDE: u64 = 4096;

/// Everything one lane owns besides its simulator state (which lives in
/// the shared [`LaneBatch`]): the firmware instance, the fault shims,
/// the protocol tracker, the workload script and the trace-in-progress.
/// These are exactly the non-`sim` fields of a [`RunSnapshot`], which is
/// what lets a lane fork from the leader with the standard
/// capture-and-restore path and finish on the scalar path unchanged.
struct LaneCtx {
    /// Position of this lane's plan in the batch's input plan list.
    index: usize,
    /// The lane's id inside the shared [`LaneBatch`].
    lane: u64,
    injector: SharedInjector,
    firmware: Firmware,
    link: FaultyLink,
    tracker: ProtocolTracker,
    workload: avis_workload::ScriptedWorkload,
    samples: CowVec<StateSample>,
    fence_violations: usize,
    next_sample_time: f64,
    workload_status: WorkloadStatus,
    terminal_since: Option<f64>,
}

impl LaneCtx {
    /// One ground-station exchange for this lane, transcribed from the
    /// scalar loop in [`crate::runner`]: telemetry and commands cross
    /// the lane's own fault shim, the tracker records protocol events,
    /// and the workload ticks. Returns `true` when the grace period
    /// after a terminal workload status has elapsed — the lane then
    /// finishes *before* stepping, exactly where the scalar loop breaks.
    fn exchange(&mut self, outbox: &mut Vec<Message>, time: f64, grace_period: f64) -> bool {
        self.firmware.drain_outbox_into(outbox);
        for msg in outbox.iter() {
            self.link.send(Endpoint::Vehicle, msg, time);
        }
        let telemetry = self.link.deliver(Endpoint::GroundStation, time);
        self.tracker
            .note_delivered(&telemetry, time, self.firmware.mission().items());
        let (commands, status) = self.workload.tick(&telemetry, time);
        for msg in &commands {
            self.tracker.note_sent(msg, time);
            self.link.send(Endpoint::GroundStation, msg, time);
        }
        let inbound = self.link.deliver(Endpoint::Vehicle, time);
        self.firmware.handle_messages(inbound.iter());
        self.workload_status = status;
        if self.workload_status.is_terminal() {
            let since = *self.terminal_since.get_or_insert(time);
            if time - since >= grace_period {
                return true;
            }
        }
        false
    }

    /// Post-physics bookkeeping for one step: fence-violation counting
    /// and trace sampling, against the loop-top `time` exactly like the
    /// scalar loop.
    fn post_step(&mut self, output: &StepOutput, time: f64, sample_interval: f64) {
        if !output.violated_fences.is_empty() {
            self.fence_violations += 1;
        }
        if time >= self.next_sample_time {
            self.samples.push(StateSample {
                time,
                position: output.state.position,
                acceleration: output.state.acceleration,
                mode: self.firmware.mode(),
            });
            self.next_sample_time += sample_interval;
        }
    }

    /// Assembles the lane's [`RunResult`], transcribed from the scalar
    /// finalisation tail in [`crate::runner`].
    fn finalize(self, sim: &Simulator, sample_interval: f64, verdict: RunVerdict) -> RunResult {
        let mode_transitions: Vec<ModeTransition> = self
            .injector
            .mode_transitions()
            .into_iter()
            .filter_map(|r| transition_from_code(r.time, r.to))
            .collect();
        let duration = sim.time();
        let trace = Trace {
            sample_interval,
            samples: self.samples.into_vec(),
            mode_transitions,
            collision: sim.first_collision(),
            fence_violations: self.fence_violations,
            workload_status: self.workload_status,
            duration,
            protocol: self.tracker.into_events(),
        };
        let mut triggered_defects: Vec<BugId> = self
            .firmware
            .defect_log()
            .iter()
            .flat_map(|(_, o)| o.active.iter().copied())
            .collect();
        triggered_defects.sort_unstable();
        triggered_defects.dedup();
        let plan = self.injector.take_plan();
        RunResult {
            plan,
            trace,
            simulated_seconds: duration,
            triggered_defects,
            verdict,
        }
    }
}

/// Extracts a lane from the batch and finalises its result, noting the
/// leader's retirement so virtual lanes can be resolved afterwards.
#[allow(clippy::too_many_arguments)]
fn retire(
    ctx: LaneCtx,
    batch: &mut LaneBatch,
    verdict: RunVerdict,
    sample_interval: f64,
    results: &mut [Option<RunResult>],
    leader: usize,
    leader_result: &mut Option<RunResult>,
    leader_live: &mut bool,
) {
    let (sim, _output) = batch.extract_lane(ctx.lane);
    let idx = ctx.index;
    let result = ctx.finalize(&sim, sample_interval, verdict);
    if idx == leader {
        *leader_result = Some(result.clone());
        *leader_live = false;
    }
    results[idx] = Some(result);
}

impl ExperimentRunner {
    /// Executes a batch of sibling fault-injection scenarios in lockstep
    /// through one SoA [`LaneBatch`], with the same panic containment as
    /// [`ExperimentRunner::run_contained`]: a panic anywhere inside the
    /// batched run quarantines the snapshots it recorded and falls back
    /// to scalar contained execution of every plan in the batch. Runs
    /// are pure functions of their plan, so the fallback reproduces the
    /// non-panicking lanes' results exactly and the panicking lane gets
    /// its deterministic [`RunVerdict::Crashed`].
    ///
    /// Results come back in input order and are bit-identical to
    /// `plans.map(run_with_plan)` — batching, like checkpointing, is
    /// purely a speed knob.
    pub fn run_batch_contained(&mut self, plans: Vec<FaultPlan>) -> Vec<RunResult> {
        if plans.len() < 2 {
            return plans.into_iter().map(|p| self.run_contained(p)).collect();
        }
        let retained = plans.clone();
        match contain::catch(|| self.execute_batch(plans)) {
            Ok(results) => results,
            Err(_payload) => {
                let tainted = std::mem::take(&mut self.fresh_keys);
                self.cache.quarantine(&tainted);
                if let Some(tier) = &self.shared {
                    tier.retract(&tainted);
                }
                // The panic payload is deliberately dropped: the scalar
                // rerun reproduces the crash in its own containment
                // boundary, which renders the canonical message with the
                // per-plan context.
                retained
                    .into_iter()
                    .map(|p| self.run_contained(p))
                    .collect()
            }
        }
    }

    /// The batched lockstep loop. See the module docs for the lane
    /// lifecycle; the loop body is a lane-indexed transcription of the
    /// scalar loop in [`crate::runner`], in the same phase order:
    /// watchdogs, checkpoint cut (leader only), ground-station exchange,
    /// terminal/grace retirement, firmware step, physics step, trace
    /// sampling — plus fork processing at the very top and divergence
    /// eviction at the very bottom.
    fn execute_batch(&mut self, plans: Vec<FaultPlan>) -> Vec<RunResult> {
        debug_assert!(plans.len() >= 2, "a batch needs at least two lanes");
        self.runs += plans.len() as u64;
        self.step_cursor = 0;
        self.fresh_keys.clear();

        let started = self
            .config
            .watchdog
            .wall_clock_seconds
            // avis-lint: allow(d1, reason = "wall-clock watchdog backstop: only ever converts a hung substrate into RunVerdict::Diverged, never observed by a terminating run")
            .map(|_| std::time::Instant::now());

        // Config scalars copied out so no `&self.config` borrow is held
        // across the cache/eviction calls below.
        let dt = self.config.dt;
        let max_duration = self.config.max_duration;
        let sample_interval = self.config.sample_interval;
        let grace_period = self.config.grace_period;
        let max_steps = self.config.watchdog.max_steps;
        let wall_clock_limit = self.config.watchdog.wall_clock_seconds;

        // Plan algebra: the common intersection, each plan's first
        // divergence from it, and the leader (latest divergence; `None`
        // means the plan never diverges, i.e. it *is* the intersection).
        let common = plans
            .iter()
            .skip(1)
            .fold(plans[0].clone(), |acc, p| acc.intersection(p));
        let divergences: Vec<Option<f64>> = plans
            .iter()
            .map(|p| p.first_divergence_from(&common))
            .collect();
        let mut leader = 0usize;
        for (i, d) in divergences.iter().enumerate().skip(1) {
            if d.unwrap_or(f64::INFINITY) > divergences[leader].unwrap_or(f64::INFINITY) {
                leader = i;
            }
        }
        // Virtual lanes never fork (their plan equals the leader's);
        // pending lanes fork at their divergence time, in time order.
        let mut virtuals: Vec<usize> = Vec::new();
        let mut pending: Vec<(f64, usize)> = Vec::new();
        for (i, d) in divergences.iter().enumerate() {
            if i == leader {
                continue;
            }
            match d {
                Some(d) => pending.push((*d, i)),
                None => virtuals.push(i),
            }
        }
        pending.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));

        // Provision the leader, mirroring the scalar runner: fork from
        // the deepest cached cut whose injection prefix matches the
        // leader's plan — probing both the local cache and the shared
        // tier — or cold-start from t = 0. The lookup is *capped at the
        // earliest pending lane-fork time*: lane forks are taken from
        // the live leader at loop-tops, so a cut past one would skip
        // state a sibling still needs (the cap keeps the deepest cut at
        // or before it instead of rejecting resume outright). Either way
        // the leader records cuts, so later scenarios fork from the
        // shared prefix it executes.
        let checkpointing = self.config.checkpoints.enabled && !self.cache.degraded();
        let chains_enabled = self.config.checkpoints.keyframe_stride > 1;
        let checkpoint_interval = self.config.checkpoints.interval;
        let anchors: Vec<f64> = if checkpointing {
            self.config.checkpoints.anchors.clone()
        } else {
            Vec::new()
        };
        let fork_cap = pending.first().map_or(f64::INFINITY, |&(d, _)| d);
        let mut chain_parent: Option<ChainParent> = None;
        let resumed = if checkpointing {
            let local = self.cache.peek_deepest(0, &plans[leader], fork_cap);
            let local_depth = local.as_ref().map(|(t, _)| *t);
            let shared_probe = self.shared.as_ref().and_then(|tier| {
                tier.peek_depth(0, &plans[leader], fork_cap)
                    .map(|d| (d, tier))
            });
            let take_local = |cache: &mut SnapshotCache, chain_parent: &mut Option<ChainParent>| {
                local.clone().and_then(|(time, key)| {
                    // `take` re-validates record-time checksums; a corrupt
                    // chain quarantines inside the cache and the batch
                    // transparently cold-starts.
                    let snapshot = cache.take(&key, time)?;
                    if chains_enabled {
                        *chain_parent = Some(ChainParent {
                            key,
                            snapshot: snapshot.clone(),
                        });
                    }
                    Some(snapshot)
                })
            };
            match shared_probe {
                Some((probed, tier)) if Some(probed) > local_depth => {
                    match tier.take_deepest(0, &plans[leader], fork_cap) {
                        Some((depth, snapshot)) => {
                            self.cache.note_shared_fork(depth);
                            Some(snapshot)
                        }
                        None => take_local(&mut self.cache, &mut chain_parent),
                    }
                }
                _ => take_local(&mut self.cache, &mut chain_parent),
            }
        } else {
            None
        };

        let cfg = &self.config;
        let leader_plan = plans[leader].clone();
        let leader_link_plan = leader_plan.link_plan().clone();
        let (
            sim,
            injector,
            firmware,
            link,
            tracker,
            workload,
            samples,
            output,
            fence_violations,
            next_sample_time,
            workload_status,
            terminal_since,
        );
        match resumed {
            Some(snapshot) => {
                let RunSnapshot {
                    sim: sim_snap,
                    firmware: firmware_snap,
                    injector: injector_snap,
                    link: link_snap,
                    tracker: tracker_snap,
                    workload: workload_snap,
                    samples: samples_snap,
                    output: output_snap,
                    fence_violations: fences_snap,
                    next_sample_time: sample_time_snap,
                    workload_status: status_snap,
                    terminal_since: terminal_snap,
                    ..
                } = snapshot;
                injector = SharedInjector::new(injector_snap.into_restored_with_plan(leader_plan));
                firmware = firmware_snap.into_restored(injector.clone());
                sim = sim_snap.into_restored();
                link = link_snap.into_restored_with_plan(leader_link_plan);
                tracker = tracker_snap;
                workload = workload_snap;
                samples = samples_snap;
                output = output_snap;
                fence_violations = fences_snap;
                next_sample_time = sample_time_snap;
                workload_status = status_snap;
                terminal_since = terminal_snap;
            }
            None => {
                if checkpointing {
                    self.cache.note_cold_run();
                }
                let mut sim_config = SimConfig {
                    dt: cfg.dt,
                    seed: cfg.seed,
                    ..SimConfig::default()
                };
                if let Some(noise) = &cfg.noise {
                    sim_config.sensors.noise = noise.clone();
                }
                let mut cold_sim =
                    Simulator::new_shared(sim_config, cfg.workload.shared_environment());
                injector = SharedInjector::new(FaultInjector::new(leader_plan));
                firmware = Firmware::new(cfg.profile, cfg.bugs.clone(), injector.clone());
                link = FaultyLink::new(
                    leader_link_plan,
                    SimRng::seed_from_u64(cfg.seed ^ LINK_RNG_SALT),
                );
                samples =
                    CowVec::with_capacity((cfg.max_duration / cfg.sample_interval) as usize + 2);
                workload = cfg.workload.fresh();
                tracker = ProtocolTracker::new();
                let mut primed = StepOutput::empty();
                cold_sim.step_into(&MotorCommands::IDLE, &mut primed);
                sim = cold_sim;
                output = primed;
                fence_violations = 0;
                next_sample_time = 0.0;
                workload_status = WorkloadStatus::Running;
                terminal_since = None;
            }
        }
        let (mut batch, leader_lane) = LaneBatch::from_simulator(sim, output);

        let mut ctxs: Vec<LaneCtx> = Vec::with_capacity(plans.len());
        ctxs.push(LaneCtx {
            index: leader,
            lane: leader_lane,
            injector,
            firmware,
            link,
            tracker,
            workload,
            samples,
            fence_violations,
            next_sample_time,
            workload_status,
            terminal_since,
        });
        let mut next_checkpoint = if checkpointing {
            (batch.time() / checkpoint_interval).floor() * checkpoint_interval + checkpoint_interval
        } else {
            f64::INFINITY
        };
        let mut anchor_idx = anchors.partition_point(|&a| a < batch.time() + dt);

        let mut results: Vec<Option<RunResult>> = plans.iter().map(|_| None).collect();
        let mut leader_result: Option<RunResult> = None;
        let mut leader_live = true;
        let mut outbox: Vec<Message> = Vec::new();
        // Reused per iteration: live lane ids in batch slot order, and
        // the motor command for each (steady state allocates nothing).
        let mut lane_order: Vec<u64> = Vec::new();
        let mut commands: Vec<MotorCommands> = Vec::new();

        'lockstep: loop {
            if ctxs.is_empty() {
                break;
            }
            let time = batch.time();
            if time >= max_duration {
                break;
            }

            // Fork every pending lane whose divergence time has arrived,
            // while the leader is still live to fork from. A fork at
            // loop-top `time` is the exact state a scalar run of that
            // lane's plan would hold here: every fault the two plans
            // disagree on is scheduled at or after this loop-top, and a
            // failure scheduled at `t` first fires at the firmware step
            // at `t`.
            while leader_live && pending.first().is_some_and(|&(d, _)| time >= d) {
                let (_, idx) = pending.remove(0);
                debug_assert_eq!(ctxs[0].index, leader, "leader lane leads the ctx list");
                let lane = batch.clone_lane(ctxs[0].lane);
                let forked = {
                    let leader_ctx = &mut ctxs[0];
                    let injector = SharedInjector::new(
                        leader_ctx
                            .injector
                            .snapshot()
                            .into_restored_with_plan(plans[idx].clone()),
                    );
                    let firmware = leader_ctx
                        .firmware
                        .snapshot()
                        .into_restored(injector.clone());
                    let link = LinkSnapshot::capture(&leader_ctx.link)
                        .into_restored_with_plan(plans[idx].link_plan().clone());
                    LaneCtx {
                        index: idx,
                        lane,
                        injector,
                        firmware,
                        link,
                        tracker: leader_ctx.tracker.clone(),
                        workload: leader_ctx.workload.clone(),
                        samples: leader_ctx.samples.sealed_clone(),
                        fence_violations: leader_ctx.fence_violations,
                        next_sample_time: leader_ctx.next_sample_time,
                        workload_status: leader_ctx.workload_status.clone(),
                        terminal_since: leader_ctx.terminal_since,
                    }
                };
                ctxs.push(forked);
            }

            // Scenario watchdogs, shared across lanes: the step cursor
            // derives from the shared simulated clock, so the step
            // budget trips every lane at the identical simulated state a
            // scalar run would trip at.
            self.step_cursor = (time / dt).round() as u64;
            let mut tripped = max_steps.is_some_and(|m| self.step_cursor >= m);
            if let (Some(limit), Some(started)) = (wall_clock_limit, started) {
                if self.step_cursor.is_multiple_of(WALL_CLOCK_STRIDE)
                    && started.elapsed().as_secs_f64() > limit
                {
                    tripped = true;
                }
            }
            if tripped {
                while let Some(ctx) = ctxs.pop() {
                    retire(
                        ctx,
                        &mut batch,
                        RunVerdict::Diverged,
                        sample_interval,
                        &mut results,
                        leader,
                        &mut leader_result,
                        &mut leader_live,
                    );
                }
                break 'lockstep;
            }

            // Checkpoint recording, leader lane only, cut at the top of
            // the loop body exactly like the scalar runner: the snapshot
            // captures the leader's state before this step's exchange,
            // firmware step and physics step.
            if checkpointing && leader_live {
                let anchor_due = anchor_idx < anchors.len() && time + dt > anchors[anchor_idx];
                if time >= next_checkpoint || anchor_due {
                    debug_assert_eq!(ctxs[0].index, leader);
                    let leader_ctx = &mut ctxs[0];
                    let snapshot = RunSnapshot {
                        sim: batch.lane_snapshot(leader_ctx.lane),
                        firmware: leader_ctx.firmware.snapshot(),
                        injector: leader_ctx.injector.snapshot(),
                        link: LinkSnapshot::capture(&leader_ctx.link),
                        tracker: leader_ctx.tracker.clone(),
                        workload: leader_ctx.workload.clone(),
                        samples: leader_ctx.samples.sealed_clone(),
                        output: batch.output(leader_ctx.lane).clone(),
                        fence_violations: leader_ctx.fence_violations,
                        next_sample_time: leader_ctx.next_sample_time,
                        workload_status: leader_ctx.workload_status.clone(),
                        terminal_since: leader_ctx.terminal_since,
                        time,
                        prefix: injection_prefix(&leader_ctx.injector.plan(), time),
                    };
                    self.fresh_keys
                        .push(SnapshotKey::for_snapshot(0, &snapshot));
                    if let Some(tier) = &self.shared {
                        tier.offer(0, &snapshot);
                    }
                    let parent_candidate = chains_enabled.then(|| snapshot.clone());
                    let stored = self.cache.record(0, snapshot, chain_parent.as_ref());
                    if let (Some(key), Some(snapshot)) = (stored, parent_candidate) {
                        chain_parent = Some(ChainParent { key, snapshot });
                    }
                    while time >= next_checkpoint {
                        next_checkpoint += checkpoint_interval;
                    }
                    while anchor_idx < anchors.len() && time + dt > anchors[anchor_idx] {
                        anchor_idx += 1;
                    }
                }
            }

            // Ground-station exchange per lane; lanes whose post-terminal
            // grace elapsed retire before stepping, where the scalar loop
            // breaks. `Vec::remove` keeps the leader at position 0.
            let mut ci = 0;
            while ci < ctxs.len() {
                if ctxs[ci].exchange(&mut outbox, time, grace_period) {
                    let ctx = ctxs.remove(ci);
                    retire(
                        ctx,
                        &mut batch,
                        RunVerdict::Completed,
                        sample_interval,
                        &mut results,
                        leader,
                        &mut leader_result,
                        &mut leader_live,
                    );
                } else {
                    ci += 1;
                }
            }
            if ctxs.is_empty() {
                break;
            }

            // Firmware control step per lane (in batch slot order, which
            // is what `step_lanes` expects), then one batched physics +
            // sensor step for every surviving lane.
            lane_order.clear();
            lane_order.extend_from_slice(batch.lane_ids());
            commands.clear();
            for &lane in &lane_order {
                let ctx = ctxs
                    .iter_mut()
                    .find(|c| c.lane == lane)
                    .expect("every live lane has a context");
                commands.push(ctx.firmware.step(&batch.output(lane).readings, time, dt));
            }
            batch.step_lanes(&commands);

            // Trace bookkeeping against the loop-top time, like the
            // scalar loop.
            for ctx in ctxs.iter_mut() {
                let output = batch.output(ctx.lane);
                ctx.post_step(output, time, sample_interval);
            }

            // Divergence-aware eviction: a lane whose firmware control
            // path departed the leader's finishes on the scalar path.
            // Purely a heuristic about where lockstep stops paying —
            // the scalar continuation is bit-identical wherever the cut
            // lands (`avis-sim` proves eviction at *every* step matches
            // the scalar oracle).
            if leader_live {
                let mut ei = 1;
                while ei < ctxs.len() {
                    if ctxs[ei].firmware.control_path_matches(&ctxs[0].firmware) {
                        ei += 1;
                        continue;
                    }
                    let ctx = ctxs.remove(ei);
                    let (lane_sim, lane_output) = batch.extract_lane(ctx.lane);
                    let idx = ctx.index;
                    let result = self.run_lane_to_completion(ctx, lane_sim, lane_output, started);
                    results[idx] = Some(result);
                }
            }
        }

        // Natural end of simulated time: every still-batched lane
        // completes at the duration cap, like the scalar loop condition.
        while let Some(ctx) = ctxs.pop() {
            retire(
                ctx,
                &mut batch,
                RunVerdict::Completed,
                sample_interval,
                &mut results,
                leader,
                &mut leader_result,
                &mut leader_live,
            );
        }

        // Virtual lanes — and pending lanes whose divergence time lies
        // beyond the leader's finish — ride the leader's result: their
        // scalar runs would be step-for-step identical to the leader's
        // (no fault the plans disagree on ever fired).
        if let Some(leader_result) = &leader_result {
            for idx in virtuals
                .iter()
                .copied()
                .chain(pending.iter().map(|&(_, i)| i))
            {
                results[idx] = Some(RunResult {
                    plan: plans[idx].clone(),
                    ..leader_result.clone()
                });
            }
        }

        // Safety net: any lane the lockstep loop failed to account for
        // runs scalar. Unreachable by construction; kept because a
        // silently missing result would corrupt the engine's commit
        // replay.
        results
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| slot.unwrap_or_else(|| self.run_with_plan(plans[idx].clone())))
            .collect()
    }

    /// Finishes an evicted lane on the scalar path: the same loop as
    /// [`crate::runner`]'s, continued from the lane's extracted state.
    /// Evicted lanes record no checkpoints — only the batch leader cuts,
    /// matching the one-provisioned-run-per-batch accounting.
    fn run_lane_to_completion(
        &mut self,
        mut ctx: LaneCtx,
        mut sim: Simulator,
        mut output: StepOutput,
        // avis-lint: allow(d1, reason = "wall-clock watchdog handle inherited from the batch; compared, never replayed")
        started: Option<std::time::Instant>,
    ) -> RunResult {
        let dt = self.config.dt;
        let max_duration = self.config.max_duration;
        let sample_interval = self.config.sample_interval;
        let grace_period = self.config.grace_period;
        let max_steps = self.config.watchdog.max_steps;
        let wall_clock_limit = self.config.watchdog.wall_clock_seconds;
        let mut outbox: Vec<Message> = Vec::new();
        let mut verdict = RunVerdict::Completed;
        while sim.time() < max_duration {
            let time = sim.time();
            self.step_cursor = (time / dt).round() as u64;
            if max_steps.is_some_and(|m| self.step_cursor >= m) {
                verdict = RunVerdict::Diverged;
                break;
            }
            if let (Some(limit), Some(started)) = (wall_clock_limit, started) {
                if self.step_cursor.is_multiple_of(WALL_CLOCK_STRIDE)
                    && started.elapsed().as_secs_f64() > limit
                {
                    verdict = RunVerdict::Diverged;
                    break;
                }
            }
            if ctx.exchange(&mut outbox, time, grace_period) {
                break;
            }
            let motor = ctx.firmware.step(&output.readings, time, dt);
            sim.step_into(&motor, &mut output);
            ctx.post_step(&output, time, sample_interval);
        }
        ctx.finalize(&sim, sample_interval, verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentConfig;
    use crate::snapshot::CheckpointConfig;
    use avis_firmware::{BugSet, FirmwareProfile};
    use avis_hinj::{FaultSpec, LinkDirection, LinkFaultKind, LinkFaultSpec};
    use avis_sim::{SensorInstance, SensorKind, SensorNoise};
    use avis_workload::auto_box_mission;

    fn quiet_config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(
            FirmwareProfile::ArduPilotLike,
            BugSet::current_code_base(FirmwareProfile::ArduPilotLike),
            auto_box_mission(),
        );
        cfg.noise = Some(SensorNoise::noiseless());
        cfg.max_duration = 120.0;
        cfg
    }

    fn gps_plan(time: f64) -> FaultPlan {
        FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Gps, 1),
            time,
        )])
    }

    fn scalar_reference(plans: &[FaultPlan]) -> Vec<RunResult> {
        let mut cfg = quiet_config();
        cfg.checkpoints = CheckpointConfig::disabled();
        let mut runner = ExperimentRunner::new(cfg);
        plans
            .iter()
            .map(|p| runner.run_with_plan(p.clone()))
            .collect()
    }

    #[test]
    fn batched_sweep_is_bit_identical_to_scalar() {
        let plans: Vec<FaultPlan> = [40.0, 48.0, 56.0, 64.0].map(gps_plan).to_vec();
        let reference = scalar_reference(&plans);
        let mut cfg = quiet_config();
        cfg.checkpoints = CheckpointConfig::disabled();
        let mut runner = ExperimentRunner::new(cfg);
        let batched = runner.run_batch_contained(plans);
        assert_eq!(batched, reference, "batched lockstep diverged from scalar");
    }

    #[test]
    fn batched_run_with_checkpointing_matches_cold_scalar() {
        let plans: Vec<FaultPlan> = [35.0, 50.0, 65.0].map(gps_plan).to_vec();
        let reference = scalar_reference(&plans);
        let mut runner = ExperimentRunner::new(quiet_config());
        let batched = runner.run_batch_contained(plans.clone());
        assert_eq!(batched, reference, "checkpoint recording perturbed a lane");
        // The leader's cuts must be forkable by a later scalar run.
        let follow_up = runner.run_with_plan(gps_plan(70.0));
        assert_eq!(follow_up, scalar_reference(&[gps_plan(70.0)])[0]);
        assert!(
            runner.checkpoint_stats().forked_runs >= 1,
            "the follow-up scenario should fork from the batch leader's cuts: {:?}",
            runner.checkpoint_stats()
        );
    }

    #[test]
    fn duplicate_and_identical_plans_ride_the_leader() {
        // Two identical plans: one is the leader, the other is virtual
        // (never diverges from the intersection) and clones the result.
        let plans = vec![gps_plan(45.0), gps_plan(45.0)];
        let reference = scalar_reference(&plans);
        let mut cfg = quiet_config();
        cfg.checkpoints = CheckpointConfig::disabled();
        let mut runner = ExperimentRunner::new(cfg);
        let batched = runner.run_batch_contained(plans);
        assert_eq!(batched, reference);
    }

    #[test]
    fn mixed_sensor_and_link_fault_batch_matches_scalar() {
        let mut link_plan = gps_plan(50.0);
        link_plan.add_link(LinkFaultSpec::new(
            LinkFaultKind::Drop {
                duration: 6.0,
                probability: 0.8,
            },
            LinkDirection::ToVehicle,
            42.0,
        ));
        let plans = vec![
            gps_plan(40.0),
            link_plan,
            gps_plan(60.0),
            FaultPlan::empty(),
        ];
        let reference = scalar_reference(&plans);
        let mut cfg = quiet_config();
        cfg.checkpoints = CheckpointConfig::disabled();
        let mut runner = ExperimentRunner::new(cfg);
        let batched = runner.run_batch_contained(plans);
        assert_eq!(
            batched, reference,
            "link-faulted lane diverged from its scalar run"
        );
    }

    #[test]
    fn early_divergence_forks_at_time_zero() {
        // A plan injecting at t=0 forks at the very first loop-top.
        let plans = vec![gps_plan(0.0), gps_plan(55.0)];
        let reference = scalar_reference(&plans);
        let mut cfg = quiet_config();
        cfg.checkpoints = CheckpointConfig::disabled();
        let mut runner = ExperimentRunner::new(cfg);
        let batched = runner.run_batch_contained(plans);
        assert_eq!(batched, reference);
    }

    #[test]
    fn step_budget_trips_batched_lanes_like_scalar() {
        let plans = vec![gps_plan(30.0), gps_plan(45.0)];
        let mut cfg = quiet_config();
        cfg.checkpoints = CheckpointConfig::disabled();
        cfg.watchdog.max_steps = Some(8_000);
        let mut scalar_runner = ExperimentRunner::new(cfg.clone());
        let reference: Vec<RunResult> = plans
            .iter()
            .map(|p| scalar_runner.run_with_plan(p.clone()))
            .collect();
        assert!(reference.iter().all(|r| r.verdict == RunVerdict::Diverged));
        let mut runner = ExperimentRunner::new(cfg);
        let batched = runner.run_batch_contained(plans);
        assert_eq!(batched, reference);
    }

    #[test]
    fn singleton_batch_falls_back_to_scalar_contained() {
        let mut cfg = quiet_config();
        cfg.checkpoints = CheckpointConfig::disabled();
        let mut runner = ExperimentRunner::new(cfg);
        let batched = runner.run_batch_contained(vec![gps_plan(40.0)]);
        assert_eq!(batched, scalar_reference(&[gps_plan(40.0)]));
    }
}
