//! The fluent campaign API: [`Campaign::builder`] configures a campaign
//! (firmware, bug set, workload, budget, parallelism, monitor, strategy),
//! and [`CampaignObserver`] streams [`CampaignEvent`]s from the engine in
//! commit order, so long campaigns report live instead of only at the
//! end.
//!
//! ```no_run
//! use avis::campaign::Campaign;
//! use avis::checker::{Approach, Budget};
//! use avis_firmware::FirmwareProfile;
//! use avis_workload::auto_box_mission;
//!
//! let result = Campaign::builder()
//!     .firmware(FirmwareProfile::ArduPilotLike)
//!     .workload(auto_box_mission())
//!     .approach(Approach::Avis)
//!     .budget(Budget::simulations(50))
//!     .parallelism(4)
//!     .build()
//!     .run();
//! println!("{} unsafe conditions", result.unsafe_count());
//! ```
//!
//! The event stream is deterministic: because the parallel engine commits
//! results in canonical round order, a campaign observed at
//! `parallelism = 8` emits exactly the events of the same campaign at
//! `parallelism = 1`, in the same order.

use crate::checker::{
    Approach, Budget, CampaignResult, CampaignState, Checker, CheckerConfig, UnsafeCondition,
};
use crate::engine::{self, DispatchMode, EngineParams, WorkerStatsCollector};
use crate::monitor::{InvariantMonitor, MonitorConfig};
use crate::runner::{ExperimentConfig, ExperimentRunner};
use crate::sabre::SabreConfig;
use crate::snapshot::{CheckpointConfig, SharedSnapshotTier};
use crate::store::{SnapshotStore, DEFAULT_STORE_BUDGET};
use crate::strategy::{LinkScenarioStrategy, Strategy, StrategyContext};
use avis_firmware::{BugSet, FirmwareProfile};
use avis_hinj::{FaultPlan, LinkFaultPlan};
use avis_sim::{SensorNoise, SensorSuiteConfig};
use avis_workload::{auto_box_mission, ScriptedWorkload};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;

/// One checkpoint in a campaign's life, streamed to the
/// [`CampaignObserver`] in commit order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignEvent {
    /// The campaign is about to start its profiling runs.
    CampaignStarted {
        /// Display name of the strategy driving the campaign.
        strategy: String,
        /// The firmware profile under test.
        profile: FirmwareProfile,
        /// The workload name.
        workload: String,
        /// The test budget.
        budget: Budget,
    },
    /// Profiling and monitor calibration finished; the search starts now.
    ProfilingFinished {
        /// Number of fault-free profiling runs executed.
        runs: usize,
        /// Cost consumed by profiling (s).
        cost_seconds: f64,
    },
    /// One fault-injection run was committed.
    RunFinished {
        /// Total simulations so far (profiling included).
        simulations: usize,
        /// Total cost so far (s).
        cost_seconds: f64,
        /// The fault plan the run injected.
        plan: FaultPlan,
        /// Whether the invariant monitor flagged the run unsafe.
        is_unsafe: bool,
    },
    /// The run just committed exposed an unsafe condition.
    ViolationFound {
        /// The full unsafe-condition record, as it will appear in the
        /// final [`CampaignResult`].
        condition: UnsafeCondition,
    },
    /// Budget consumption after a committed run.
    BudgetProgress {
        /// Total simulations so far (profiling included).
        simulations: usize,
        /// Total cost so far (s).
        cost_seconds: f64,
        /// Consumed share of the tighter budget axis, `0.0..=1.0`.
        consumed_fraction: f64,
    },
    /// Checkpointing was disabled for the rest of the campaign after
    /// repeated snapshot-integrity failures; remaining runs cold-start.
    /// Degradation is a wall-clock event, not a result event: the final
    /// [`CampaignResult`] is bit-identical with or without it.
    DegradedMode {
        /// Human-readable explanation of why checkpointing was disabled.
        reason: String,
    },
    /// The persistent snapshot store hydrated the shared tier from disk
    /// before the search started (see
    /// [`CampaignBuilder::snapshot_store`]). Like [`DegradedMode`], this
    /// is a wall-clock observability event, not a result event: the
    /// final [`CampaignResult`] is bit-identical with or without it.
    ///
    /// [`DegradedMode`]: CampaignEvent::DegradedMode
    StoreHydrated {
        /// Snapshot chains re-materialised from disk.
        chains: u64,
        /// Individual snapshots offered to the shared tier.
        snapshots: u64,
        /// Blob bytes read (and verified) from disk.
        bytes: u64,
    },
    /// The persistent snapshot store flushed the shared tier's chains to
    /// disk at campaign end (write-behind flushes also run at engine
    /// commit boundaries; this event reports the session totals). A
    /// wall-clock observability event, like
    /// [`DegradedMode`](CampaignEvent::DegradedMode).
    StoreFlushed {
        /// Chains now persisted for this experiment.
        chains: u64,
        /// Bytes the store holds on disk after flush + GC.
        bytes: u64,
        /// Blob writes elided because an identical content-addressed
        /// blob already existed.
        dedup_hits: u64,
    },
    /// The campaign ended (budget or search space exhausted).
    CampaignFinished {
        /// Total simulations executed.
        simulations: usize,
        /// Total cost consumed (s).
        cost_seconds: f64,
        /// Number of unsafe conditions found.
        unsafe_conditions: usize,
    },
}

/// An event sink for a running campaign. Events arrive on the thread that
/// called [`Campaign::run_with_observer`], in commit order, identically
/// at every parallelism.
pub trait CampaignObserver {
    /// Receives the next event.
    fn on_event(&mut self, event: &CampaignEvent);
}

/// The default observer: discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl CampaignObserver for NullObserver {
    fn on_event(&mut self, _event: &CampaignEvent) {}
}

/// An observer that records the full event stream — useful for tests,
/// for replaying progress into a UI, or for serialising a campaign log.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<CampaignEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// The recorded events, in arrival (= commit) order.
    pub fn events(&self) -> &[CampaignEvent] {
        &self.events
    }

    /// Consumes the log, returning the recorded events.
    pub fn into_events(self) -> Vec<CampaignEvent> {
        self.events
    }
}

impl CampaignObserver for EventLog {
    fn on_event(&mut self, event: &CampaignEvent) {
        self.events.push(event.clone());
    }
}

/// The strategy a campaign runs: a built-in approach resolved through the
/// [`Approach`] factory, or a user-supplied [`Strategy`].
enum StrategyChoice {
    Approach(Approach),
    Custom(Box<dyn Strategy>),
}

/// A fully configured campaign, ready to run. Built by
/// [`Campaign::builder`]; see the [module docs](self) for an example.
pub struct Campaign {
    config: CheckerConfig,
    strategy: StrategyChoice,
    link: LinkFaultPlan,
    shared: Option<Arc<SharedSnapshotTier>>,
    dispatch: DispatchMode,
    worker_stats: Option<Arc<WorkerStatsCollector>>,
    store: Option<StoreSpec>,
}

impl Campaign {
    /// Starts configuring a campaign.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::default()
    }

    /// Runs the campaign to completion, discarding events.
    pub fn run(self) -> CampaignResult {
        self.run_with_observer(&mut NullObserver)
    }

    /// Runs the campaign to completion, streaming events to `observer`.
    pub fn run_with_observer(self, observer: &mut dyn CampaignObserver) -> CampaignResult {
        let cfg = self.config;
        let (mut strategy, approach) = match self.strategy {
            StrategyChoice::Approach(approach) => (approach.strategy(), Some(approach)),
            StrategyChoice::Custom(strategy) => (strategy, None),
        };
        if !self.link.is_empty() {
            // Pin the campaign's link-fault environment under whatever
            // sensor-fault strategy runs: every proposed and decided plan
            // carries the same link part, so speculative reuse and the
            // determinism contract are untouched.
            strategy = Box::new(LinkScenarioStrategy::new(strategy, self.link));
        }
        execute_campaign(
            CampaignSpec {
                experiment: &cfg.experiment,
                budget: cfg.budget,
                profiling_runs: cfg.profiling_runs,
                monitor: &cfg.monitor,
                sabre: cfg.sabre,
                seed: cfg.seed,
                parallelism: cfg.parallelism,
                shared: self.shared,
                dispatch: self.dispatch,
                worker_stats: self.worker_stats,
                store: self.store,
            },
            strategy.as_mut(),
            approach,
            observer,
        )
    }

    /// The legacy [`Checker`] equivalent of this campaign, when it runs a
    /// built-in approach (custom strategies have no legacy counterpart).
    pub fn as_checker(&self) -> Option<Checker> {
        match self.strategy {
            StrategyChoice::Approach(_) => Some(Checker::from_config(self.config.clone())),
            StrategyChoice::Custom(_) => None,
        }
    }
}

/// Fluent configuration for a [`Campaign`]. Every setter has a sensible
/// default, so `Campaign::builder().build()` is already a runnable Avis
/// campaign on the buggy ArduPilot-like code base.
///
/// Setter order never matters: `build` resolves precedence, not call
/// order. [`CampaignBuilder::experiment`] replaces the
/// firmware / bugs / workload trio wholesale;
/// [`CampaignBuilder::max_duration`] and [`CampaignBuilder::noise`] apply
/// on top of whichever experiment results.
pub struct CampaignBuilder {
    profile: FirmwareProfile,
    bugs: Option<BugSet>,
    workload: Option<ScriptedWorkload>,
    experiment: Option<ExperimentConfig>,
    max_duration: Option<f64>,
    noise: Option<SensorNoise>,
    checkpoints: Option<CheckpointConfig>,
    lockstep_lanes: Option<usize>,
    budget: Budget,
    profiling_runs: usize,
    monitor: MonitorConfig,
    sabre: SabreConfig,
    seed: u64,
    parallelism: usize,
    strategy: StrategyChoice,
    link: LinkFaultPlan,
    shared: Option<Arc<SharedSnapshotTier>>,
    dispatch: DispatchMode,
    worker_stats: Option<Arc<WorkerStatsCollector>>,
    store_path: Option<PathBuf>,
    store_budget: u64,
}

impl Default for CampaignBuilder {
    fn default() -> Self {
        CampaignBuilder {
            profile: FirmwareProfile::ArduPilotLike,
            bugs: None,
            workload: None,
            experiment: None,
            max_duration: None,
            noise: None,
            checkpoints: None,
            lockstep_lanes: None,
            budget: Budget::simulations(50),
            profiling_runs: 3,
            monitor: MonitorConfig::default(),
            sabre: SabreConfig::default(),
            seed: 17,
            parallelism: engine::default_parallelism(),
            strategy: StrategyChoice::Approach(Approach::Avis),
            link: LinkFaultPlan::empty(),
            shared: None,
            dispatch: DispatchMode::default(),
            worker_stats: None,
            store_path: None,
            store_budget: DEFAULT_STORE_BUDGET,
        }
    }
}

impl CampaignBuilder {
    /// The firmware profile under test. Default: the ArduPilot-like stack.
    pub fn firmware(mut self, profile: FirmwareProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The defects compiled into the firmware. Default: the profile's
    /// "current code base" (every previously-unknown bug present).
    pub fn bugs(mut self, bugs: BugSet) -> Self {
        self.bugs = Some(bugs);
        self
    }

    /// The workload to fly. Default: the paper's auto waypoint mission.
    pub fn workload(mut self, workload: ScriptedWorkload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Replaces the firmware / bugs / workload trio with a fully built
    /// [`ExperimentConfig`] (the escape hatch for non-default dt, sample
    /// interval or experiment seed).
    pub fn experiment(mut self, experiment: ExperimentConfig) -> Self {
        self.experiment = Some(experiment);
        self
    }

    /// Hard cap on simulated time per run (s), applied on top of the
    /// experiment.
    pub fn max_duration(mut self, seconds: f64) -> Self {
        self.max_duration = Some(seconds);
        self
    }

    /// Sensor-noise level, applied on top of the experiment.
    pub fn noise(mut self, noise: SensorNoise) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Checkpoint-tree configuration (snapshot interval and memory
    /// budget, or [`CheckpointConfig::disabled`] to cold-start every
    /// run), applied on top of the experiment. Checkpointing is purely a
    /// speed/memory trade-off: the campaign result is bit-identical
    /// either way. The memory budget applies *per engine worker* (each
    /// owns a lock-free cache), so a campaign holds up to
    /// `parallelism × max_bytes`. Default: enabled with the
    /// [`CheckpointConfig::default`] budget.
    pub fn checkpoints(mut self, checkpoints: CheckpointConfig) -> Self {
        self.checkpoints = Some(checkpoints);
        self
    }

    /// Number of sibling scenarios a worker advances in lockstep through
    /// one SoA [`avis_sim::LaneBatch`] when the dispatcher hands it a
    /// prefix-sharded batch (see [`crate::batch`]); `1` disables
    /// batching. Active wherever [`DispatchMode::PrefixSharded`] dispatch
    /// is (the default), on workers and on the serial path alike. Purely
    /// a speed knob — a batched run is bit-identical to a scalar one —
    /// so it joins neither the experiment fingerprint nor any campaign
    /// observable. Default: 4.
    pub fn lockstep_lanes(mut self, lanes: usize) -> Self {
        self.lockstep_lanes = Some(lanes);
        self
    }

    /// Attaches a cross-campaign [`SharedSnapshotTier`]: campaigns over
    /// the *same experiment* (firmware, bugs, workload, simulation
    /// parameters, seed) handed the same tier share one checkpoint tree
    /// — the second campaign warm-starts from the first one's snapshots
    /// instead of re-recording the fault-free chain. This is how a
    /// [`crate::matrix::ScenarioMatrix`] reuses trees across strategies.
    /// Sharing never changes results (a forked run is bit-identical to a
    /// cold one). The tier is claimed by the first experiment that
    /// attaches; a campaign over a *different* experiment handed the
    /// same tier simply runs without it rather than forking from foreign
    /// state — keep one tier per experiment.
    pub fn shared_snapshots(mut self, tier: Arc<SharedSnapshotTier>) -> Self {
        self.shared = Some(tier);
        self
    }

    /// Attaches a persistent [`SnapshotStore`] rooted at `path`: the
    /// campaign hydrates its shared snapshot tier from whatever chains a
    /// previous process persisted for the *same experiment* (warm start),
    /// and flushes new chains back write-behind at engine commit
    /// boundaries and campaign end. The store is content-addressed and
    /// fingerprint-keyed, so one root directory safely serves many
    /// experiments and many concurrent campaigns. Persistence is purely
    /// a wall-clock optimisation: a warm-started campaign is
    /// bit-identical to a cold one, and any corrupt or torn on-disk
    /// state quarantines and falls back cold. Configuring a store
    /// enables the shared tier even at `parallelism = 1`, so
    /// single-threaded campaigns warm-start too. Default: no store.
    pub fn snapshot_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store_path = Some(path.into());
        self
    }

    /// On-disk byte budget for the snapshot store, enforced at flush
    /// time by evicting the least-forked, oldest chains first (the
    /// in-memory tier's hit-weighted policy, persisted). Default:
    /// [`DEFAULT_STORE_BUDGET`].
    ///
    /// [`DEFAULT_STORE_BUDGET`]: crate::store::DEFAULT_STORE_BUDGET
    pub fn snapshot_store_budget(mut self, max_bytes: u64) -> Self {
        self.store_budget = max_bytes;
        self
    }

    /// The test budget. Default: 50 simulations.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Number of fault-free profiling runs calibrating the monitor.
    /// Default: 3.
    pub fn profiling_runs(mut self, runs: usize) -> Self {
        self.profiling_runs = runs;
        self
    }

    /// Invariant-monitor configuration.
    pub fn monitor(mut self, monitor: MonitorConfig) -> Self {
        self.monitor = monitor;
        self
    }

    /// SABRE scheduler configuration (transition-targeted strategies).
    pub fn sabre(mut self, sabre: SabreConfig) -> Self {
        self.sabre = sabre;
        self
    }

    /// The deterministic campaign seed (drives the random baseline).
    /// Default: 17.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads executing fault plans (`1` = fully serial).
    /// Default: the number of available CPU cores. The result — and the
    /// observer event stream — is bit-identical at every value.
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// How speculative jobs are placed onto workers (see
    /// [`DispatchMode`]). Placement is purely a cache-locality /
    /// wall-clock knob: results are bit-identical in every mode. Default:
    /// [`DispatchMode::PrefixSharded`].
    pub fn dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Attaches a [`WorkerStatsCollector`] that receives every engine
    /// worker's checkpoint statistics (plus the campaign's inline
    /// runner's) when the campaign finishes — the observability hook for
    /// cache-locality measurements that the deterministic
    /// [`crate::checker::CampaignResult`] deliberately excludes.
    pub fn worker_stats(mut self, collector: Arc<WorkerStatsCollector>) -> Self {
        self.worker_stats = Some(collector);
        self
    }

    /// Runs one of the paper's built-in approaches. Default:
    /// [`Approach::Avis`].
    pub fn approach(mut self, approach: Approach) -> Self {
        self.strategy = StrategyChoice::Approach(approach);
        self
    }

    /// Runs a custom [`Strategy`] — the extension point for new search
    /// orders, implemented entirely outside the core crate.
    pub fn strategy<S: Strategy + 'static>(self, strategy: S) -> Self {
        self.boxed_strategy(Box::new(strategy))
    }

    /// [`CampaignBuilder::strategy`] for an already boxed strategy (what
    /// a [`crate::matrix::ScenarioMatrix`] factory produces).
    pub fn boxed_strategy(mut self, strategy: Box<dyn Strategy>) -> Self {
        self.strategy = StrategyChoice::Custom(strategy);
        self
    }

    /// Pins a protocol-fault environment under the campaign: every plan
    /// the strategy runs — sensor-fault or fault-free — additionally
    /// carries these link faults, so the campaign explores its search
    /// space *under* a degraded MAVLink link. Link faults are applied by
    /// a deterministic shim seeded from the campaign seed; the result
    /// stays bit-identical at every parallelism and with checkpointing
    /// on or off. Default: no link faults.
    pub fn link_faults(mut self, link: LinkFaultPlan) -> Self {
        self.link = link;
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> Campaign {
        let approach = match &self.strategy {
            StrategyChoice::Approach(approach) => *approach,
            // The legacy config field is only read when the campaign runs
            // a built-in approach; default it for custom strategies.
            StrategyChoice::Custom(_) => Approach::Avis,
        };
        let mut experiment = self.experiment.unwrap_or_else(|| {
            ExperimentConfig::new(
                self.profile,
                self.bugs
                    .unwrap_or_else(|| BugSet::current_code_base(self.profile)),
                self.workload.unwrap_or_else(auto_box_mission),
            )
        });
        if let Some(max_duration) = self.max_duration {
            experiment.max_duration = max_duration;
        }
        if let Some(noise) = self.noise {
            experiment.noise = Some(noise);
        }
        if let Some(checkpoints) = self.checkpoints {
            experiment.checkpoints = checkpoints;
        }
        if let Some(lanes) = self.lockstep_lanes {
            experiment.lockstep_lanes = lanes.max(1);
        }
        Campaign {
            config: CheckerConfig {
                approach,
                experiment,
                budget: self.budget,
                profiling_runs: self.profiling_runs,
                monitor: self.monitor,
                sabre: self.sabre,
                seed: self.seed,
                parallelism: self.parallelism,
            },
            strategy: self.strategy,
            link: self.link,
            shared: self.shared,
            dispatch: self.dispatch,
            worker_stats: self.worker_stats,
            store: self.store_path.map(|root| StoreSpec {
                root,
                max_bytes: self.store_budget,
            }),
        }
    }
}

/// Where (and how large) a campaign's persistent snapshot store is —
/// resolved by [`CampaignBuilder::snapshot_store`] /
/// [`CampaignBuilder::snapshot_store_budget`].
#[derive(Debug, Clone)]
pub(crate) struct StoreSpec {
    pub(crate) root: PathBuf,
    pub(crate) max_bytes: u64,
}

/// The resolved slice of configuration the campaign pipeline needs —
/// shared by the fluent [`Campaign`] and the legacy [`Checker`] shim so
/// both drive the byte-for-byte identical engine.
pub(crate) struct CampaignSpec<'a> {
    pub(crate) experiment: &'a ExperimentConfig,
    pub(crate) budget: Budget,
    pub(crate) profiling_runs: usize,
    pub(crate) monitor: &'a MonitorConfig,
    pub(crate) sabre: SabreConfig,
    pub(crate) seed: u64,
    pub(crate) parallelism: usize,
    /// A caller-supplied cross-campaign snapshot tier, if any (see
    /// [`CampaignBuilder::shared_snapshots`]).
    pub(crate) shared: Option<Arc<SharedSnapshotTier>>,
    /// Speculative-job placement policy (see [`DispatchMode`]).
    pub(crate) dispatch: DispatchMode,
    /// Sink for per-runner checkpoint statistics, if any (see
    /// [`CampaignBuilder::worker_stats`]).
    pub(crate) worker_stats: Option<Arc<WorkerStatsCollector>>,
    /// Persistent snapshot store location, if any (see
    /// [`CampaignBuilder::snapshot_store`]).
    pub(crate) store: Option<StoreSpec>,
}

/// Runs one campaign end to end: profiling, monitor calibration, strategy
/// initialisation, the engine's round loop, and result assembly.
pub(crate) fn execute_campaign(
    spec: CampaignSpec<'_>,
    strategy: &mut dyn Strategy,
    approach: Option<Approach>,
    observer: &mut dyn CampaignObserver,
) -> CampaignResult {
    observer.on_event(&CampaignEvent::CampaignStarted {
        strategy: strategy.name().to_string(),
        profile: spec.experiment.profile,
        workload: spec.experiment.workload.name().to_string(),
        budget: spec.budget,
    });

    // Profiling runs: calibrate the invariant monitor and discover the
    // mode transitions that anchor transition-targeted strategies.
    let mut runner = ExperimentRunner::new(spec.experiment.clone());
    let mut profiling = Vec::new();
    let mut cost = 0.0;
    for i in 0..spec.profiling_runs.max(1) {
        let run = runner.run_profiling(i as u64);
        cost += run.simulated_seconds;
        profiling.push(run);
    }
    observer.on_event(&CampaignEvent::ProfilingFinished {
        runs: profiling.len(),
        cost_seconds: cost,
    });
    let monitor = InvariantMonitor::calibrate(
        profiling.iter().map(|r| r.trace.clone()).collect(),
        spec.monitor.clone(),
    );
    let golden = profiling[0].trace.clone();

    // Adaptive checkpoint placement: cut snapshots at the golden run's
    // mode transitions — where SABRE anchors its injections, so forks
    // resume right at the injection instead of up to one interval
    // before it. Placement never changes results, only fork depth.
    let checkpoints = &spec.experiment.checkpoints;
    let mut engine_experiment = spec.experiment.clone();
    if checkpoints.enabled && checkpoints.anchor_placement && checkpoints.anchors.is_empty() {
        let anchors: Vec<f64> = golden
            .transition_times()
            .into_iter()
            .filter(|&t| t > 0.0 && t < spec.experiment.max_duration)
            .collect();
        runner.set_checkpoint_anchors(anchors.clone());
        // Workers normalise (sort + dedup) the list in
        // `ExperimentRunner::new`, same as `set_checkpoint_anchors` just
        // did for the main runner.
        engine_experiment.checkpoints.anchors = anchors;
    }

    // The shared snapshot tier: the caller's cross-campaign tier when
    // one was supplied, otherwise a campaign-local tier as soon as more
    // than one worker would re-record the same chains. At parallelism 1
    // with no caller tier, the per-runner cache alone is strictly
    // better (a second tier would only duplicate memory) — unless a
    // persistent store is configured, which needs a tier to hydrate
    // into and flush from even single-threaded.
    let tier: Option<Arc<SharedSnapshotTier>> = if checkpoints.enabled {
        spec.shared.clone().or_else(|| {
            (spec.parallelism > 1 || spec.store.is_some())
                .then(|| Arc::new(SharedSnapshotTier::new(checkpoints.max_bytes)))
        })
    } else {
        None
    };
    if let Some(tier) = &tier {
        runner.set_shared_tier(Arc::clone(tier));
    }

    // The persistent store: hydrate the tier from disk before the search
    // starts, so the engine forks from last session's chains instead of
    // re-flying them. Opening can fail (read-only filesystem, bad path);
    // the campaign then simply runs cold — the store never gates
    // correctness, only wall-clock.
    let store: Option<Arc<Mutex<SnapshotStore>>> = match (&spec.store, &tier) {
        (Some(store_spec), Some(_)) => {
            SnapshotStore::open(&store_spec.root, spec.experiment, store_spec.max_bytes)
                .ok()
                .map(|s| Arc::new(Mutex::new(s)))
        }
        _ => None,
    };
    if let (Some(store), Some(tier)) = (&store, &tier) {
        let report = store.lock().hydrate(tier, spec.experiment);
        observer.on_event(&CampaignEvent::StoreHydrated {
            chains: report.chains,
            snapshots: report.snapshots,
            bytes: report.bytes,
        });
    }

    let mut state = CampaignState {
        runner,
        monitor,
        simulations: profiling.len(),
        cost_seconds: cost,
        labels: 0,
        unsafe_conditions: Vec::new(),
        crashes: Vec::new(),
        golden,
    };

    strategy.initialize(&StrategyContext {
        golden: &state.golden,
        experiment: spec.experiment,
        sabre: spec.sabre,
        seed: spec.seed,
        sensors: SensorSuiteConfig::iris(),
    });

    engine::run_campaign(
        EngineParams {
            experiment: &engine_experiment,
            budget: &spec.budget,
            parallelism: spec.parallelism,
            shared: tier.clone(),
            dispatch: spec.dispatch,
            worker_stats: spec.worker_stats.clone(),
            store: store.clone(),
        },
        strategy,
        &mut state,
        observer,
    );

    // Final publish: snapshots recorded after the last wavefront become
    // visible to the next campaign sharing this tier.
    if let Some(tier) = &tier {
        tier.republish();
    }

    // Final write-behind flush + GC: chains recorded after the engine's
    // last commit-boundary flush reach disk before the campaign returns.
    if let (Some(store), Some(tier)) = (&store, &tier) {
        let mut store = store.lock();
        store.flush(tier, spec.experiment);
        let stats = store.stats();
        observer.on_event(&CampaignEvent::StoreFlushed {
            chains: stats.persisted_chains,
            bytes: stats.store_bytes,
            dedup_hits: stats.dedup_hits,
        });
    }

    // The campaign's inline runner (profiling + serial / fallback
    // commits) reports its cache statistics alongside the pool workers',
    // with the persistent store's session counters merged in.
    if let Some(collector) = &spec.worker_stats {
        let mut stats = state.runner.checkpoint_stats();
        if let Some(store) = &store {
            let store_stats = store.lock().stats();
            stats.loaded_chains = store_stats.loaded_chains;
            stats.persisted_chains = store_stats.persisted_chains;
            stats.store_bytes = store_stats.store_bytes;
            stats.dedup_hits = store_stats.dedup_hits;
        }
        collector.push(stats);
    }

    observer.on_event(&CampaignEvent::CampaignFinished {
        simulations: state.simulations,
        cost_seconds: state.cost_seconds,
        unsafe_conditions: state.unsafe_conditions.len(),
    });

    let pruning = strategy.pruning();
    CampaignResult {
        strategy: strategy.name().to_string(),
        approach,
        profile: spec.experiment.profile,
        workload: spec.experiment.workload.name().to_string(),
        unsafe_conditions: state.unsafe_conditions,
        simulations: state.simulations,
        cost_seconds: state.cost_seconds,
        labels_evaluated: state.labels,
        symmetry_pruned: pruning.symmetry_pruned,
        found_bug_pruned: pruning.found_bug_pruned,
        link_scenario: None,
        crashes: state.crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_an_avis_campaign() {
        let campaign = Campaign::builder().build();
        let config = &campaign.config;
        assert_eq!(config.approach, Approach::Avis);
        assert_eq!(config.budget, Budget::simulations(50));
        assert_eq!(config.profiling_runs, 3);
        assert_eq!(config.experiment.profile, FirmwareProfile::ArduPilotLike);
        assert_eq!(config.experiment.workload.name(), "auto-box-mission");
        assert!(campaign.as_checker().is_some());
    }

    #[test]
    fn builder_overrides_apply_on_top_of_an_explicit_experiment() {
        let mut experiment =
            ExperimentConfig::new(FirmwareProfile::Px4Like, BugSet::none(), auto_box_mission());
        experiment.max_duration = 150.0;
        let campaign = Campaign::builder()
            // Ignored: the explicit experiment wins over the trio.
            .firmware(FirmwareProfile::ArduPilotLike)
            .experiment(experiment)
            .max_duration(90.0)
            .noise(SensorNoise::noiseless())
            .parallelism(0)
            .build();
        let config = &campaign.config;
        assert_eq!(config.experiment.profile, FirmwareProfile::Px4Like);
        assert_eq!(config.experiment.max_duration, 90.0);
        assert_eq!(config.experiment.noise, Some(SensorNoise::noiseless()));
        assert_eq!(config.parallelism, 1, "parallelism is clamped to >= 1");
    }

    #[test]
    fn custom_strategies_have_no_legacy_checker() {
        let campaign = Campaign::builder()
            .strategy(crate::strategy::RoundRobinMode::new())
            .build();
        assert!(campaign.as_checker().is_none());
    }
}
