//! Campaign configuration and results: budgets, the [`Approach`] factory
//! for the paper's four built-in strategies, unsafe-condition records and
//! the legacy [`Checker`] compatibility shim.
//!
//! A *campaign* corresponds to one row-cell of the paper's Table III: one
//! strategy, one firmware, one workload, a fixed budget. The paper budgets
//! by wall-clock time (2 hours of SITL per approach and workload); this
//! reproduction budgets by *simulated seconds* plus the modelled BFI
//! labelling latency, which preserves the relative comparison while being
//! independent of host speed.
//!
//! New code should configure campaigns through
//! [`crate::campaign::Campaign::builder`]; the [`CheckerConfig`] /
//! [`Checker`] pair remains as a deprecated shim over the same engine
//! (see `MIGRATION.md` at the repository root).

use crate::engine;
use crate::monitor::{MonitorConfig, Violation};
use crate::runner::{ExperimentConfig, ExperimentRunner, RunResult, RunVerdict};
use crate::sabre::SabreConfig;
use crate::strategy::{BfiStrategy, RandomStrategy, SabreStrategy, Strategy};
use crate::trace::Trace;
use avis_firmware::{BugId, FirmwareProfile, ModeCategory, OperatingMode};
use avis_hinj::FaultPlan;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The fault-injection approaches compared in the paper (Table I), kept
/// as a thin factory over the [`Strategy`] implementations in
/// [`crate::strategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Approach {
    /// Avis: SABRE ordering, no learned model, redundancy elimination.
    Avis,
    /// Stratified BFI: SABRE ordering, injection sites filtered by BFI's model.
    StratifiedBfi,
    /// Vanilla BFI: depth-first site enumeration filtered by the model.
    Bfi,
    /// Uniformly random injection.
    Random,
}

impl Approach {
    /// All approaches in the order the paper's tables list them.
    pub const ALL: [Approach; 4] = [
        Approach::Avis,
        Approach::StratifiedBfi,
        Approach::Bfi,
        Approach::Random,
    ];

    /// Display name used in regenerated tables.
    pub fn name(self) -> &'static str {
        match self {
            Approach::Avis => "Avis",
            Approach::StratifiedBfi => "Stratified BFI",
            Approach::Bfi => "BFI",
            Approach::Random => "Random",
        }
    }

    /// Builds the [`Strategy`] implementing this approach — the factory
    /// the fluent [`crate::campaign::CampaignBuilder`] and the legacy
    /// [`Checker`] shim both construct campaigns through.
    pub fn strategy(self) -> Box<dyn Strategy> {
        match self {
            Approach::Avis => Box::new(SabreStrategy::avis()),
            Approach::StratifiedBfi => Box::new(SabreStrategy::stratified_bfi()),
            Approach::Bfi => Box::new(BfiStrategy::with_default_model()),
            Approach::Random => Box::new(RandomStrategy::new()),
        }
    }

    /// Table I: does the approach target operating-mode transitions?
    pub fn targets_mode_transitions(self) -> bool {
        matches!(self, Approach::Avis | Approach::StratifiedBfi)
    }

    /// Table I: do prior bugs inform the injection sites?
    pub fn uses_prior_bugs(self) -> bool {
        matches!(self, Approach::StratifiedBfi | Approach::Bfi)
    }

    /// Table I: does the approach search dissimilar scenarios first?
    pub fn searches_dissimilar_first(self) -> bool {
        matches!(
            self,
            Approach::Avis | Approach::StratifiedBfi | Approach::Random
        )
    }
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The test budget shared by every strategy in a comparison.
///
/// Both limits are *inclusive*: the budget is exhausted only once
/// consumption strictly exceeds it, so a campaign may execute exactly
/// [`Budget::max_simulations`] runs, and the run whose cost lands exactly
/// on [`Budget::max_cost_seconds`] still completes. Both engines (serial
/// and parallel) stop at the identical boundary — pinned by
/// `tests/budget_accounting.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum number of simulated test runs (profiling included). The
    /// campaign never starts an *injection* run that would exceed this
    /// count; the monitor-calibration profiling runs always execute, so
    /// a budget smaller than the profiling count is consumed entirely by
    /// profiling.
    pub max_simulations: usize,
    /// Maximum accumulated cost in seconds: simulated flight time plus the
    /// modelled BFI labelling latency. The campaign stops once accumulated
    /// cost strictly exceeds this.
    pub max_cost_seconds: f64,
}

impl Budget {
    /// A budget expressed purely in cost seconds.
    pub fn seconds(max_cost_seconds: f64) -> Self {
        Budget {
            max_simulations: usize::MAX,
            max_cost_seconds,
        }
    }

    /// A budget expressed purely in simulations.
    pub fn simulations(max_simulations: usize) -> Self {
        Budget {
            max_simulations,
            max_cost_seconds: f64::INFINITY,
        }
    }

    /// Whether the given consumption *strictly exceeds* the budget. A
    /// consumption sitting exactly on either limit is still within
    /// budget.
    pub fn exhausted(&self, simulations: usize, cost_seconds: f64) -> bool {
        simulations > self.max_simulations || cost_seconds > self.max_cost_seconds
    }

    /// Whether one more simulation may start at the given consumption:
    /// the run must not push the simulation count past the cap, and the
    /// accumulated cost must not already exceed the cost cap.
    pub fn allows_another(&self, simulations: usize, cost_seconds: f64) -> bool {
        !self.exhausted(simulations.saturating_add(1), cost_seconds)
    }

    /// The consumed share of the tighter budget axis, in `0.0..=1.0`
    /// (`0.0` when both axes are unbounded). Streamed to observers as
    /// [`crate::campaign::CampaignEvent::BudgetProgress`].
    pub fn consumed_fraction(&self, simulations: usize, cost_seconds: f64) -> f64 {
        let sims = if self.max_simulations == usize::MAX {
            0.0
        } else {
            simulations as f64 / self.max_simulations.max(1) as f64
        };
        let cost = if self.max_cost_seconds.is_finite() && self.max_cost_seconds > 0.0 {
            cost_seconds / self.max_cost_seconds
        } else {
            0.0
        };
        sims.max(cost).min(1.0)
    }
}

/// Configuration for one campaign (legacy shape).
///
/// New code should use [`crate::campaign::Campaign::builder`], which
/// produces the same configuration through a fluent API and also carries
/// custom strategies and observers.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Which approach to run.
    pub approach: Approach,
    /// The experiment (firmware, defects, workload, simulation parameters).
    pub experiment: ExperimentConfig,
    /// The test budget.
    pub budget: Budget,
    /// Number of fault-free profiling runs used to calibrate the monitor.
    pub profiling_runs: usize,
    /// Invariant-monitor configuration.
    pub monitor: MonitorConfig,
    /// SABRE scheduler configuration (Avis and Stratified BFI).
    pub sabre: SabreConfig,
    /// Seed for the random baseline.
    pub seed: u64,
    /// Number of worker threads executing fault plans. `1` runs every
    /// plan inline; anything larger routes speculative execution through
    /// the worker pool ([`crate::engine`]) while producing a bit-identical
    /// [`CampaignResult`]. Defaults to the number of available CPU cores.
    pub parallelism: usize,
}

impl CheckerConfig {
    /// A configuration with sensible defaults.
    #[deprecated(
        since = "0.2.0",
        note = "use `avis::campaign::Campaign::builder()` — see MIGRATION.md"
    )]
    pub fn new(approach: Approach, experiment: ExperimentConfig, budget: Budget) -> Self {
        CheckerConfig {
            approach,
            experiment,
            budget,
            profiling_runs: 3,
            monitor: MonitorConfig::default(),
            sabre: SabreConfig::default(),
            seed: 17,
            parallelism: engine::default_parallelism(),
        }
    }

    /// Sets the worker count (`1` = serial) and returns the configuration.
    #[deprecated(
        since = "0.2.0",
        note = "use `Campaign::builder().parallelism(n)` — see MIGRATION.md"
    )]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }
}

/// One unsafe condition discovered by a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnsafeCondition {
    /// The fault plan that exposed it.
    pub plan: FaultPlan,
    /// The invariant violations the monitor reported.
    pub violations: Vec<Violation>,
    /// The mode category in which the (earliest) failure was injected —
    /// the Table IV axis.
    pub injection_category: ModeCategory,
    /// The operating mode active just before the earliest injected failure.
    pub injection_mode: Option<OperatingMode>,
    /// Injected defects that activated in the run (maps the unsafe
    /// condition back to Tables II / V).
    pub triggered_bugs: Vec<BugId>,
    /// Number of simulations executed when this condition was found
    /// (including this one).
    pub simulations_used: usize,
    /// Cost consumed when this condition was found (s).
    pub cost_seconds_used: f64,
}

/// One contained crash observed by a campaign: a run whose simulated
/// firmware (or another substrate layer) panicked. Contained at the
/// runner boundary and reported here — the paper's `Serious` symptom
/// class — instead of aborting the campaign. Deterministic: the same
/// (seed, plan) produces the identical record at any parallelism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRecord {
    /// The fault plan whose run crashed.
    pub plan: FaultPlan,
    /// The rendered panic payload, tagged with the experiment
    /// fingerprint (seed + canonical plan key).
    pub message: String,
    /// The simulated lock-step index at which the panic unwound.
    pub step: u64,
    /// Number of simulations executed when the crash was observed
    /// (including this one).
    pub simulations_used: usize,
}

/// The outcome of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Display name of the strategy that was run (an [`Approach`] name
    /// for the built-ins, [`Strategy::name`] for custom strategies).
    pub strategy: String,
    /// The built-in approach, when the campaign ran one (`None` for
    /// custom strategies plugged in through the builder).
    pub approach: Option<Approach>,
    /// The firmware profile under test.
    pub profile: FirmwareProfile,
    /// The workload name.
    pub workload: String,
    /// Every unsafe condition found, in discovery order.
    pub unsafe_conditions: Vec<UnsafeCondition>,
    /// Total simulations executed (including profiling runs).
    pub simulations: usize,
    /// Total cost consumed (s).
    pub cost_seconds: f64,
    /// Number of model labelling calls (BFI variants only).
    pub labels_evaluated: usize,
    /// Scenarios skipped by instance-symmetry / duplicate pruning.
    pub symmetry_pruned: u64,
    /// Scenarios skipped by found-bug pruning.
    pub found_bug_pruned: u64,
    /// The link-fault scenario this campaign ran under, when it was a
    /// cell of a [`crate::matrix::ScenarioMatrix`] link-fault sweep
    /// (`None` for standalone campaigns, including ones configured
    /// through [`crate::campaign::CampaignBuilder::link_faults`]).
    #[serde(default)]
    pub link_scenario: Option<String>,
    /// Contained crashes, in discovery order: runs whose simulated
    /// firmware panicked, reported as first-class
    /// [`crate::runner::RunVerdict::Crashed`] outcomes instead of
    /// aborting the campaign. Serde-defaulted so results serialised
    /// before this field existed deserialise as crash-free.
    #[serde(default)]
    pub crashes: Vec<CrashRecord>,
}

impl CampaignResult {
    /// Number of unsafe conditions found.
    pub fn unsafe_count(&self) -> usize {
        self.unsafe_conditions.len()
    }

    /// The distinct injected defects this campaign exposed.
    pub fn bugs_found(&self) -> BTreeSet<BugId> {
        self.unsafe_conditions
            .iter()
            .flat_map(|u| u.triggered_bugs.iter().copied())
            .collect()
    }

    /// Unsafe conditions grouped by the mode category of the injection
    /// (Table IV).
    pub fn per_category(&self) -> BTreeMap<ModeCategory, usize> {
        let mut map = BTreeMap::new();
        for u in &self.unsafe_conditions {
            *map.entry(u.injection_category).or_insert(0) += 1;
        }
        map
    }

    /// Number of simulations needed before the first unsafe condition
    /// attributable to `bug` was found (Table V), if it was found at all.
    pub fn simulations_to_find(&self, bug: BugId) -> Option<usize> {
        self.unsafe_conditions
            .iter()
            .find(|u| u.triggered_bugs.contains(&bug))
            .map(|u| u.simulations_used)
    }
}

/// The legacy campaign entry point: runs one [`CheckerConfig`].
///
/// Kept as a compatibility shim over the strategy engine; new code should
/// use [`crate::campaign::Campaign::builder`], which adds custom
/// strategies and streaming observers.
#[derive(Debug, Clone)]
pub struct Checker {
    config: CheckerConfig,
}

pub(crate) struct CampaignState {
    pub(crate) runner: ExperimentRunner,
    pub(crate) monitor: crate::monitor::InvariantMonitor,
    pub(crate) golden: Trace,
    pub(crate) simulations: usize,
    pub(crate) cost_seconds: f64,
    pub(crate) labels: usize,
    pub(crate) unsafe_conditions: Vec<UnsafeCondition>,
    pub(crate) crashes: Vec<CrashRecord>,
}

impl CampaignState {
    /// Whether the campaign must stop: the budget does not cover another
    /// simulation at the current consumption.
    pub(crate) fn out_of_budget(&self, budget: &Budget) -> bool {
        !budget.allows_another(self.simulations, self.cost_seconds)
    }

    /// Charges a completed run against the budget and records any unsafe
    /// condition. Returns whether the run was unsafe. The engine commits
    /// results through this in canonical round order, which is what makes
    /// the accounting identical at every parallelism.
    pub(crate) fn absorb(&mut self, result: &RunResult) -> bool {
        self.simulations += 1;
        self.cost_seconds += result.simulated_seconds;
        // A contained crash is a first-class outcome: record it and keep
        // the campaign running. The crashed run carries no trace (its
        // state died with the unwind), so the monitor has nothing to
        // check; it is reported through `CampaignResult::crashes`, not as
        // an unsafe condition. `Diverged` runs (watchdog) fall through —
        // their partial trace is checked like any other.
        if let RunVerdict::Crashed { message, step } = &result.verdict {
            self.crashes.push(CrashRecord {
                plan: result.plan.clone(),
                message: message.clone(),
                step: *step,
                simulations_used: self.simulations,
            });
            return false;
        }
        let violations = self.monitor.check(&result.trace);
        if violations.is_empty() {
            return false;
        }
        let injection_time = result
            .plan
            .specs()
            .map(|s| s.time)
            .fold(f64::INFINITY, f64::min);
        let injection_mode = if injection_time.is_finite() {
            self.golden.mode_before(injection_time)
        } else {
            None
        };
        // Table IV attributes an unsafe scenario to the mode in which it
        // manifested (the injected failure persists, so the violation
        // often occurs one or more modes after the injection anchor).
        let injection_category = violations
            .first()
            .map(|v| v.mode.category())
            .or_else(|| injection_mode.map(|m| m.category()))
            .unwrap_or(ModeCategory::Manual);
        self.unsafe_conditions.push(UnsafeCondition {
            plan: result.plan.clone(),
            violations,
            injection_category,
            injection_mode,
            triggered_bugs: result.triggered_defects.clone(),
            simulations_used: self.simulations,
            cost_seconds_used: self.cost_seconds,
        });
        true
    }
}

impl Checker {
    /// Creates a checker for the given configuration.
    #[deprecated(
        since = "0.2.0",
        note = "use `avis::campaign::Campaign::builder()` — see MIGRATION.md"
    )]
    pub fn new(config: CheckerConfig) -> Self {
        Checker { config }
    }

    pub(crate) fn from_config(config: CheckerConfig) -> Self {
        Checker { config }
    }

    /// The checker configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Runs the campaign to completion (budget exhaustion or fault-space
    /// exhaustion) and returns the result.
    pub fn run(&self) -> CampaignResult {
        let cfg = &self.config;
        let mut strategy = cfg.approach.strategy();
        crate::campaign::execute_campaign(
            crate::campaign::CampaignSpec {
                experiment: &cfg.experiment,
                budget: cfg.budget,
                profiling_runs: cfg.profiling_runs,
                monitor: &cfg.monitor,
                sabre: cfg.sabre,
                seed: cfg.seed,
                parallelism: cfg.parallelism,
                shared: None,
                dispatch: crate::engine::DispatchMode::default(),
                worker_stats: None,
                store: None,
            },
            strategy.as_mut(),
            Some(cfg.approach),
            &mut crate::campaign::NullObserver,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use avis_firmware::BugSet;
    use avis_sim::SensorNoise;
    use avis_workload::auto_box_mission;

    fn small_experiment(bugs: BugSet) -> ExperimentConfig {
        let mut exp =
            ExperimentConfig::new(FirmwareProfile::ArduPilotLike, bugs, auto_box_mission());
        exp.noise = Some(SensorNoise::default());
        exp.max_duration = 110.0;
        exp
    }

    #[test]
    fn approach_feature_matrix_matches_table_i() {
        assert!(Approach::Avis.targets_mode_transitions());
        assert!(Approach::StratifiedBfi.targets_mode_transitions());
        assert!(!Approach::Bfi.targets_mode_transitions());
        assert!(!Approach::Random.targets_mode_transitions());

        assert!(!Approach::Avis.uses_prior_bugs());
        assert!(Approach::StratifiedBfi.uses_prior_bugs());
        assert!(Approach::Bfi.uses_prior_bugs());
        assert!(!Approach::Random.uses_prior_bugs());

        assert!(Approach::Avis.searches_dissimilar_first());
        assert!(Approach::StratifiedBfi.searches_dissimilar_first());
        assert!(!Approach::Bfi.searches_dissimilar_first());
        assert!(Approach::Random.searches_dissimilar_first());
        assert_eq!(Approach::ALL.len(), 4);
    }

    #[test]
    fn approach_factory_names_match() {
        for approach in Approach::ALL {
            assert_eq!(approach.strategy().name(), approach.name());
        }
    }

    #[test]
    fn budget_exhaustion_is_strict() {
        let b = Budget {
            max_simulations: 10,
            max_cost_seconds: 100.0,
        };
        // Consumption on the boundary is still within budget...
        assert!(!b.exhausted(10, 100.0));
        // ...and only strictly exceeding it exhausts.
        assert!(b.exhausted(11, 50.0));
        assert!(b.exhausted(5, 100.1));
        // `allows_another` is the engine-facing check: an 11th run would
        // exceed the cap, and cost already past the cap blocks new runs.
        assert!(b.allows_another(9, 100.0));
        assert!(!b.allows_another(10, 50.0));
        assert!(!b.allows_another(5, 100.5));
        assert!(Budget::seconds(100.0).allows_another(1_000_000, 99.0));
        assert!(!Budget::simulations(3).allows_another(3, 0.0));
    }

    #[test]
    fn budget_fraction_tracks_the_tighter_axis() {
        let b = Budget {
            max_simulations: 10,
            max_cost_seconds: 100.0,
        };
        assert_eq!(b.consumed_fraction(5, 20.0), 0.5);
        assert_eq!(b.consumed_fraction(2, 90.0), 0.9);
        assert_eq!(b.consumed_fraction(20, 0.0), 1.0);
        assert_eq!(Budget::simulations(4).consumed_fraction(1, 1e9), 0.25);
        assert_eq!(Budget::seconds(10.0).consumed_fraction(99, 5.0), 0.5);
    }

    // The end-to-end campaign comparisons live in the integration tests and
    // bench harnesses (they need release-grade run times); here we only run
    // a tiny Avis campaign to validate the plumbing.
    #[test]
    fn tiny_avis_campaign_finds_a_bug_in_the_buggy_code_base() {
        let bugs = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
        let result = Campaign::builder()
            .experiment(small_experiment(bugs))
            .budget(Budget::simulations(14))
            .profiling_runs(2)
            .build()
            .run();
        assert!(result.simulations <= 14);
        assert!(
            !result.unsafe_conditions.is_empty(),
            "a small SABRE campaign on the buggy code base should expose at least one unsafe condition"
        );
        assert!(!result.bugs_found().is_empty());
        // Every unsafe condition carries a plan and at least one violation.
        for u in &result.unsafe_conditions {
            assert!(!u.plan.is_empty());
            assert!(!u.violations.is_empty());
            assert!(u.simulations_used <= result.simulations);
        }
    }

    #[test]
    fn fixed_code_base_yields_no_unsafe_conditions_in_a_small_campaign() {
        let result = Campaign::builder()
            .experiment(small_experiment(BugSet::none()))
            .budget(Budget::simulations(10))
            .profiling_runs(2)
            .build()
            .run();
        assert!(
            result.unsafe_conditions.is_empty(),
            "no false positives on the fixed code base: {:?}",
            result.unsafe_conditions
        );
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_checker_shim_matches_the_builder() {
        // The compatibility shim and the fluent builder must drive the
        // identical engine — this is the contract MIGRATION.md documents.
        let bugs = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
        let mut config = CheckerConfig::new(
            Approach::Avis,
            small_experiment(bugs.clone()),
            Budget::simulations(8),
        );
        config.profiling_runs = 2;
        config.parallelism = 2;
        let legacy = Checker::new(config).run();
        let fluent = Campaign::builder()
            .experiment(small_experiment(bugs))
            .budget(Budget::simulations(8))
            .profiling_runs(2)
            .parallelism(2)
            .build()
            .run();
        assert_eq!(legacy, fluent);
    }
}
