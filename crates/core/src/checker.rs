//! The model-checking campaigns: Avis (SABRE) and the three competing
//! approaches, run under a common test budget and evaluated by the same
//! invariant monitor.
//!
//! A *campaign* corresponds to one row-cell of the paper's Table III: one
//! approach, one firmware, one workload, a fixed budget. The paper budgets
//! by wall-clock time (2 hours of SITL per approach and workload); this
//! reproduction budgets by *simulated seconds* plus the modelled BFI
//! labelling latency, which preserves the relative comparison while being
//! independent of host speed.

use crate::baselines::{BfiModel, DfsSiteIterator, RandomInjection};
use crate::engine;
use crate::monitor::{InvariantMonitor, MonitorConfig, Violation};
use crate::pruning::candidate_failure_sets;
use crate::runner::{ExperimentConfig, ExperimentRunner, RunResult};
use crate::sabre::{SabreConfig, SabreQueue};
use crate::trace::Trace;
use avis_firmware::{BugId, FirmwareProfile, ModeCategory, OperatingMode};
use avis_hinj::{FaultPlan, FaultSpec};
use avis_sim::SensorSuiteConfig;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The fault-injection approaches compared in the paper (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Approach {
    /// Avis: SABRE ordering, no learned model, redundancy elimination.
    Avis,
    /// Stratified BFI: SABRE ordering, injection sites filtered by BFI's model.
    StratifiedBfi,
    /// Vanilla BFI: depth-first site enumeration filtered by the model.
    Bfi,
    /// Uniformly random injection.
    Random,
}

impl Approach {
    /// All approaches in the order the paper's tables list them.
    pub const ALL: [Approach; 4] = [
        Approach::Avis,
        Approach::StratifiedBfi,
        Approach::Bfi,
        Approach::Random,
    ];

    /// Display name used in regenerated tables.
    pub fn name(self) -> &'static str {
        match self {
            Approach::Avis => "Avis",
            Approach::StratifiedBfi => "Stratified BFI",
            Approach::Bfi => "BFI",
            Approach::Random => "Random",
        }
    }

    /// Table I: does the approach target operating-mode transitions?
    pub fn targets_mode_transitions(self) -> bool {
        matches!(self, Approach::Avis | Approach::StratifiedBfi)
    }

    /// Table I: do prior bugs inform the injection sites?
    pub fn uses_prior_bugs(self) -> bool {
        matches!(self, Approach::StratifiedBfi | Approach::Bfi)
    }

    /// Table I: does the approach search dissimilar scenarios first?
    pub fn searches_dissimilar_first(self) -> bool {
        matches!(
            self,
            Approach::Avis | Approach::StratifiedBfi | Approach::Random
        )
    }
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The test budget shared by every approach in a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum number of simulated test runs.
    pub max_simulations: usize,
    /// Maximum accumulated cost in seconds: simulated flight time plus the
    /// modelled BFI labelling latency.
    pub max_cost_seconds: f64,
}

impl Budget {
    /// A budget expressed purely in cost seconds.
    pub fn seconds(max_cost_seconds: f64) -> Self {
        Budget {
            max_simulations: usize::MAX,
            max_cost_seconds,
        }
    }

    /// A budget expressed purely in simulations.
    pub fn simulations(max_simulations: usize) -> Self {
        Budget {
            max_simulations,
            max_cost_seconds: f64::INFINITY,
        }
    }

    /// Whether the budget is exhausted at the given consumption.
    pub fn exhausted(&self, simulations: usize, cost_seconds: f64) -> bool {
        simulations >= self.max_simulations || cost_seconds >= self.max_cost_seconds
    }
}

/// Configuration for one campaign.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Which approach to run.
    pub approach: Approach,
    /// The experiment (firmware, defects, workload, simulation parameters).
    pub experiment: ExperimentConfig,
    /// The test budget.
    pub budget: Budget,
    /// Number of fault-free profiling runs used to calibrate the monitor.
    pub profiling_runs: usize,
    /// Invariant-monitor configuration.
    pub monitor: MonitorConfig,
    /// SABRE scheduler configuration (Avis and Stratified BFI).
    pub sabre: SabreConfig,
    /// Seed for the random baseline.
    pub seed: u64,
    /// Number of worker threads executing fault plans. `1` runs the exact
    /// legacy serial loop; anything larger routes the campaign through the
    /// deterministic parallel engine ([`crate::engine`]), which produces a
    /// bit-identical [`CampaignResult`]. Defaults to the number of
    /// available CPU cores.
    pub parallelism: usize,
}

impl CheckerConfig {
    /// A configuration with sensible defaults.
    pub fn new(approach: Approach, experiment: ExperimentConfig, budget: Budget) -> Self {
        CheckerConfig {
            approach,
            experiment,
            budget,
            profiling_runs: 3,
            monitor: MonitorConfig::default(),
            sabre: SabreConfig::default(),
            seed: 17,
            parallelism: engine::default_parallelism(),
        }
    }

    /// Sets the worker count (`1` = serial) and returns the configuration.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }
}

/// One unsafe condition discovered by a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnsafeCondition {
    /// The fault plan that exposed it.
    pub plan: FaultPlan,
    /// The invariant violations the monitor reported.
    pub violations: Vec<Violation>,
    /// The mode category in which the (earliest) failure was injected —
    /// the Table IV axis.
    pub injection_category: ModeCategory,
    /// The operating mode active just before the earliest injected failure.
    pub injection_mode: Option<OperatingMode>,
    /// Injected defects that activated in the run (maps the unsafe
    /// condition back to Tables II / V).
    pub triggered_bugs: Vec<BugId>,
    /// Number of simulations executed when this condition was found
    /// (including this one).
    pub simulations_used: usize,
    /// Cost consumed when this condition was found (s).
    pub cost_seconds_used: f64,
}

/// The outcome of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The approach that was run.
    pub approach: Approach,
    /// The firmware profile under test.
    pub profile: FirmwareProfile,
    /// The workload name.
    pub workload: String,
    /// Every unsafe condition found, in discovery order.
    pub unsafe_conditions: Vec<UnsafeCondition>,
    /// Total simulations executed (including profiling runs).
    pub simulations: usize,
    /// Total cost consumed (s).
    pub cost_seconds: f64,
    /// Number of model labelling calls (BFI variants only).
    pub labels_evaluated: usize,
    /// Scenarios skipped by instance-symmetry / duplicate pruning.
    pub symmetry_pruned: u64,
    /// Scenarios skipped by found-bug pruning.
    pub found_bug_pruned: u64,
}

impl CampaignResult {
    /// Number of unsafe conditions found.
    pub fn unsafe_count(&self) -> usize {
        self.unsafe_conditions.len()
    }

    /// The distinct injected defects this campaign exposed.
    pub fn bugs_found(&self) -> BTreeSet<BugId> {
        self.unsafe_conditions
            .iter()
            .flat_map(|u| u.triggered_bugs.iter().copied())
            .collect()
    }

    /// Unsafe conditions grouped by the mode category of the injection
    /// (Table IV).
    pub fn per_category(&self) -> BTreeMap<ModeCategory, usize> {
        let mut map = BTreeMap::new();
        for u in &self.unsafe_conditions {
            *map.entry(u.injection_category).or_insert(0) += 1;
        }
        map
    }

    /// Number of simulations needed before the first unsafe condition
    /// attributable to `bug` was found (Table V), if it was found at all.
    pub fn simulations_to_find(&self, bug: BugId) -> Option<usize> {
        self.unsafe_conditions
            .iter()
            .find(|u| u.triggered_bugs.contains(&bug))
            .map(|u| u.simulations_used)
    }
}

/// The model checker: runs one campaign according to its configuration.
#[derive(Debug, Clone)]
pub struct Checker {
    config: CheckerConfig,
}

pub(crate) struct CampaignState {
    pub(crate) runner: ExperimentRunner,
    pub(crate) monitor: InvariantMonitor,
    pub(crate) golden: Trace,
    pub(crate) simulations: usize,
    pub(crate) cost_seconds: f64,
    pub(crate) labels: usize,
    pub(crate) unsafe_conditions: Vec<UnsafeCondition>,
}

impl CampaignState {
    pub(crate) fn budget_exhausted(&self, budget: &Budget) -> bool {
        budget.exhausted(self.simulations, self.cost_seconds)
    }

    /// Charges a completed run against the budget and records any unsafe
    /// condition. Returns whether the run was unsafe. Shared by the serial
    /// loop (which produced the result itself) and the parallel engine
    /// (which replays worker results in canonical order).
    pub(crate) fn absorb(&mut self, result: &RunResult) -> bool {
        self.simulations += 1;
        self.cost_seconds += result.simulated_seconds;
        let violations = self.monitor.check(&result.trace);
        if violations.is_empty() {
            return false;
        }
        let injection_time = result
            .plan
            .specs()
            .map(|s| s.time)
            .fold(f64::INFINITY, f64::min);
        let injection_mode = if injection_time.is_finite() {
            self.golden.mode_before(injection_time)
        } else {
            None
        };
        // Table IV attributes an unsafe scenario to the mode in which it
        // manifested (the injected failure persists, so the violation
        // often occurs one or more modes after the injection anchor).
        let injection_category = violations
            .first()
            .map(|v| v.mode.category())
            .or_else(|| injection_mode.map(|m| m.category()))
            .unwrap_or(ModeCategory::Manual);
        self.unsafe_conditions.push(UnsafeCondition {
            plan: result.plan.clone(),
            violations,
            injection_category,
            injection_mode,
            triggered_bugs: result.triggered_defects.clone(),
            simulations_used: self.simulations,
            cost_seconds_used: self.cost_seconds,
        });
        true
    }

    /// Executes one fault plan, charges its cost and records any unsafe
    /// condition. Returns the run result and whether it was unsafe.
    fn execute(&mut self, plan: FaultPlan) -> (RunResult, bool) {
        let result = self.runner.run_with_plan(plan);
        let is_unsafe = self.absorb(&result);
        (result, is_unsafe)
    }
}

impl Checker {
    /// Creates a checker for the given configuration.
    pub fn new(config: CheckerConfig) -> Self {
        Checker { config }
    }

    /// The checker configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Runs the campaign to completion (budget exhaustion or fault-space
    /// exhaustion) and returns the result.
    pub fn run(&self) -> CampaignResult {
        let cfg = &self.config;
        let mut runner = ExperimentRunner::new(cfg.experiment.clone());

        // Profiling runs: calibrate the invariant monitor and discover the
        // mode transitions that anchor the search.
        let mut profiling = Vec::new();
        let mut cost = 0.0;
        for i in 0..cfg.profiling_runs.max(1) {
            let run = runner.run_profiling(i as u64);
            cost += run.simulated_seconds;
            profiling.push(run);
        }
        let monitor = InvariantMonitor::calibrate(
            profiling.iter().map(|r| r.trace.clone()).collect(),
            cfg.monitor.clone(),
        );
        let golden = profiling[0].trace.clone();

        let mut state = CampaignState {
            runner,
            monitor,
            golden,
            simulations: profiling.len(),
            cost_seconds: cost,
            labels: 0,
            unsafe_conditions: Vec::new(),
        };

        let (symmetry_pruned, found_bug_pruned) = if cfg.parallelism > 1 {
            engine::run_campaign_parallel(self, &mut state)
        } else {
            match cfg.approach {
                Approach::Avis => self.run_sabre(&mut state, None),
                Approach::StratifiedBfi => {
                    self.run_sabre(&mut state, Some(BfiModel::with_default_training()))
                }
                Approach::Bfi => {
                    self.run_bfi(&mut state, BfiModel::with_default_training());
                    (0, 0)
                }
                Approach::Random => {
                    self.run_random(&mut state);
                    (0, 0)
                }
            }
        };

        CampaignResult {
            approach: cfg.approach,
            profile: cfg.experiment.profile,
            workload: cfg.experiment.workload.name().to_string(),
            unsafe_conditions: state.unsafe_conditions,
            simulations: state.simulations,
            cost_seconds: state.cost_seconds,
            labels_evaluated: state.labels,
            symmetry_pruned,
            found_bug_pruned,
        }
    }

    /// SABRE-driven exploration, optionally filtered by the BFI model
    /// (`None` = Avis, `Some` = Stratified BFI).
    fn run_sabre(&self, state: &mut CampaignState, model: Option<BfiModel>) -> (u64, u64) {
        let cfg = &self.config;
        let sensor_config = SensorSuiteConfig::iris();
        let candidates = candidate_failure_sets(&sensor_config);
        let sabre_config = SabreConfig {
            horizon: state.golden.duration.min(cfg.sabre.horizon),
            ..cfg.sabre
        };
        let mut queue = SabreQueue::new(&state.golden.transition_times(), sabre_config);

        'outer: while !queue.is_empty() && !state.budget_exhausted(&cfg.budget) {
            let Some(anchor) = queue.next_anchor() else {
                break;
            };
            let anchor_mode = state.golden.mode_before(anchor.timestamp);
            let anchor_category = anchor_mode
                .map(|m| m.category())
                .unwrap_or(ModeCategory::Manual);
            for set in &candidates {
                if state.budget_exhausted(&cfg.budget) {
                    break 'outer;
                }
                if let Some(model) = &model {
                    state.labels += 1;
                    state.cost_seconds += model.label_cost_seconds;
                    if !model.predicts_unsafe_set(set, anchor_category) {
                        continue;
                    }
                }
                let Some(plan) = queue.plan_for(&anchor, set) else {
                    continue;
                };
                let (result, is_unsafe) = state.execute(plan);
                if is_unsafe {
                    queue.record_bug(&result.plan);
                } else {
                    queue.record_ok(&result.plan, &result.trace.transition_times());
                }
            }
        }
        (
            queue.pruning().symmetry_pruned(),
            queue.pruning().found_bug_pruned(),
        )
    }

    /// Vanilla BFI: depth-first enumeration of individual sensor-read
    /// sites, each labelled by the model at the measured inference latency.
    fn run_bfi(&self, state: &mut CampaignState, model: BfiModel) {
        let cfg = &self.config;
        let sensor_config = SensorSuiteConfig::iris();
        let sites = DfsSiteIterator::new(&sensor_config, state.golden.duration, cfg.experiment.dt);
        for (instance, time) in sites {
            if state.budget_exhausted(&cfg.budget) {
                break;
            }
            state.labels += 1;
            state.cost_seconds += model.label_cost_seconds;
            let category = state
                .golden
                .mode_before(time)
                .map(|m| m.category())
                .unwrap_or(ModeCategory::Manual);
            if !model.predicts_unsafe(instance.kind, category) {
                continue;
            }
            if state.budget_exhausted(&cfg.budget) {
                break;
            }
            let plan = FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]);
            state.execute(plan);
        }
    }

    /// Uniformly random fault injection.
    fn run_random(&self, state: &mut CampaignState) {
        let cfg = &self.config;
        let sensor_config = SensorSuiteConfig::iris();
        let mut random = RandomInjection::new(&sensor_config, state.golden.duration, cfg.seed);
        while !state.budget_exhausted(&cfg.budget) {
            let plan = random.next_plan();
            state.execute(plan);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_firmware::BugSet;
    use avis_sim::SensorNoise;
    use avis_workload::auto_box_mission;

    fn small_experiment(bugs: BugSet) -> ExperimentConfig {
        let mut exp =
            ExperimentConfig::new(FirmwareProfile::ArduPilotLike, bugs, auto_box_mission());
        exp.noise = Some(SensorNoise::default());
        exp.max_duration = 110.0;
        exp
    }

    #[test]
    fn approach_feature_matrix_matches_table_i() {
        assert!(Approach::Avis.targets_mode_transitions());
        assert!(Approach::StratifiedBfi.targets_mode_transitions());
        assert!(!Approach::Bfi.targets_mode_transitions());
        assert!(!Approach::Random.targets_mode_transitions());

        assert!(!Approach::Avis.uses_prior_bugs());
        assert!(Approach::StratifiedBfi.uses_prior_bugs());
        assert!(Approach::Bfi.uses_prior_bugs());
        assert!(!Approach::Random.uses_prior_bugs());

        assert!(Approach::Avis.searches_dissimilar_first());
        assert!(Approach::StratifiedBfi.searches_dissimilar_first());
        assert!(!Approach::Bfi.searches_dissimilar_first());
        assert!(Approach::Random.searches_dissimilar_first());
        assert_eq!(Approach::ALL.len(), 4);
    }

    #[test]
    fn budget_exhaustion_rules() {
        let b = Budget {
            max_simulations: 10,
            max_cost_seconds: 100.0,
        };
        assert!(!b.exhausted(5, 50.0));
        assert!(b.exhausted(10, 50.0));
        assert!(b.exhausted(5, 100.0));
        assert!(!Budget::seconds(100.0).exhausted(1_000_000, 99.0));
        assert!(Budget::simulations(3).exhausted(3, 0.0));
    }

    // The end-to-end campaign comparisons live in the integration tests and
    // bench harnesses (they need release-grade run times); here we only run
    // a tiny Avis campaign to validate the plumbing.
    #[test]
    fn tiny_avis_campaign_finds_a_bug_in_the_buggy_code_base() {
        let bugs = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
        let mut config = CheckerConfig::new(
            Approach::Avis,
            small_experiment(bugs),
            Budget::simulations(14),
        );
        config.profiling_runs = 2;
        let result = Checker::new(config).run();
        assert!(result.simulations <= 14);
        assert!(
            !result.unsafe_conditions.is_empty(),
            "a small SABRE campaign on the buggy code base should expose at least one unsafe condition"
        );
        assert!(!result.bugs_found().is_empty());
        // Every unsafe condition carries a plan and at least one violation.
        for u in &result.unsafe_conditions {
            assert!(!u.plan.is_empty());
            assert!(!u.violations.is_empty());
            assert!(u.simulations_used <= result.simulations);
        }
    }

    #[test]
    fn fixed_code_base_yields_no_unsafe_conditions_in_a_small_campaign() {
        let mut config = CheckerConfig::new(
            Approach::Avis,
            small_experiment(BugSet::none()),
            Budget::simulations(10),
        );
        config.profiling_runs = 2;
        let result = Checker::new(config).run();
        assert!(
            result.unsafe_conditions.is_empty(),
            "no false positives on the fixed code base: {:?}",
            result.unsafe_conditions
        );
    }
}
