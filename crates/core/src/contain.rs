//! The sanctioned panic-containment module: every `catch_unwind` in the
//! workspace lives here (enforced by avis-lint rule `p2`), so swallowing
//! a panic is a deliberate, reviewed act rather than an ad-hoc shortcut.
//!
//! # Why containment is sound
//!
//! A run is a pure function of its [`avis_hinj::FaultPlan`]: a panic
//! raised while executing a plan is raised *deterministically* — the
//! same (seed, plan) panics at the same simulated step with the same
//! message at any parallelism. Containing the unwind at the runner
//! boundary and reporting it as a first-class
//! [`crate::runner::RunVerdict::Crashed`] therefore preserves the
//! engine's commit-replay contract: a crash is an *outcome*, replayed
//! bit-identically, not a harness failure.
//!
//! # Panic-hook suppression
//!
//! `std::panic::catch_unwind` still runs the global panic hook before
//! unwinding, which would spray a backtrace banner onto stderr for every
//! *contained* (expected, reported) crash. The first call through
//! [`catch`] installs a delegating hook that stays silent while the
//! current thread is inside a containment scope and forwards to the
//! previous hook otherwise — uncontained panics keep their full
//! diagnostics.

use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// Containment-scope depth of the current thread. Non-zero means a
    /// panic reaching the hook is about to be caught and reported as a
    /// verdict, so the hook stays silent.
    static CONTAIN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

static INSTALL_HOOK: Once = Once::new();

fn install_suppressing_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CONTAIN_DEPTH.with(Cell::get) == 0 {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, catching any panic it raises. The only sanctioned unwind
/// boundary in the workspace: callers convert the payload into a
/// [`crate::runner::RunVerdict::Crashed`] (or a worker-level error) and
/// keep the campaign running.
///
/// `AssertUnwindSafe` is justified by how callers use the closure's
/// captures after a panic: the runner rebuilds its per-run state from
/// scratch on the next run and quarantines any snapshots the panicked
/// run recorded (see `ExperimentRunner::run_contained`), so no state
/// that crossed the boundary is trusted afterwards.
pub(crate) fn catch<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
    install_suppressing_hook();
    CONTAIN_DEPTH.with(|depth| depth.set(depth.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTAIN_DEPTH.with(|depth| depth.set(depth.get() - 1));
    result
}

/// Renders a caught panic payload into the human-readable message a
/// [`crate::runner::RunVerdict::Crashed`] carries. String payloads (the
/// overwhelmingly common `panic!("..")` case) are passed through;
/// anything else is summarised. A non-empty `context` — the experiment
/// fingerprint, a worker id — is appended so surviving logs identify
/// *which* scenario crashed.
pub(crate) fn render_panic(payload: &(dyn Any + Send), context: &str) -> String {
    let message = if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    };
    if context.is_empty() {
        message
    } else {
        format!("{message} [{context}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_returns_the_closure_value_on_success() {
        assert_eq!(catch(|| 7).ok(), Some(7));
    }

    #[test]
    fn catch_captures_panics_and_renders_payloads() {
        let err = catch(|| -> i32 { panic!("boom at step {}", 3) }).unwrap_err();
        assert_eq!(render_panic(err.as_ref(), ""), "boom at step 3");
        assert_eq!(
            render_panic(err.as_ref(), "seed 1, plan gps"),
            "boom at step 3 [seed 1, plan gps]"
        );

        let err = catch(|| -> i32 { panic!("static payload") }).unwrap_err();
        assert_eq!(render_panic(err.as_ref(), ""), "static payload");

        let err = catch(|| std::panic::panic_any(42u64)).unwrap_err();
        assert_eq!(render_panic(err.as_ref(), ""), "non-string panic payload");
    }

    #[test]
    fn containment_depth_unwinds_with_nested_scopes() {
        let outer = catch(|| {
            let inner = catch(|| -> i32 { panic!("inner") });
            assert!(inner.is_err());
            // The inner scope restored the depth; a panic here is still
            // contained by the outer scope.
            panic!("outer")
        });
        assert!(outer.is_err());
        assert_eq!(CONTAIN_DEPTH.with(Cell::get), 0);
    }
}
