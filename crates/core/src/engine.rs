//! The campaign engine: drives any [`Strategy`] through its
//! propose / decide / observe lifecycle, serially or on a scoped worker
//! pool, while producing a [`crate::checker::CampaignResult`]
//! **bit-identical** at every parallelism and streaming
//! [`CampaignEvent`]s to the observer in commit order.
//!
//! # Why parallelism cannot change the result
//!
//! A test run is a pure function of its [`FaultPlan`]: the runner
//! provisions a fresh simulator + firmware + workload per run and seeds
//! every noise source from the experiment configuration alone, so two
//! executions of the same plan — on any thread, in any order — yield the
//! same [`RunResult`]. What is *not* order-independent is the campaign
//! bookkeeping around the runs: budget accounting, pruning feedback and
//! the discovery order of unsafe conditions. The engine therefore splits
//! each strategy round into three phases:
//!
//! 1. **Proposal.** [`Strategy::propose`] emits the round's candidates.
//!    Rounds are the strategy's natural work units (a SABRE anchor's
//!    candidate sets, a fixed batch of BFI sites) and never depend on the
//!    worker count — see the determinism contract in [`crate::strategy`].
//! 2. **Speculative execution.** Candidates carrying a speculative plan
//!    are executed concurrently on the worker pool (skipped entirely in
//!    the serial case), in *wavefronts* of a small multiple of the pool
//!    size ([`BATCH_FACTOR`]) so that a bug committed mid-round cancels
//!    its now-pruned siblings ([`Strategy::revalidate`]) instead of
//!    wasting workers on them. Speculation past the remaining simulation
//!    budget is capped; wrong or missing speculation is repaired at
//!    commit by executing inline.
//! 3. **Sequential commit.** For every candidate, in round order, the
//!    engine applies the authoritative control flow: budget check,
//!    [`Strategy::decide`] (label charges, pruning), post-charge budget
//!    re-check, run execution (pool result or inline fallback),
//!    absorption into the campaign state, observer events and
//!    [`Strategy::observe`] feedback.
//!
//! The commit phase performs precisely the serial sequence of decisions
//! and mutations, so the pruning counters, cost accounting,
//! unsafe-condition order, observer event stream and every other
//! observable of the campaign match the serial engine exactly — the
//! determinism suite in `tests/engine_determinism.rs` asserts structural
//! equality of the full campaign result and of the event stream.

use crate::campaign::{CampaignEvent, CampaignObserver};
use crate::checker::{Budget, CampaignState};
use crate::runner::{ExperimentConfig, ExperimentRunner, RunResult};
use crate::snapshot::SharedSnapshotTier;
use crate::strategy::{Observation, Strategy};
use avis_hinj::FaultPlan;
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// The default worker count: the number of available CPU cores.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The engine-facing slice of a campaign configuration.
pub(crate) struct EngineParams<'a> {
    /// The experiment each worker provisions its runner from.
    pub experiment: &'a ExperimentConfig,
    /// The shared test budget.
    pub budget: &'a Budget,
    /// Worker count; `1` executes every run inline on the calling thread.
    pub parallelism: usize,
    /// The read-mostly shared snapshot tier, attached to every worker's
    /// runner and republished by the engine between speculative
    /// wavefronts so one worker's cold run warms every worker's cache.
    pub shared: Option<Arc<SharedSnapshotTier>>,
}

/// Simulations left before the hard budget cap (`usize::MAX` for
/// cost-only budgets). Speculating past this is guaranteed waste.
fn remaining_simulations(budget: &Budget, state: &CampaignState) -> usize {
    if budget.max_simulations == usize::MAX {
        usize::MAX
    } else {
        budget.max_simulations.saturating_sub(state.simulations)
    }
}

/// Takes the speculative result for `token`, or — when speculation was
/// capped, filtered or wrong — executes the plan inline. Runs are pure
/// functions of their plan, so the fallback preserves bit-identical
/// results; a stale speculative result whose plan diverged from the
/// committed plan is discarded rather than absorbed.
fn take_or_run(
    results: &mut BTreeMap<u64, RunResult>,
    token: u64,
    plan: FaultPlan,
    state: &mut CampaignState,
) -> RunResult {
    match results.remove(&token) {
        Some(result) if result.plan == plan => result,
        _ => state.runner.run_with_plan(plan),
    }
}

/// A unit of speculative work: the candidate token the result must be
/// committed under, plus the plan to execute.
type Job = (u64, FaultPlan);

/// Dispatch-order key grouping plans that share an injection prefix:
/// earliest failure time first, then failure count, then the canonical
/// plan key. Sorting a wavefront's speculative jobs this way hands
/// prefix-sharing siblings to the pool back-to-back, so the workers'
/// per-runner snapshot caches ([`crate::snapshot`]) fork consecutive
/// jobs off their hottest checkpoint chain instead of interleaving
/// unrelated prefixes. Results are keyed by candidate token and
/// committed strictly in round order, so dispatch order can never change
/// a campaign observable.
fn prefix_dispatch_key(plan: &FaultPlan) -> (i64, usize, String) {
    let earliest = plan
        .specs()
        .map(|s| (s.time * 1000.0).round() as i64)
        .min()
        .unwrap_or(i64::MAX);
    (earliest, plan.len(), plan.canonical_key())
}

/// What a worker sends back: a completed run, or the panic message of a
/// run that blew up (so the campaign fails loudly instead of deadlocking
/// the wavefront collector).
type WorkerOutcome = Result<(u64, RunResult), String>;

/// Hands wavefronts of fault plans to the worker pool and collects the
/// results keyed by candidate token.
struct Wavefront {
    job_tx: Sender<Job>,
    result_rx: Receiver<WorkerOutcome>,
}

impl Wavefront {
    /// Executes one wavefront of plans, blocking until every result is in.
    ///
    /// # Panics
    ///
    /// Re-raises any panic that occurred on a worker thread — the same
    /// observable behaviour the serial engine has when a run panics.
    fn execute(&self, jobs: Vec<Job>) -> BTreeMap<u64, RunResult> {
        let expected = jobs.len();
        for job in jobs {
            self.job_tx
                .send(job)
                .expect("worker pool alive while jobs are pending");
        }
        let mut results = BTreeMap::new();
        while results.len() < expected {
            let outcome = self
                .result_rx
                .recv()
                .expect("worker pool alive while results are pending");
            match outcome {
                Ok((token, result)) => {
                    results.insert(token, result);
                }
                Err(panic_message) => {
                    panic!("campaign worker thread panicked: {panic_message}")
                }
            }
        }
        results
    }
}

/// Renders a `catch_unwind` payload for re-raising on the main thread.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the campaign body (everything after profiling/calibration):
/// drives `strategy` round by round until the budget or its search space
/// is exhausted. Serial when `params.parallelism <= 1`, otherwise on a
/// scoped worker pool.
pub(crate) fn run_campaign(
    params: EngineParams<'_>,
    strategy: &mut dyn Strategy,
    state: &mut CampaignState,
    observer: &mut dyn CampaignObserver,
) {
    let workers = params.parallelism.max(1);
    if workers == 1 {
        run_rounds(&params, strategy, state, observer, None);
        return;
    }
    std::thread::scope(|scope| {
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel::<WorkerOutcome>();
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let result_tx = result_tx.clone();
            let experiment = params.experiment.clone();
            let shared = params.shared.clone();
            scope.spawn(move || {
                // One fresh runner per worker, kept alive across jobs on
                // purpose: each runner owns a snapshot cache
                // (`crate::snapshot`) that its later jobs fork from, and
                // shares the campaign-wide tier with its siblings.
                // Cache state affects only run *timing* — a forked run is
                // bit-identical to a cold one — so results stay pure
                // functions of their plan.
                let mut runner = ExperimentRunner::new(experiment);
                if let Some(tier) = shared {
                    runner.set_shared_tier(tier);
                }
                loop {
                    // Hold the receiver lock only while dequeueing.
                    let job = job_rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    let Ok((token, plan)) = job else { break };
                    // A panicking run must reach the collector as an error:
                    // swallowing it would leave the wavefront waiting for a
                    // result that never comes.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        runner.run_with_plan(plan)
                    }));
                    match outcome {
                        Ok(result) => {
                            if result_tx.send(Ok((token, result))).is_err() {
                                break;
                            }
                        }
                        Err(payload) => {
                            let _ = result_tx.send(Err(panic_message(payload.as_ref())));
                            break;
                        }
                    }
                }
            });
        }
        drop(result_tx);
        let pool = Wavefront { job_tx, result_rx };
        run_rounds(&params, strategy, state, observer, Some(&pool));
        // `pool` (and with it `job_tx`) drops here, the workers see a
        // disconnected channel and exit, and the scope joins them.
    })
}

/// How many speculative jobs the engine dispatches per wavefront, as a
/// multiple of the worker count. Larger factors amortise channel traffic
/// and keep workers busy across the sequential commit, but every
/// speculative run the commit rejects (pruned by a bug found earlier in
/// the same round, or past the budget) is wasted work — so wavefronts
/// are kept a small multiple of the pool size rather than, say, a whole
/// SABRE anchor's candidate list at once. Between wavefronts the engine
/// re-asks the strategy ([`Strategy::revalidate`]) whether each hint is
/// still worth running, so a bug committed in one wavefront cancels its
/// now-pruned siblings in the next.
const BATCH_FACTOR: usize = 4;

/// Pruning-aware wavefront sizing. Speculation only pays off when the
/// speculated runs actually commit; every unsafe commit triggers
/// found-bug pruning that invalidates speculated siblings, turning them
/// into pure waste (painfully visible on one core, where wasted runs
/// steal cycles from useful ones). The sizer tracks an exponentially
/// weighted unsafe-commit rate and
///
/// * **withdraws speculation entirely** while the rate is high — the
///   commit then executes runs inline, which *is* the serial engine, so
///   a bug-dense campaign degrades to serial cost instead of paying for
///   doomed wavefronts;
/// * **shrinks the wavefront** (quartering, regrowing by doubling)
///   around isolated bug findings, so a mixed regime speculates
///   shallowly instead of `BATCH_FACTOR × workers` deep.
///
/// The rate decays with every clean commit, so the engine re-enters the
/// speculative regime a handful of clean commits after a bug-dense
/// stretch ends. Sizing and gating only decide which runs are
/// *pre-executed*, never which runs commit, so they cannot change a
/// campaign observable.
#[derive(Debug, Clone, Copy)]
struct WavefrontSizer {
    max: usize,
    size: usize,
    /// Exponentially weighted rate of unsafe commits (decay 0.9).
    bug_rate: f64,
}

/// Unsafe-commit rate above which speculation is withdrawn: at one bug
/// per four commits, a full wavefront loses more to pruned siblings
/// than it gains from overlap.
const SPECULATION_BUG_RATE_CEILING: f64 = 0.25;

impl WavefrontSizer {
    fn new(workers: usize) -> Self {
        let max = workers.max(1) * BATCH_FACTOR;
        WavefrontSizer {
            max,
            size: max,
            bug_rate: 0.0,
        }
    }

    fn size(&self) -> usize {
        self.size
    }

    /// Whether the next wavefront is worth dispatching to the pool at
    /// all.
    fn speculate(&self) -> bool {
        self.bug_rate < SPECULATION_BUG_RATE_CEILING
    }

    /// Feeds one committed run's verdict into the rate estimate.
    fn observe_commit(&mut self, is_unsafe: bool) {
        self.bug_rate = 0.9 * self.bug_rate + if is_unsafe { 0.1 } else { 0.0 };
    }

    fn observe_wavefront(&mut self, found_bug: bool) {
        self.size = if found_bug {
            (self.size / 4).max(1)
        } else {
            (self.size * 2).min(self.max)
        };
    }
}

/// The round loop shared by the serial and parallel paths. The only
/// difference between them is where speculative plans execute; the
/// commit-order control flow — and with it every campaign observable —
/// is byte-for-byte the same, because wavefront boundaries only decide
/// which runs are *pre-executed*, never which runs commit.
fn run_rounds(
    params: &EngineParams<'_>,
    strategy: &mut dyn Strategy,
    state: &mut CampaignState,
    observer: &mut dyn CampaignObserver,
    pool: Option<&Wavefront>,
) {
    let mut sizer = WavefrontSizer::new(params.parallelism.max(1));
    loop {
        if state.out_of_budget(params.budget) {
            break;
        }
        let round = strategy.propose();
        if round.is_empty() {
            break;
        }

        let mut start = 0;
        while start < round.len() {
            let wavefront_size = match pool {
                Some(_) => sizer.size(),
                // Serial: no speculation, one "wavefront" per round.
                None => usize::MAX,
            };
            let end = round.len().min(start.saturating_add(wavefront_size));
            let wavefront = &round[start..end];

            // Phase 2: speculative execution of the wavefront's hinted
            // plans — skipping hints the strategy has since withdrawn
            // (a bug committed in an earlier wavefront pruned them) and
            // capping at the remaining simulation budget (running past
            // it is guaranteed waste). The commit's inline fallback
            // covers any plan these filters wrongly skip. In a
            // bug-dense stretch the sizer withdraws speculation
            // entirely (`speculate()` false) and the commit runs
            // inline, exactly like the serial engine.
            let mut results: BTreeMap<u64, RunResult> = match pool {
                Some(pool) if sizer.speculate() => {
                    // Republish the shared snapshot tier before
                    // dispatching: snapshots recorded since the last
                    // wavefront (on any worker, or inline) become
                    // visible to every worker's lock-free lookups.
                    // Inline wavefronts skip this — republishing is an
                    // O(published-map) rebuild, and the inline runner's
                    // own cache already holds what it recorded.
                    if let Some(tier) = &params.shared {
                        tier.republish();
                    }
                    let cap = remaining_simulations(params.budget, state);
                    let mut jobs: Vec<Job> = wavefront
                        .iter()
                        .filter(|c| strategy.revalidate(c))
                        .filter_map(|c| c.speculative().map(|plan| (c.token(), plan.clone())))
                        .take(cap)
                        .collect();
                    // Order the wavefront by shared injection prefix so
                    // sibling scenarios hit the workers' snapshot caches
                    // (sorted after the budget cap so the *set* of
                    // speculated plans is unchanged).
                    jobs.sort_by_cached_key(|(_, plan)| prefix_dispatch_key(plan));
                    pool.execute(jobs)
                }
                _ => BTreeMap::new(),
            };

            // Phase 3: sequential commit in round order.
            let mut wavefront_found_bug = false;
            for candidate in wavefront {
                if state.out_of_budget(params.budget) {
                    return;
                }
                let decision = strategy.decide(candidate);
                state.labels += decision.labels;
                state.cost_seconds += decision.cost_seconds;
                let Some(plan) = decision.plan else { continue };
                // Label charges may themselves exhaust a cost budget;
                // never start a run the budget no longer covers.
                if state.out_of_budget(params.budget) {
                    return;
                }
                let result = take_or_run(&mut results, candidate.token(), plan, state);
                let is_unsafe = state.absorb(&result);
                wavefront_found_bug |= is_unsafe;
                sizer.observe_commit(is_unsafe);
                observer.on_event(&CampaignEvent::RunFinished {
                    simulations: state.simulations,
                    cost_seconds: state.cost_seconds,
                    plan: result.plan.clone(),
                    is_unsafe,
                });
                if is_unsafe {
                    let condition = state
                        .unsafe_conditions
                        .last()
                        .expect("absorb recorded the condition")
                        .clone();
                    observer.on_event(&CampaignEvent::ViolationFound { condition });
                }
                observer.on_event(&CampaignEvent::BudgetProgress {
                    simulations: state.simulations,
                    cost_seconds: state.cost_seconds,
                    consumed_fraction: params
                        .budget
                        .consumed_fraction(state.simulations, state.cost_seconds),
                });
                strategy.observe(&Observation {
                    candidate,
                    result: &result,
                    is_unsafe,
                });
            }
            sizer.observe_wavefront(wavefront_found_bug);
            start = end;
        }
    }
}
