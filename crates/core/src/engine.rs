//! The parallel campaign engine: executes a campaign's independent fault
//! plans on a scoped worker pool while producing a
//! [`crate::checker::CampaignResult`] **bit-identical** to the serial
//! campaign loop.
//!
//! # Why this is possible
//!
//! A test run is a pure function of its [`FaultPlan`]: the runner
//! provisions a fresh simulator + firmware + workload per run and seeds
//! every noise source from the experiment configuration alone, so two
//! executions of the same plan — on any thread, in any order — yield the
//! same [`RunResult`]. What is *not* order-independent is the campaign
//! bookkeeping around the runs: budget accounting, SABRE's pruning
//! feedback (`record_bug` / `record_ok`) and the discovery order of
//! unsafe conditions. The engine therefore splits each scheduling round
//! into three phases:
//!
//! 1. **Speculative wavefront selection.** Against a *clone* of the
//!    pruning state, the engine determines every plan the serial checker
//!    could possibly execute in this round (all candidate failure sets of
//!    the current SABRE anchor; a batch of BFI sites or random draws).
//!    Pruning only ever removes additional work as results arrive —
//!    `record_bug` adds bug signatures, it never un-prunes — so this
//!    speculative set is a **superset** of the serial checker's choices.
//! 2. **Parallel execution.** The wavefront's plans run concurrently on
//!    the worker pool, one fresh [`ExperimentRunner`] per worker.
//! 3. **Sequential commit.** Results are replayed in canonical plan order
//!    against the *real* queue, budget and pruning state, applying
//!    exactly the serial control flow. Speculative runs the serial path
//!    would have pruned (because an earlier plan in the same wavefront
//!    found a bug) or never reached (budget exhaustion) are discarded.
//!
//! The commit phase performs precisely the serial sequence of
//! `plan_for` / `record_bug` / `record_ok` / budget mutations, so the
//! pruning counters, cost accounting, unsafe-condition order and every
//! other observable of the campaign match the serial engine exactly —
//! the determinism suite in `tests/engine_determinism.rs` asserts
//! structural equality of the full [`crate::checker::CampaignResult`].

use crate::baselines::{BfiModel, DfsSiteIterator, RandomInjection};
use crate::checker::{Approach, CampaignState, Checker};
use crate::pruning::candidate_failure_sets;
use crate::runner::{ExperimentRunner, RunResult};
use crate::sabre::{SabreConfig, SabreQueue};
use avis_firmware::ModeCategory;
use avis_hinj::{FaultPlan, FaultSpec};
use avis_sim::SensorSuiteConfig;
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// The default worker count: the number of available CPU cores.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How many jobs a driver schedules per wavefront, as a multiple of the
/// worker count. Larger factors amortise channel traffic and keep workers
/// busy across the sequential commit, but every speculative run the
/// commit replay rejects (pruned by a bug found earlier in the same
/// wavefront, or past the budget) is wasted work — so wavefronts are kept
/// a small multiple of the pool size rather than, say, a whole anchor's
/// candidate list at once.
const BATCH_FACTOR: usize = 4;

/// Simulations left before the hard budget cap (`usize::MAX` for
/// cost-only budgets). Speculating past this is guaranteed waste.
fn remaining_simulations(budget: &crate::checker::Budget, state: &CampaignState) -> usize {
    if budget.max_simulations == usize::MAX {
        usize::MAX
    } else {
        budget.max_simulations.saturating_sub(state.simulations)
    }
}

/// Takes the speculative result for `slot`, or — when speculation was
/// capped and the serial control flow reached a plan that was never
/// dispatched — executes it inline. Runs are pure functions of their
/// plan, so the fallback preserves bit-identical results.
fn take_or_run(
    results: &mut BTreeMap<usize, RunResult>,
    slot: usize,
    plan: FaultPlan,
    state: &mut CampaignState,
) -> RunResult {
    match results.remove(&slot) {
        Some(result) => {
            debug_assert_eq!(result.plan, plan, "worker executed the committed plan");
            result
        }
        None => state.runner.run_with_plan(plan),
    }
}

/// A unit of speculative work: the wavefront-local slot the result must
/// be committed under, plus the plan to execute.
type Job = (usize, FaultPlan);

/// What a worker sends back: a completed run, or the panic message of a
/// run that blew up (so the campaign fails loudly instead of deadlocking
/// the wavefront collector).
type WorkerOutcome = Result<(usize, RunResult), String>;

/// Hands wavefronts of fault plans to the worker pool and collects the
/// results keyed by wavefront slot.
struct Wavefront {
    job_tx: Sender<Job>,
    result_rx: Receiver<WorkerOutcome>,
}

impl Wavefront {
    /// Executes one wavefront of plans, blocking until every result is in.
    ///
    /// # Panics
    ///
    /// Re-raises any panic that occurred on a worker thread — the same
    /// observable behaviour the serial engine has when a run panics.
    fn execute(&self, jobs: Vec<Job>) -> BTreeMap<usize, RunResult> {
        let expected = jobs.len();
        for job in jobs {
            self.job_tx
                .send(job)
                .expect("worker pool alive while jobs are pending");
        }
        let mut results = BTreeMap::new();
        while results.len() < expected {
            let outcome = self
                .result_rx
                .recv()
                .expect("worker pool alive while results are pending");
            match outcome {
                Ok((slot, result)) => {
                    results.insert(slot, result);
                }
                Err(panic_message) => {
                    panic!("campaign worker thread panicked: {panic_message}")
                }
            }
        }
        results
    }
}

/// Renders a `catch_unwind` payload for re-raising on the main thread.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the campaign body (everything after profiling/calibration) on a
/// scoped worker pool. Called by [`Checker::run`] when
/// `config.parallelism > 1`. Returns the pruning counters
/// `(symmetry_pruned, found_bug_pruned)`.
pub(crate) fn run_campaign_parallel(checker: &Checker, state: &mut CampaignState) -> (u64, u64) {
    let cfg = checker.config();
    let workers = cfg.parallelism.max(1);
    std::thread::scope(|scope| {
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel::<WorkerOutcome>();
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let result_tx = result_tx.clone();
            let experiment = cfg.experiment.clone();
            scope.spawn(move || {
                // One fresh runner per worker: runners are stateless across
                // runs apart from their run counter, which does not feed
                // into run behaviour.
                let mut runner = ExperimentRunner::new(experiment);
                loop {
                    // Hold the receiver lock only while dequeueing.
                    let job = job_rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    let Ok((slot, plan)) = job else { break };
                    // A panicking run must reach the collector as an error:
                    // swallowing it would leave the wavefront waiting for a
                    // result that never comes.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        runner.run_with_plan(plan)
                    }));
                    match outcome {
                        Ok(result) => {
                            if result_tx.send(Ok((slot, result))).is_err() {
                                break;
                            }
                        }
                        Err(payload) => {
                            let _ = result_tx.send(Err(panic_message(payload.as_ref())));
                            break;
                        }
                    }
                }
            });
        }
        drop(result_tx);
        let pool = Wavefront { job_tx, result_rx };

        match cfg.approach {
            Approach::Avis => run_sabre_parallel(checker, state, None, &pool),
            Approach::StratifiedBfi => run_sabre_parallel(
                checker,
                state,
                Some(BfiModel::with_default_training()),
                &pool,
            ),
            Approach::Bfi => {
                run_bfi_parallel(checker, state, BfiModel::with_default_training(), &pool);
                (0, 0)
            }
            Approach::Random => {
                run_random_parallel(checker, state, &pool);
                (0, 0)
            }
        }
        // `pool` (and with it `job_tx`) drops here, the workers see a
        // disconnected channel and exit, and the scope joins them.
    })
}

/// SABRE-driven exploration (`None` = Avis, `Some` = Stratified BFI): the
/// wavefront is every candidate failure set of the current anchor.
fn run_sabre_parallel(
    checker: &Checker,
    state: &mut CampaignState,
    model: Option<BfiModel>,
    pool: &Wavefront,
) -> (u64, u64) {
    let cfg = checker.config();
    let sensor_config = SensorSuiteConfig::iris();
    let candidates = candidate_failure_sets(&sensor_config);
    let sabre_config = SabreConfig {
        horizon: state.golden.duration.min(cfg.sabre.horizon),
        ..cfg.sabre
    };
    let mut queue = SabreQueue::new(&state.golden.transition_times(), sabre_config);

    let chunk_size = cfg.parallelism.max(1) * BATCH_FACTOR;

    'outer: while !queue.is_empty() && !state.budget_exhausted(&cfg.budget) {
        let Some(anchor) = queue.next_anchor() else {
            break;
        };
        let anchor_mode = state.golden.mode_before(anchor.timestamp);
        let anchor_category = anchor_mode
            .map(|m| m.category())
            .unwrap_or(ModeCategory::Manual);

        // The anchor's candidate sets are processed in chunks: each chunk
        // is speculated against the pruning state as of the previous
        // chunk's commit, which bounds the work wasted when a bug found
        // mid-wavefront prunes the sets after it.
        let mut chunk_start = 0;
        while chunk_start < candidates.len() {
            let chunk_end = (chunk_start + chunk_size).min(candidates.len());

            // Phase 1: speculative selection against a pruning-state
            // clone. Assumes no set in this chunk finds a bug, which can
            // only over-approve (found-bug pruning removes supersets),
            // never under-approve — see the module docs for the
            // containment argument. Speculation past the simulation
            // budget is capped; the commit's inline fallback covers the
            // rare case where pruning rebates reach past the cap.
            let mut speculative_pruning = queue.pruning().clone();
            let budget_cap = remaining_simulations(&cfg.budget, state);
            let mut jobs: Vec<Job> = Vec::new();
            for (slot, set) in candidates
                .iter()
                .enumerate()
                .take(chunk_end)
                .skip(chunk_start)
            {
                if jobs.len() >= budget_cap {
                    break;
                }
                if let Some(model) = &model {
                    if !model.predicts_unsafe_set(set, anchor_category) {
                        continue;
                    }
                }
                let plan = SabreQueue::assemble_plan(&anchor, set);
                if speculative_pruning.should_prune(&plan) {
                    continue;
                }
                speculative_pruning.record_explored(&plan);
                jobs.push((slot, plan));
            }

            // Phase 2: parallel execution.
            let mut results = pool.execute(jobs);

            // Phase 3: sequential commit — the exact serial control flow.
            for (slot, set) in candidates
                .iter()
                .enumerate()
                .take(chunk_end)
                .skip(chunk_start)
            {
                if state.budget_exhausted(&cfg.budget) {
                    break 'outer;
                }
                if let Some(model) = &model {
                    state.labels += 1;
                    state.cost_seconds += model.label_cost_seconds;
                    if !model.predicts_unsafe_set(set, anchor_category) {
                        continue;
                    }
                }
                let Some(plan) = queue.plan_for(&anchor, set) else {
                    continue;
                };
                let result = take_or_run(&mut results, slot, plan, state);
                if state.absorb(&result) {
                    queue.record_bug(&result.plan);
                } else {
                    queue.record_ok(&result.plan, &result.trace.transition_times());
                }
            }
            chunk_start = chunk_end;
        }
    }
    (
        queue.pruning().symmetry_pruned(),
        queue.pruning().found_bug_pruned(),
    )
}

/// Vanilla BFI: the deterministic depth-first site stream is consumed in
/// batches; the model filter decides speculatively which sites become
/// runs, and the commit replays the serial label/budget accounting.
fn run_bfi_parallel(
    checker: &Checker,
    state: &mut CampaignState,
    model: BfiModel,
    pool: &Wavefront,
) {
    let cfg = checker.config();
    let sensor_config = SensorSuiteConfig::iris();
    let mut sites = DfsSiteIterator::new(&sensor_config, state.golden.duration, cfg.experiment.dt);
    let batch_size = cfg.parallelism.max(1) * BATCH_FACTOR;

    loop {
        if state.budget_exhausted(&cfg.budget) {
            return;
        }
        let batch: Vec<_> = sites.by_ref().take(batch_size).collect();
        if batch.is_empty() {
            return;
        }

        // Speculative selection: the model filter is a pure function of
        // the site, so it makes identical decisions here and at commit.
        let budget_cap = remaining_simulations(&cfg.budget, state);
        let mut jobs: Vec<Job> = Vec::new();
        for (slot, &(instance, time)) in batch.iter().enumerate() {
            if jobs.len() >= budget_cap {
                break;
            }
            let category = state
                .golden
                .mode_before(time)
                .map(|m| m.category())
                .unwrap_or(ModeCategory::Manual);
            if !model.predicts_unsafe(instance.kind, category) {
                continue;
            }
            jobs.push((
                slot,
                FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]),
            ));
        }
        let mut results = pool.execute(jobs);

        // Commit: the serial per-site control flow.
        for (slot, &(instance, time)) in batch.iter().enumerate() {
            if state.budget_exhausted(&cfg.budget) {
                return;
            }
            state.labels += 1;
            state.cost_seconds += model.label_cost_seconds;
            let category = state
                .golden
                .mode_before(time)
                .map(|m| m.category())
                .unwrap_or(ModeCategory::Manual);
            if !model.predicts_unsafe(instance.kind, category) {
                continue;
            }
            if state.budget_exhausted(&cfg.budget) {
                return;
            }
            let plan = FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]);
            let result = take_or_run(&mut results, slot, plan, state);
            state.absorb(&result);
        }
    }
}

/// Uniformly random injection: the plan stream is independent of run
/// results, so whole batches execute in parallel and commit in draw
/// order. Drawing a few plans past the budget advances only the RNG,
/// which is not part of the campaign result.
fn run_random_parallel(checker: &Checker, state: &mut CampaignState, pool: &Wavefront) {
    let cfg = checker.config();
    let sensor_config = SensorSuiteConfig::iris();
    let mut random = RandomInjection::new(&sensor_config, state.golden.duration, cfg.seed);
    let batch_size = cfg.parallelism.max(1) * BATCH_FACTOR;

    while !state.budget_exhausted(&cfg.budget) {
        let batch = batch_size
            .min(remaining_simulations(&cfg.budget, state))
            .max(1);
        let jobs: Vec<Job> = (0..batch).map(|slot| (slot, random.next_plan())).collect();
        let mut results = pool.execute(jobs);
        for slot in 0..batch {
            if state.budget_exhausted(&cfg.budget) {
                return;
            }
            let result = results
                .remove(&slot)
                .expect("every random draw was executed");
            state.absorb(&result);
        }
    }
}
