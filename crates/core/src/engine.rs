//! The campaign engine: drives any [`Strategy`] through its
//! propose / decide / observe lifecycle, serially or on a scoped worker
//! pool, while producing a [`crate::checker::CampaignResult`]
//! **bit-identical** at every parallelism and streaming
//! [`CampaignEvent`]s to the observer in commit order.
//!
//! # Why parallelism cannot change the result
//!
//! A test run is a pure function of its [`FaultPlan`]: the runner
//! provisions a fresh simulator + firmware + workload per run and seeds
//! every noise source from the experiment configuration alone, so two
//! executions of the same plan — on any thread, in any order — yield the
//! same [`RunResult`]. What is *not* order-independent is the campaign
//! bookkeeping around the runs: budget accounting, pruning feedback and
//! the discovery order of unsafe conditions. The engine therefore splits
//! each strategy round into three phases:
//!
//! 1. **Proposal.** [`Strategy::propose`] emits the round's candidates.
//!    Rounds are the strategy's natural work units (a SABRE anchor's
//!    candidate sets, a fixed batch of BFI sites) and never depend on the
//!    worker count — see the determinism contract in [`crate::strategy`].
//! 2. **Speculative execution.** Candidates carrying a speculative plan
//!    are executed concurrently on the worker pool (skipped entirely in
//!    the serial case), in *wavefronts* of a small multiple of the pool
//!    size ([`BATCH_FACTOR`]) so that a bug committed mid-round cancels
//!    its now-pruned siblings ([`Strategy::revalidate`]) instead of
//!    wasting workers on them. Speculation past the remaining simulation
//!    budget is capped; wrong or missing speculation is repaired at
//!    commit by executing inline.
//! 3. **Sequential commit.** For every candidate, in round order, the
//!    engine applies the authoritative control flow: budget check,
//!    [`Strategy::decide`] (label charges, pruning), post-charge budget
//!    re-check, run execution (pool result or inline fallback),
//!    absorption into the campaign state, observer events and
//!    [`Strategy::observe`] feedback.
//!
//! The commit phase performs precisely the serial sequence of decisions
//! and mutations, so the pruning counters, cost accounting,
//! unsafe-condition order, observer event stream and every other
//! observable of the campaign match the serial engine exactly — the
//! determinism suite in `tests/engine_determinism.rs` asserts structural
//! equality of the full campaign result and of the event stream.

use crate::campaign::{CampaignEvent, CampaignObserver};
use crate::checker::{Budget, CampaignState};
use crate::contain;
use crate::runner::{ExperimentConfig, ExperimentRunner, RunResult};
use crate::snapshot::{injection_prefix, prefix_cache_key, CheckpointStats, SharedSnapshotTier};
use crate::strategy::{Observation, Strategy};
use avis_hinj::FaultPlan;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex};

/// The default worker count: the number of available CPU cores.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How the engine places a wavefront's speculative jobs onto workers.
/// Placement only decides which worker *pre-executes* a run — results are
/// committed strictly in round order — so the mode can never change a
/// campaign observable, only cache locality and wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Jobs are dealt one at a time across the workers in wavefront
    /// order, with idle workers stealing — placement ignores which worker
    /// already holds a job's ancestor snapshots (the pre-sharding
    /// behaviour, kept as the locality baseline).
    RoundRobin,
    /// Jobs are grouped into *prefix families* — plans that share an
    /// injection prefix and fork near the same depth — and each family is
    /// pinned to one worker across the whole campaign, so consecutive
    /// siblings fork from that worker's hottest local checkpoint chain
    /// instead of re-pulling ancestors through the shared tier. Idle
    /// workers steal whole families (never single jobs), preserving
    /// within-family locality.
    #[default]
    PrefixSharded,
}

/// Collects each engine worker's [`CheckpointStats`] when a campaign
/// finishes, so callers (benches, tuning tools) can observe cache-tier
/// behaviour — local-cache vs shared-tier fork shares, fork depths — that
/// the deterministic [`crate::checker::CampaignResult`] deliberately
/// excludes (the numbers vary with scheduling; results never do).
#[derive(Debug, Default)]
pub struct WorkerStatsCollector {
    stats: Mutex<Vec<CheckpointStats>>,
}

impl WorkerStatsCollector {
    /// An empty collector.
    pub fn new() -> Self {
        WorkerStatsCollector::default()
    }

    /// The per-runner statistics pushed so far (engine workers at pool
    /// shutdown, plus the campaign's inline runner at campaign end).
    pub fn collected(&self) -> Vec<CheckpointStats> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Of all forks served across the collected runners, the share served
    /// by a runner's *local* cache rather than the shared tier — the
    /// locality figure prefix-sharded dispatch raises. `None` when no
    /// forks were served.
    pub fn local_hit_share(&self) -> Option<f64> {
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let forked: u64 = stats.iter().map(|s| s.forked_runs).sum();
        let shared: u64 = stats.iter().map(|s| s.shared_hits).sum();
        (forked > 0).then(|| (forked - shared) as f64 / forked as f64)
    }

    /// Mean fork depth (simulated seconds skipped per forked run) across
    /// the collected runners. `None` when no forks were served.
    pub fn mean_fork_depth(&self) -> Option<f64> {
        let stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let forked: u64 = stats.iter().map(|s| s.forked_runs).sum();
        let skipped: f64 = stats.iter().map(|s| s.simulated_seconds_skipped).sum();
        (forked > 0).then(|| skipped / forked as f64)
    }

    pub(crate) fn push(&self, stats: CheckpointStats) {
        self.stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(stats);
    }
}

/// The engine-facing slice of a campaign configuration.
pub(crate) struct EngineParams<'a> {
    /// The experiment each worker provisions its runner from.
    pub experiment: &'a ExperimentConfig,
    /// The shared test budget.
    pub budget: &'a Budget,
    /// Worker count; `1` executes every run inline on the calling thread.
    pub parallelism: usize,
    /// The read-mostly shared snapshot tier, attached to every worker's
    /// runner and republished by the engine between speculative
    /// wavefronts so one worker's cold run warms every worker's cache.
    pub shared: Option<Arc<SharedSnapshotTier>>,
    /// Speculative-job placement policy (see [`DispatchMode`]).
    pub dispatch: DispatchMode,
    /// Sink for per-worker checkpoint statistics, filled at pool
    /// shutdown.
    pub worker_stats: Option<Arc<WorkerStatsCollector>>,
    /// The persistent snapshot store, if the campaign configured one:
    /// the engine flushes newly published chains write-behind at each
    /// commit boundary (right after the tier republish), so a crash
    /// mid-campaign still leaves the completed wavefronts' chains on
    /// disk for the next session.
    pub store: Option<Arc<parking_lot::Mutex<crate::store::SnapshotStore>>>,
}

/// Simulations left before the hard budget cap (`usize::MAX` for
/// cost-only budgets). Speculating past this is guaranteed waste.
fn remaining_simulations(budget: &Budget, state: &CampaignState) -> usize {
    if budget.max_simulations == usize::MAX {
        usize::MAX
    } else {
        budget.max_simulations.saturating_sub(state.simulations)
    }
}

/// Takes the speculative result for `token`, or — when speculation was
/// capped, filtered or wrong — executes the plan inline. Runs are pure
/// functions of their plan, so the fallback preserves bit-identical
/// results; a stale speculative result whose plan diverged from the
/// committed plan is discarded rather than absorbed.
fn take_or_run(
    results: &mut BTreeMap<u64, RunResult>,
    token: u64,
    plan: FaultPlan,
    state: &mut CampaignState,
) -> RunResult {
    match results.remove(&token) {
        Some(result) if result.plan == plan => result,
        // Contained: a panicking run comes back as a first-class
        // `RunVerdict::Crashed` result instead of unwinding through the
        // commit loop — the inline path is the repair of last resort, so
        // it must be exactly as fault-tolerant as the workers.
        _ => state.runner.run_contained(plan),
    }
}

/// A unit of speculative work: the candidate token the result must be
/// committed under, plus the plan to execute.
type Job = (u64, FaultPlan);

/// Dispatch-order key grouping plans that share an injection prefix:
/// earliest failure time first, then failure count, then the canonical
/// plan key. Sorting a family's speculative jobs this way hands
/// prefix-sharing siblings to a worker back-to-back, so its per-runner
/// snapshot cache ([`crate::snapshot`]) forks consecutive jobs off its
/// hottest checkpoint chain instead of interleaving unrelated prefixes.
/// Results are keyed by candidate token and committed strictly in round
/// order, so dispatch order can never change a campaign observable.
fn prefix_dispatch_key(plan: &FaultPlan) -> (i64, usize, String) {
    let earliest = plan
        .specs()
        .map(|s| s.time)
        .chain(plan.link_plan().fault_times())
        .map(|t| (t * 1000.0).round() as i64)
        .min()
        .unwrap_or(i64::MAX);
    (earliest, plan.len(), plan.canonical_key())
}

/// The *prefix family* of a plan: the injection prefix shared with its
/// siblings (every failure except the deepest one). Two plans of one
/// family fork from the same chain, so pinning a family to one worker
/// turns that worker's local cache into the family's private checkpoint
/// tree — under memory pressure, workers cycling through each other's
/// families evict each other's chains instead.
///
/// Single-failure plans all share the *empty* parent prefix; one family
/// would starve the pool, so the empty prefix is split by the checkpoint
/// bucket the failure falls in (plans forking at nearby depths reuse the
/// same stretch of the fault-free chain). The bucket width is the
/// checkpoint interval — the resolution at which forks actually differ.
fn family_key(plan: &FaultPlan, bucket_seconds: f64) -> String {
    let Some(deepest) = plan
        .specs()
        .map(|s| s.time)
        .chain(plan.link_plan().fault_times())
        .fold(None, |acc: Option<f64>, t| {
            Some(acc.map_or(t, |a| a.max(t)))
        })
    else {
        return String::new();
    };
    let parent = injection_prefix(plan, deepest);
    if parent.is_empty() {
        let bucket = (deepest / bucket_seconds.max(1e-3)).floor() as i64;
        format!("#{bucket}")
    } else {
        prefix_cache_key(&parent)
    }
}

/// What a worker sends back: a completed run (with the worker runner's
/// checkpoint-breaker flag riding along, so the engine can announce
/// degraded mode), or the rendered panic of a worker that died *outside*
/// the per-run containment — a harness fault, not a scenario crash; the
/// collector then stops waiting and the commit's inline fallback covers
/// the lost jobs instead of deadlocking the wavefront.
type WorkerOutcome = Result<(u64, RunResult, bool), String>;

/// The worker-visible placement state: one family-batch deque per
/// worker, plus the sticky family→worker map and per-worker load
/// counters the placement policy balances with.
#[derive(Debug, Default)]
struct ShardState {
    shards: Vec<VecDeque<Vec<Job>>>,
    /// Sticky assignment: a family keeps hitting the same worker across
    /// wavefronts (and rounds), which is what builds the worker's local
    /// chain depth for that family.
    family_worker: BTreeMap<String, usize>,
    /// Total jobs ever placed per worker — the balance criterion for
    /// first-seen families.
    placed: Vec<u64>,
    shutdown: bool,
}

/// The sharded job queue shared by the engine and its workers. Workers
/// drain their own shard front-to-back and steal whole *families* from
/// the richest other shard when idle, so stolen work keeps its internal
/// prefix locality.
#[derive(Debug)]
struct Dispatcher {
    state: Mutex<ShardState>,
    ready: Condvar,
}

impl Dispatcher {
    fn new(workers: usize) -> Self {
        Dispatcher {
            state: Mutex::new(ShardState {
                shards: (0..workers).map(|_| VecDeque::new()).collect(),
                family_worker: BTreeMap::new(),
                placed: vec![0; workers],
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// The next batch for worker `me`: own shard first, then a steal
    /// from the back (coldest family) of the fullest other shard, else
    /// block until work arrives or the pool shuts down.
    fn next_batch(&self, me: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(batch) = state.shards[me].pop_front() {
                return Some(batch);
            }
            let richest = (0..state.shards.len())
                .filter(|&j| j != me && !state.shards[j].is_empty())
                .max_by_key(|&j| state.shards[j].len());
            if let Some(victim) = richest {
                return state.shards[victim].pop_back();
            }
            if state.shutdown {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Wakes every worker and lets them drain out. Idempotent; also runs
    /// on unwind (see the guard in [`run_campaign`]) so a panicking
    /// wavefront can never leave workers parked on the condvar.
    fn shutdown(&self) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.ready.notify_all();
    }
}

/// Unparks the worker pool on drop, so a panic unwinding through
/// [`run_rounds`] still releases the scope's joins.
struct ShutdownGuard(Arc<Dispatcher>);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Hands wavefronts of fault plans to the worker pool and collects the
/// results keyed by candidate token.
struct Wavefront {
    dispatcher: Arc<Dispatcher>,
    result_rx: Receiver<WorkerOutcome>,
    mode: DispatchMode,
    /// Family bucket width (s): the experiment's checkpoint interval.
    family_bucket: f64,
}

impl Wavefront {
    /// Places one wavefront of plans onto the worker shards and blocks
    /// until every result is in, returning the results plus whether any
    /// worker's checkpoint breaker has tripped (degraded mode).
    ///
    /// Scenario crashes never surface here — they come back as ordinary
    /// results carrying [`crate::runner::RunVerdict::Crashed`]. A worker
    /// that dies *outside* the per-run containment (a harness fault)
    /// sends one final `Err`; the collector then stops waiting — its
    /// in-flight batch is unrecoverable, and results from still-healthy
    /// workers keep arriving into later collections, where stale tokens
    /// are ignored by the commit's plan-equality check. Every job whose
    /// speculative result is missing is re-executed inline at commit
    /// (see [`take_or_run`]), so no proposed job is ever leaked.
    fn execute(&self, jobs: Vec<Job>) -> (BTreeMap<u64, RunResult>, bool) {
        let expected = jobs.len();
        {
            let mut state = self
                .dispatcher
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let workers = state.shards.len();
            match self.mode {
                DispatchMode::RoundRobin => {
                    // The pre-sharding baseline kept: the wavefront is
                    // sorted by shared injection prefix (as the old
                    // shared-queue engine sorted it) before the jobs are
                    // dealt out, so prefix-sharing siblings still land
                    // temporally close — only the family pinning is off.
                    let mut jobs = jobs;
                    jobs.sort_by_cached_key(|(_, plan)| prefix_dispatch_key(plan));
                    for (index, job) in jobs.into_iter().enumerate() {
                        state.shards[index % workers].push_back(vec![job]);
                    }
                }
                DispatchMode::PrefixSharded => {
                    // Group into prefix families; iteration over the
                    // BTreeMap keeps placement deterministic for a given
                    // wavefront composition.
                    let mut families: BTreeMap<String, Vec<Job>> = BTreeMap::new();
                    for job in jobs {
                        families
                            .entry(family_key(&job.1, self.family_bucket))
                            .or_default()
                            .push(job);
                    }
                    for (family, mut batch) in families {
                        batch.sort_by_cached_key(|(_, plan)| prefix_dispatch_key(plan));
                        let worker = match state.family_worker.get(&family) {
                            Some(&worker) => worker,
                            None => {
                                // First sighting: pin the family to the
                                // least-loaded worker (ties to the lowest
                                // index).
                                let worker = (0..workers)
                                    .min_by_key(|&w| (state.placed[w], w))
                                    // avis-lint: allow(p1, reason = "pool construction clamps workers >= 1, so the range is never empty")
                                    .expect("pool has workers");
                                state.family_worker.insert(family, worker);
                                worker
                            }
                        };
                        state.placed[worker] += batch.len() as u64;
                        state.shards[worker].push_back(batch);
                    }
                }
            }
        }
        self.dispatcher.ready.notify_all();
        let mut results = BTreeMap::new();
        let mut degraded = false;
        while results.len() < expected {
            // A closed channel means every worker exited — nothing more
            // can arrive; stop collecting and let the commit repair the
            // missing results inline.
            let Ok(outcome) = self.result_rx.recv() else {
                break;
            };
            match outcome {
                Ok((token, result, worker_degraded)) => {
                    degraded |= worker_degraded;
                    results.insert(token, result);
                }
                Err(harness_panic) => {
                    // A worker died outside the per-run containment. Its
                    // in-flight batch is gone and its queued families
                    // will be stolen by surviving workers — but waiting
                    // for the lost batch would hang forever, so stop
                    // here and let the inline fallback account for every
                    // undelivered job. The message carries the scenario
                    // fingerprint (see `run_campaign`), so the surviving
                    // log identifies which scenario took the worker down.
                    eprintln!("avis: campaign worker died: {harness_panic}");
                    break;
                }
            }
        }
        (results, degraded)
    }
}

/// Runs the campaign body (everything after profiling/calibration):
/// drives `strategy` round by round until the budget or its search space
/// is exhausted. Serial when `params.parallelism <= 1`, otherwise on a
/// scoped worker pool.
pub(crate) fn run_campaign(
    params: EngineParams<'_>,
    strategy: &mut dyn Strategy,
    state: &mut CampaignState,
    observer: &mut dyn CampaignObserver,
) {
    let workers = params.parallelism.max(1);
    if workers == 1 {
        run_rounds(&params, strategy, state, observer, None);
        return;
    }
    std::thread::scope(|scope| {
        let dispatcher = Arc::new(Dispatcher::new(workers));
        let (result_tx, result_rx) = channel::<WorkerOutcome>();
        for me in 0..workers {
            let dispatcher = Arc::clone(&dispatcher);
            let result_tx = result_tx.clone();
            let experiment = params.experiment.clone();
            let shared = params.shared.clone();
            let collector = params.worker_stats.clone();
            let dispatch = params.dispatch;
            scope.spawn(move || {
                // One fresh runner per worker, kept alive across jobs on
                // purpose: each runner owns a snapshot cache
                // (`crate::snapshot`) that its later jobs fork from, and
                // shares the campaign-wide tier with its siblings.
                // Cache state affects only run *timing* — a forked run is
                // bit-identical to a cold one — so results stay pure
                // functions of their plan. Prefix-sharded dispatch keeps
                // handing one family to the same worker precisely so this
                // cache accumulates that family's chain.
                let mut runner = ExperimentRunner::new(experiment);
                if let Some(tier) = shared {
                    runner.set_shared_tier(tier);
                }
                let seed = runner.config().seed;
                // The plan currently executing, tracked so a panic that
                // escapes the per-run containment still renders with the
                // scenario fingerprint (seed + canonical plan key).
                let in_flight = std::cell::RefCell::new(String::new());
                // Scenario crashes are contained *inside* `run_contained`
                // and come back as `RunVerdict::Crashed` results. This
                // outer boundary is belt-and-braces for harness faults
                // (dispatcher, channel, stats code): the worker sends one
                // final `Err` instead of silently dying with the result
                // channel open, which would hang the wavefront collector.
                let body = contain::catch(|| {
                    // Batched lockstep: under prefix-sharded dispatch a
                    // worker's batch is one *family* of prefix-sharing
                    // siblings sorted by dispatch key, so consecutive
                    // chunks are exactly the plans whose shared prefix a
                    // `LaneBatch` advances once instead of N times (see
                    // `crate::batch`). Round-robin deals single-job
                    // batches with no prefix affinity, so batching is
                    // only engaged where the dispatcher actually forms
                    // families. Bit-identical either way — lockstep,
                    // like checkpointing, is purely a speed knob.
                    let lanes = runner.config().lockstep_lanes.max(1);
                    let chunk_len = if dispatch == DispatchMode::PrefixSharded {
                        lanes
                    } else {
                        1
                    };
                    'drain: while let Some(batch) = dispatcher.next_batch(me) {
                        for chunk in batch.chunks(chunk_len) {
                            if chunk.len() >= 2 {
                                let (tokens, plans): (Vec<u64>, Vec<FaultPlan>) =
                                    chunk.iter().cloned().unzip();
                                *in_flight.borrow_mut() = plans
                                    .iter()
                                    .map(|p| p.canonical_key())
                                    .collect::<Vec<_>>()
                                    .join(" | ");
                                let results = runner.run_batch_contained(plans);
                                let degraded = runner.checkpointing_degraded();
                                for (token, result) in tokens.into_iter().zip(results) {
                                    if result_tx.send(Ok((token, result, degraded))).is_err() {
                                        break 'drain;
                                    }
                                }
                            } else {
                                for (token, plan) in chunk.iter().cloned() {
                                    *in_flight.borrow_mut() = plan.canonical_key();
                                    let result = runner.run_contained(plan);
                                    let degraded = runner.checkpointing_degraded();
                                    if result_tx.send(Ok((token, result, degraded))).is_err() {
                                        break 'drain;
                                    }
                                }
                            }
                        }
                    }
                });
                if let Err(payload) = body {
                    let context = format!(
                        "worker {me}, experiment seed {seed}, plan {}",
                        in_flight.borrow()
                    );
                    let _ = result_tx.send(Err(contain::render_panic(payload.as_ref(), &context)));
                }
                if let Some(collector) = collector {
                    collector.push(runner.checkpoint_stats());
                }
            });
        }
        drop(result_tx);
        // Unparks the workers even when a wavefront panics mid-collect,
        // so the scope's implicit joins can never deadlock.
        let _guard = ShutdownGuard(Arc::clone(&dispatcher));
        let pool = Wavefront {
            dispatcher: Arc::clone(&dispatcher),
            result_rx,
            mode: params.dispatch,
            family_bucket: if params.experiment.checkpoints.enabled {
                params.experiment.checkpoints.interval
            } else {
                5.0
            },
        };
        run_rounds(&params, strategy, state, observer, Some(&pool));
        // The guard (and the normal return path) wake the workers; they
        // drain any leftover speculative batches and exit, and the scope
        // joins them.
    })
}

/// How many speculative jobs the engine dispatches per wavefront, as a
/// multiple of the worker count. Larger factors amortise channel traffic
/// and keep workers busy across the sequential commit, but every
/// speculative run the commit rejects (pruned by a bug found earlier in
/// the same round, or past the budget) is wasted work — so wavefronts
/// are kept a small multiple of the pool size rather than, say, a whole
/// SABRE anchor's candidate list at once. Between wavefronts the engine
/// re-asks the strategy ([`Strategy::revalidate`]) whether each hint is
/// still worth running, so a bug committed in one wavefront cancels its
/// now-pruned siblings in the next.
const BATCH_FACTOR: usize = 4;

/// Pruning-aware wavefront sizing. Speculation only pays off when the
/// speculated runs actually commit; every unsafe commit triggers
/// found-bug pruning that invalidates speculated siblings, turning them
/// into pure waste (painfully visible on one core, where wasted runs
/// steal cycles from useful ones). The sizer tracks an exponentially
/// weighted unsafe-commit rate and
///
/// * **withdraws speculation entirely** while the rate is high — the
///   commit then executes runs inline, which *is* the serial engine, so
///   a bug-dense campaign degrades to serial cost instead of paying for
///   doomed wavefronts;
/// * **shrinks the wavefront** (quartering, regrowing by doubling)
///   around isolated bug findings, so a mixed regime speculates
///   shallowly instead of `BATCH_FACTOR × workers` deep.
///
/// The rate decays with every clean commit, so the engine re-enters the
/// speculative regime a handful of clean commits after a bug-dense
/// stretch ends. Sizing and gating only decide which runs are
/// *pre-executed*, never which runs commit, so they cannot change a
/// campaign observable.
#[derive(Debug, Clone, Copy)]
struct WavefrontSizer {
    max: usize,
    size: usize,
    /// Exponentially weighted rate of unsafe commits (decay 0.9).
    bug_rate: f64,
}

/// Unsafe-commit rate above which speculation is withdrawn: at one bug
/// per four commits, a full wavefront loses more to pruned siblings
/// than it gains from overlap.
const SPECULATION_BUG_RATE_CEILING: f64 = 0.25;

/// Per-candidate admission ceiling: a speculative job whose
/// [`Strategy::prune_probability`] estimate reaches this is not
/// dispatched at all — the strategy's own pruning state considers it
/// likely doomed (a sibling bug at the same injection site tends to
/// prune it before commit), so pre-executing it is expected waste. The
/// commit's inline fallback covers any candidate the estimate wrongly
/// withholds, so admission can never change a campaign observable.
const SPECULATION_ADMISSION_CEILING: f64 = 0.75;

impl WavefrontSizer {
    fn new(workers: usize) -> Self {
        let max = workers.max(1) * BATCH_FACTOR;
        WavefrontSizer {
            max,
            size: max,
            bug_rate: 0.0,
        }
    }

    fn size(&self) -> usize {
        self.size
    }

    /// Whether the next wavefront is worth dispatching to the pool at
    /// all.
    fn speculate(&self) -> bool {
        self.bug_rate < SPECULATION_BUG_RATE_CEILING
    }

    /// Feeds one committed run's verdict into the rate estimate.
    fn observe_commit(&mut self, is_unsafe: bool) {
        self.bug_rate = 0.9 * self.bug_rate + if is_unsafe { 0.1 } else { 0.0 };
    }

    fn observe_wavefront(&mut self, found_bug: bool) {
        self.size = if found_bug {
            (self.size / 4).max(1)
        } else {
            (self.size * 2).min(self.max)
        };
    }
}

/// The round loop shared by the serial and parallel paths. The only
/// difference between them is where speculative plans execute; the
/// commit-order control flow — and with it every campaign observable —
/// is byte-for-byte the same, because wavefront boundaries only decide
/// which runs are *pre-executed*, never which runs commit.
fn run_rounds(
    params: &EngineParams<'_>,
    strategy: &mut dyn Strategy,
    state: &mut CampaignState,
    observer: &mut dyn CampaignObserver,
    pool: Option<&Wavefront>,
) {
    let mut sizer = WavefrontSizer::new(params.parallelism.max(1));
    // Serial lockstep: with no pool, prefix-sharded dispatch and more
    // than one configured lane, the inline runner pre-executes each
    // wavefront's admitted plans in lockstep batches — the serial
    // engine's version of speculative execution, identical in admission
    // and repair semantics to the pool path, and bit-identical in every
    // campaign observable (batched results equal scalar results, and a
    // stale or missing one is re-run inline at commit).
    let serial_lanes = params.experiment.lockstep_lanes.max(1);
    let serial_batching =
        pool.is_none() && serial_lanes > 1 && params.dispatch == DispatchMode::PrefixSharded;
    let family_bucket = if params.experiment.checkpoints.enabled {
        params.experiment.checkpoints.interval
    } else {
        5.0
    };
    // Degraded mode is announced at most once per campaign: the first
    // time any runner's checkpoint breaker trips (worker or inline).
    let mut degraded_announced = false;
    loop {
        if state.out_of_budget(params.budget) {
            break;
        }
        let round = strategy.propose();
        if round.is_empty() {
            break;
        }

        let mut start = 0;
        while start < round.len() {
            let wavefront_size = match pool {
                Some(_) => sizer.size(),
                // Serial lockstep: bounded wavefronts, so a bug found at
                // commit cancels the speculative batches of the *next*
                // wavefront instead of the whole round's.
                None if serial_batching => serial_lanes * BATCH_FACTOR,
                // Serial scalar: no speculation, one "wavefront" per
                // round.
                None => usize::MAX,
            };
            let end = round.len().min(start.saturating_add(wavefront_size));
            let wavefront = &round[start..end];

            // Phase 2: speculative execution of the wavefront's hinted
            // plans — skipping hints the strategy has since withdrawn
            // (a bug committed in an earlier wavefront pruned them) and
            // capping at the remaining simulation budget (running past
            // it is guaranteed waste). The commit's inline fallback
            // covers any plan these filters wrongly skip. In a
            // bug-dense stretch the sizer withdraws speculation
            // entirely (`speculate()` false) and the commit runs
            // inline, exactly like the serial engine.
            let (mut results, workers_degraded): (BTreeMap<u64, RunResult>, bool) = match pool {
                Some(pool) if sizer.speculate() => {
                    // Republish the shared snapshot tier before
                    // dispatching: snapshots recorded since the last
                    // wavefront (on any worker, or inline) become
                    // visible to every worker's lock-free lookups.
                    // Inline wavefronts skip this — republishing is an
                    // O(published-map) rebuild, and the inline runner's
                    // own cache already holds what it recorded.
                    if let Some(tier) = &params.shared {
                        tier.republish();
                        // Commit-boundary write-behind: persist chains
                        // published this wavefront. Incremental (already
                        // persisted cuts are skipped) and purely
                        // observational — a flush failure degrades the
                        // next session's warm start, never this
                        // campaign's results.
                        if let Some(store) = &params.store {
                            store.lock().flush(tier, params.experiment);
                        }
                    }
                    let cap = remaining_simulations(params.budget, state);
                    // Admission: drop hints the strategy has withdrawn
                    // (`revalidate`) and hints its pruning state rates as
                    // probably doomed (`prune_probability`) — skipping a
                    // doomed job entirely beats merely shrinking the
                    // wavefront around it.
                    let jobs: Vec<Job> = wavefront
                        .iter()
                        .filter(|c| strategy.revalidate(c))
                        .filter(|c| strategy.prune_probability(c) < SPECULATION_ADMISSION_CEILING)
                        .filter_map(|c| c.speculative().map(|plan| (c.token(), plan.clone())))
                        .take(cap)
                        .collect();
                    // The dispatcher groups the jobs into prefix families
                    // (or deals them round-robin) — either way the *set*
                    // of speculated plans is fixed here, after the budget
                    // cap.
                    pool.execute(jobs)
                }
                None if serial_batching && sizer.speculate() => {
                    // Same admission filters as the pool path: withdrawn
                    // or probably-doomed hints are skipped, speculation
                    // past the remaining budget is capped.
                    let cap = remaining_simulations(params.budget, state);
                    let jobs: Vec<Job> = wavefront
                        .iter()
                        .filter(|c| strategy.revalidate(c))
                        .filter(|c| strategy.prune_probability(c) < SPECULATION_ADMISSION_CEILING)
                        .filter_map(|c| c.speculative().map(|plan| (c.token(), plan.clone())))
                        .take(cap)
                        .collect();
                    // Group into prefix families and chunk each into
                    // lockstep batches, exactly how the sharded
                    // dispatcher would lay the jobs onto a worker.
                    let mut families: BTreeMap<String, Vec<Job>> = BTreeMap::new();
                    for job in jobs {
                        families
                            .entry(family_key(&job.1, family_bucket))
                            .or_default()
                            .push(job);
                    }
                    let mut results = BTreeMap::new();
                    for (_, mut batch) in families {
                        batch.sort_by_cached_key(|(_, plan)| prefix_dispatch_key(plan));
                        for chunk in batch.chunks(serial_lanes) {
                            // Singletons gain nothing from lockstep;
                            // the commit runs them inline as the serial
                            // engine always has.
                            if chunk.len() < 2 {
                                continue;
                            }
                            let (tokens, plans): (Vec<u64>, Vec<FaultPlan>) =
                                chunk.iter().cloned().unzip();
                            let chunk_results = state.runner.run_batch_contained(plans);
                            for (token, result) in tokens.into_iter().zip(chunk_results) {
                                results.insert(token, result);
                            }
                        }
                    }
                    (results, false)
                }
                _ => (BTreeMap::new(), false),
            };
            if (workers_degraded || state.runner.checkpointing_degraded()) && !degraded_announced {
                degraded_announced = true;
                observer.on_event(&CampaignEvent::DegradedMode {
                    reason: "repeated snapshot checksum failures tripped the checkpoint \
                             breaker; checkpointing is disabled and remaining runs \
                             cold-start"
                        .to_string(),
                });
            }

            // Phase 3: sequential commit in round order.
            let mut wavefront_found_bug = false;
            for candidate in wavefront {
                if state.out_of_budget(params.budget) {
                    return;
                }
                let decision = strategy.decide(candidate);
                state.labels += decision.labels;
                state.cost_seconds += decision.cost_seconds;
                let Some(plan) = decision.plan else { continue };
                // Label charges may themselves exhaust a cost budget;
                // never start a run the budget no longer covers.
                if state.out_of_budget(params.budget) {
                    return;
                }
                let result = take_or_run(&mut results, candidate.token(), plan, state);
                let is_unsafe = state.absorb(&result);
                wavefront_found_bug |= is_unsafe;
                sizer.observe_commit(is_unsafe);
                observer.on_event(&CampaignEvent::RunFinished {
                    simulations: state.simulations,
                    cost_seconds: state.cost_seconds,
                    plan: result.plan.clone(),
                    is_unsafe,
                });
                if is_unsafe {
                    let condition = state
                        .unsafe_conditions
                        .last()
                        // avis-lint: allow(p1, reason = "absorb just returned is_unsafe = true, which always pushes a condition; losing the event would silently drop a found bug")
                        .expect("absorb recorded the condition")
                        .clone();
                    observer.on_event(&CampaignEvent::ViolationFound { condition });
                }
                observer.on_event(&CampaignEvent::BudgetProgress {
                    simulations: state.simulations,
                    cost_seconds: state.cost_seconds,
                    consumed_fraction: params
                        .budget
                        .consumed_fraction(state.simulations, state.cost_seconds),
                });
                strategy.observe(&Observation {
                    candidate,
                    result: &result,
                    is_unsafe,
                });
            }
            // Re-check after the commits: the inline runner may have
            // tripped its breaker while repairing this very wavefront
            // (relevant on the serial path, where this is the only
            // runner there is).
            if state.runner.checkpointing_degraded() && !degraded_announced {
                degraded_announced = true;
                observer.on_event(&CampaignEvent::DegradedMode {
                    reason: "repeated snapshot checksum failures tripped the checkpoint \
                             breaker; checkpointing is disabled and remaining runs \
                             cold-start"
                        .to_string(),
                });
            }
            sizer.observe_wavefront(wavefront_found_bug);
            start = end;
        }
    }
}
