//! A minimal, dependency-free JSON value with a parser and pretty
//! printer.
//!
//! The build environment has no crates.io access, so `serde_json` is not
//! available; the artefacts this workspace emits (bug reports, bench
//! result files) go through this module instead. The subset implemented
//! is complete standard JSON minus `\u` surrogate-pair edge cases beyond
//! the Basic Multilingual Plane, which none of the artefacts use.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// An error produced while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth accepted by the parser — the recursion
/// descends one frame per level, so a bound keeps pathological inputs
/// (`"[".repeat(100_000)`) from overflowing the stack instead of
/// returning an error. 128 matches `serde_json`'s default.
const MAX_DEPTH: u32 = 128;

impl Json {
    /// Parses a JSON document (nesting depth capped at 128 levels).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Serialises without any whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 1e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no infinities; emit null like serde_json's lossy mode.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let value = match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        };
        self.depth -= 1;
        value
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| JsonError {
                offset: start,
                message: "invalid number".to_string(),
            })
    }
}

/// Convenience constructor for an object.
pub fn object(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = object(vec![
            ("name", Json::String("avis \"repro\"\n".to_string())),
            ("count", Json::Number(3.0)),
            ("ratio", Json::Number(-0.125)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Array(vec![Json::Number(1.0), Json::String("two".to_string())]),
            ),
            ("empty_list", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ]);
        for text in [doc.to_pretty(), doc.to_compact()] {
            let parsed = Json::parse(&text).expect("parse back");
            assert_eq!(parsed, doc, "text was: {text}");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": "x", "c": [true], "d": 2.5}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(Json::as_array).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(
            doc.get("c").unwrap().as_array().unwrap()[0].as_bool(),
            Some(true)
        );
        assert_eq!(doc.get("d").and_then(Json::as_f64), Some(2.5));
        assert_eq!(doc.get("d").and_then(Json::as_u64), None);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).expect_err("must reject");
        assert!(err.message.contains("nesting"), "{err}");
        // 100 levels is fine.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{not json",
            "",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1] trailing",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let doc = Json::parse(r#""aA\n\t\\ \" ü""#).unwrap();
        assert_eq!(doc.as_str(), Some("aA\n\t\\ \" ü"));
    }

    #[test]
    fn numbers_with_exponents() {
        let doc = Json::parse("[1e3, -2.5E-2, 0.0]").unwrap();
        let items = doc.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1000.0));
        assert_eq!(items[1].as_f64(), Some(-0.025));
        assert_eq!(items[2].as_f64(), Some(0.0));
    }
}
