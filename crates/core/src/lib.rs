//! # avis
//!
//! A from-scratch Rust reproduction of **Avis: In-Situ Model Checking for
//! Unmanned Aerial Vehicles** (DSN 2021).
//!
//! Avis systematically injects *clean sensor failures* into a UAV control
//! firmware running in simulation and searches for failures that drive the
//! vehicle into unsafe conditions (crashes, fly-aways, stalled missions).
//! Its key idea is to anchor fault injection at the firmware's
//! *operating-mode transitions* — the points where mode-specific failure
//! handling is most likely to be wrong — using the SABRE stratified
//! breadth-first search, while pruning redundant scenarios via sensor-
//! instance symmetry and found-bug pruning.
//!
//! This crate is the checker itself. The substrates it drives live in the
//! sibling crates: `avis-sim` (physics + sensors), `avis-firmware` (the
//! ArduPilot/PX4-like flight stack with the paper's 15 injectable bugs),
//! `avis-hinj` (the fault-injection interface), `avis-mavlite` (the
//! protocol layer) and `avis-workload` (the workload framework).
//!
//! ## Quick start
//!
//! ```no_run
//! use avis::checker::{Approach, Budget, Checker, CheckerConfig};
//! use avis::runner::ExperimentConfig;
//! use avis_firmware::{BugSet, FirmwareProfile};
//! use avis_workload::auto_box_mission;
//!
//! // Check the "current code base" (all unknown bugs present) with Avis.
//! let experiment = ExperimentConfig::new(
//!     FirmwareProfile::ArduPilotLike,
//!     BugSet::current_code_base(FirmwareProfile::ArduPilotLike),
//!     auto_box_mission(),
//! );
//! let config = CheckerConfig::new(Approach::Avis, experiment, Budget::simulations(50));
//! let result = Checker::new(config).run();
//! for condition in &result.unsafe_conditions {
//!     println!("unsafe: {} ({:?})", condition.plan, condition.triggered_bugs);
//! }
//! ```
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`runner`] | Fig. 7 | provisioning + lock-step execution of one test run |
//! | [`trace`] | §IV.C | the `(P, α, M)` state traces the monitor consumes |
//! | [`monitor`] | §IV.C | safety + liveliness invariants, mode graph, τ calibration |
//! | [`sabre`] | §IV.B, Alg. 1 | the stratified breadth-first transition queue |
//! | [`pruning`] | §IV.B.1 | sensor-instance symmetry and found-bug pruning |
//! | [`baselines`] | §VI | Random, BFI and the BFI model used by Stratified BFI |
//! | [`checker`] | §VI | campaign loops, budgets, unsafe-condition records |
//! | [`engine`] | — | the parallel campaign engine (deterministic wavefronts) |
//! | [`metrics`] | Tables III/IV | aggregation into the paper's tables |
//! | [`report`] | §IV.D | bug reports and replay |
//! | [`study`] | §III, Fig. 3 | the sensor-bug impact study pipeline |
//! | [`json`] | — | dependency-free JSON for the artefact formats |
//!
//! ## The parallel campaign engine
//!
//! [`engine`] executes a campaign's independent fault plans on a scoped
//! worker pool while producing a [`CampaignResult`] *bit-identical* to the
//! serial loop. The trick is speculative wavefront execution with a
//! sequential commit replay:
//!
//! 1. **Wavefront selection** — for the current SABRE anchor (or the next
//!    batch of BFI sites / random draws) the engine decides, against a
//!    *clone* of the pruning state, which plans the serial checker could
//!    possibly execute next. Pruning only ever removes more work as
//!    results arrive, so this speculative set is a superset of what the
//!    serial checker would run.
//! 2. **Parallel execution** — the wavefront's plans run concurrently,
//!    one fresh [`runner::ExperimentRunner`] per worker. Runs are pure
//!    functions of their fault plan, so results are order-independent.
//! 3. **Sequential commit** — results are replayed in canonical plan
//!    order against the *real* queue, budget and pruning state, applying
//!    exactly the serial control flow (`record_bug` / `record_ok`,
//!    budget checks, label charges). Speculative runs the serial path
//!    would have pruned or never reached are discarded.
//!
//! [`CheckerConfig::parallelism`] selects the worker count; `1` takes the
//! legacy serial path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod checker;
pub mod engine;
pub mod json;
pub mod metrics;
pub mod monitor;
pub mod pruning;
pub mod report;
pub mod runner;
pub mod sabre;
pub mod study;
pub mod trace;

pub use checker::{Approach, Budget, CampaignResult, Checker, CheckerConfig, UnsafeCondition};
pub use monitor::{InvariantMonitor, ModeGraph, MonitorConfig, Violation, ViolationKind};
pub use pruning::{PruningState, RoleSignature};
pub use report::{replay, BugReport, ReplayOutcome};
pub use runner::{ExperimentConfig, ExperimentRunner, RunResult};
pub use sabre::{QueueEntry, SabreConfig, SabreQueue};
pub use trace::{ModeTransition, StateSample, Trace};
