//! # avis
//!
//! A from-scratch Rust reproduction of **Avis: In-Situ Model Checking for
//! Unmanned Aerial Vehicles** (DSN 2021).
//!
//! Avis systematically injects *clean sensor failures* into a UAV control
//! firmware running in simulation and searches for failures that drive the
//! vehicle into unsafe conditions (crashes, fly-aways, stalled missions).
//! Its key idea is to anchor fault injection at the firmware's
//! *operating-mode transitions* — the points where mode-specific failure
//! handling is most likely to be wrong — using the SABRE stratified
//! breadth-first search, while pruning redundant scenarios via sensor-
//! instance symmetry and found-bug pruning.
//!
//! This crate is the checker itself. The substrates it drives live in the
//! sibling crates: `avis-sim` (physics + sensors), `avis-firmware` (the
//! ArduPilot/PX4-like flight stack with the paper's 15 injectable bugs),
//! `avis-hinj` (the fault-injection interface), `avis-mavlite` (the
//! protocol layer) and `avis-workload` (the workload framework).
//!
//! ## Quick start
//!
//! Campaigns are configured through the fluent [`campaign::Campaign`]
//! builder; every knob has a sensible default:
//!
//! ```no_run
//! use avis::campaign::Campaign;
//! use avis::checker::{Approach, Budget};
//! use avis_firmware::{BugSet, FirmwareProfile};
//! use avis_workload::auto_box_mission;
//!
//! // Check the "current code base" (all unknown bugs present) with Avis.
//! let result = Campaign::builder()
//!     .firmware(FirmwareProfile::ArduPilotLike)
//!     .bugs(BugSet::current_code_base(FirmwareProfile::ArduPilotLike))
//!     .workload(auto_box_mission())
//!     .approach(Approach::Avis)
//!     .budget(Budget::simulations(50))
//!     .build()
//!     .run();
//! for condition in &result.unsafe_conditions {
//!     println!("unsafe: {} ({:?})", condition.plan, condition.triggered_bugs);
//! }
//! ```
//!
//! Long campaigns report live through a [`campaign::CampaignObserver`],
//! custom search orders plug in through the [`strategy::Strategy`] trait,
//! and firmware × workload × strategy grids run as one
//! [`matrix::ScenarioMatrix`]. The legacy
//! `CheckerConfig::new(approach, experiment, budget)` wiring still works
//! but is deprecated — `MIGRATION.md` at the repository root maps every
//! old call to the new API.
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`runner`] | Fig. 7 | provisioning + lock-step execution of one test run |
//! | [`snapshot`] | — | the CoW checkpoint store: fork-from-snapshot replay, shared tier |
//! | [`trace`] | §IV.C | the `(P, α, M)` state traces the monitor consumes |
//! | [`monitor`] | §IV.C | safety + liveliness invariants, mode graph, τ calibration |
//! | [`sabre`] | §IV.B, Alg. 1 | the stratified breadth-first transition queue |
//! | [`pruning`] | §IV.B.1 | sensor-instance symmetry and found-bug pruning |
//! | [`baselines`] | §VI | the BFI model, random draws and DFS site enumeration |
//! | [`strategy`] | §VI | the pluggable [`strategy::Strategy`] trait + built-ins |
//! | [`campaign`] | §VI | the fluent campaign builder and streaming observers |
//! | [`matrix`] | §VI | firmware × workload × strategy scenario matrices |
//! | [`checker`] | §VI | budgets, unsafe-condition records, the legacy shim |
//! | [`engine`] | — | the campaign engine (serial + deterministic parallel) |
//! | [`metrics`] | Tables III/IV | aggregation into the paper's tables |
//! | [`report`] | §IV.D | bug reports and replay |
//! | [`study`] | §III, Fig. 3 | the sensor-bug impact study pipeline |
//! | [`json`] | — | dependency-free JSON for the artefact formats |
//!
//! ## The campaign engine
//!
//! [`engine`] drives any [`strategy::Strategy`] through its
//! propose / decide / observe lifecycle, serially or on a scoped worker
//! pool, with a [`checker::CampaignResult`] — and an observer event
//! stream — *bit-identical* at every parallelism. The trick is
//! speculative round execution with a sequential commit replay:
//!
//! 1. **Proposal** — the strategy emits its next natural unit of work
//!    (a SABRE anchor's candidate failure sets, a batch of BFI sites),
//!    hinting which plans it expects to run.
//! 2. **Parallel execution** — the hinted plans run concurrently, one
//!    fresh [`runner::ExperimentRunner`] per worker. Runs are pure
//!    functions of their fault plan, so results are order-independent.
//! 3. **Sequential commit** — in round order, the strategy makes its
//!    authoritative decisions against the *real* budget and pruning
//!    state; speculative runs the strategy no longer admits are
//!    discarded.
//!
//! [`checker::CheckerConfig::parallelism`] (or
//! [`campaign::CampaignBuilder::parallelism`]) selects the worker count;
//! `1` executes every run inline.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub(crate) mod batch;
pub mod campaign;
pub mod checker;
pub(crate) mod contain;
pub mod engine;
pub mod json;
pub mod matrix;
pub mod metrics;
pub mod monitor;
pub mod protocol;
pub mod pruning;
pub mod report;
pub mod runner;
pub mod sabre;
pub mod snapshot;
pub mod store;
pub mod strategy;
pub mod study;
pub mod trace;

pub use campaign::{Campaign, CampaignBuilder, CampaignEvent, CampaignObserver, EventLog};
pub use checker::{
    Approach, Budget, CampaignResult, Checker, CheckerConfig, CrashRecord, UnsafeCondition,
};
pub use engine::{DispatchMode, WorkerStatsCollector};
pub use matrix::{MatrixReport, ScenarioMatrix};
pub use monitor::{
    InvariantMonitor, LivelinessEnvelope, ModeDistanceTable, ModeGraph, MonitorConfig, Violation,
    ViolationKind,
};
pub use protocol::ProtocolTracker;
pub use pruning::{PruningState, RoleSignature};
pub use report::{replay, BugReport, ReplayOutcome};
pub use runner::{ExperimentConfig, ExperimentRunner, RunResult, RunVerdict, WatchdogConfig};
pub use sabre::{QueueEntry, SabreConfig, SabreQueue};
pub use snapshot::{CheckpointConfig, CheckpointStats, SharedSnapshotTier, SharedTierStats};
pub use store::{SnapshotStore, StoreReport, StoreStats};
pub use strategy::{
    BfiStrategy, Candidate, Decision, LinkProbeStrategy, LinkScenarioStrategy, Observation,
    PruningCounters, RandomStrategy, RoundRobinMode, SabreStrategy, Strategy, StrategyContext,
};
pub use trace::{ModeTransition, ProtocolEvent, ProtocolEventKind, StateSample, Trace};
