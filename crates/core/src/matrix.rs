//! Scenario matrices: expand a firmware × workload × strategy grid into a
//! batch of campaigns, execute them on the campaign engine, and summarise
//! everything in one report.
//!
//! This is the programmatic form of the paper's evaluation tables — one
//! [`ScenarioMatrix`] run produces the raw material for a Table III — and
//! the seam future workload and strategy sweeps plug into.
//!
//! Cells that share a firmware × workload pair (differing only by
//! strategy) share one checkpoint tree through a [`SharedSnapshotTier`],
//! so later strategies warm-start from the snapshots earlier ones
//! recorded instead of rebuilding the tree per campaign — disable with
//! [`ScenarioMatrix::share_snapshots`]`(false)`. Sharing never changes a
//! cell result.
//!
//! ```no_run
//! use avis::checker::{Approach, Budget};
//! use avis::matrix::ScenarioMatrix;
//! use avis::strategy::RoundRobinMode;
//! use avis_firmware::FirmwareProfile;
//! use avis_workload::{auto_box_mission, fence_box_mission, manual_box_survey};
//!
//! let report = ScenarioMatrix::new()
//!     .firmwares(FirmwareProfile::ALL)
//!     .workloads([auto_box_mission(), manual_box_survey(), fence_box_mission()])
//!     .approaches(Approach::ALL)
//!     .strategy("Round-robin mode", || Box::new(RoundRobinMode::new()))
//!     .budget(Budget::simulations(40))
//!     .run();
//! println!("{}", report.summary_table());
//! ```

use crate::campaign::{Campaign, CampaignObserver, NullObserver};
use crate::checker::{Approach, Budget, CampaignResult};
use crate::snapshot::{CheckpointConfig, SharedSnapshotTier};
use crate::strategy::Strategy;
use avis_firmware::{BugId, BugSet, FirmwareProfile};
use avis_hinj::LinkFaultPlan;
use avis_sim::SensorNoise;
use avis_workload::ScriptedWorkload;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

/// A strategy column of the matrix: a display name plus a factory that
/// mints a fresh strategy instance for every cell (campaigns consume
/// their strategy, so each cell needs its own).
struct StrategySlot {
    name: String,
    approach: Option<Approach>,
    factory: Box<dyn Fn() -> Box<dyn Strategy> + Send>,
}

/// A firmware × workload × strategy × link-fault grid of campaigns
/// sharing one budget and engine configuration. See the [module
/// docs](self) for an example. The link-fault axis is optional: a matrix
/// with no [`ScenarioMatrix::link_scenario`] runs every cell over a
/// clean MAVLink link, exactly as before the axis existed.
pub struct ScenarioMatrix {
    profiles: Vec<FirmwareProfile>,
    workloads: Vec<ScriptedWorkload>,
    strategies: Vec<StrategySlot>,
    link_scenarios: Vec<(String, LinkFaultPlan)>,
    bugs: Option<BugSet>,
    budget: Budget,
    profiling_runs: usize,
    parallelism: Option<usize>,
    max_duration: Option<f64>,
    noise: Option<SensorNoise>,
    seed: u64,
    share_snapshots: bool,
    snapshot_store: Option<PathBuf>,
    store_budget: u64,
}

impl Default for ScenarioMatrix {
    fn default() -> Self {
        ScenarioMatrix {
            profiles: Vec::new(),
            workloads: Vec::new(),
            strategies: Vec::new(),
            link_scenarios: Vec::new(),
            bugs: None,
            budget: Budget::simulations(50),
            profiling_runs: 3,
            parallelism: None,
            max_duration: None,
            noise: None,
            seed: 17,
            share_snapshots: true,
            snapshot_store: None,
            store_budget: crate::store::DEFAULT_STORE_BUDGET,
        }
    }
}

impl ScenarioMatrix {
    /// An empty matrix. Axes left empty fall back to defaults at
    /// [`ScenarioMatrix::run`]: the ArduPilot-like firmware, the auto
    /// waypoint mission, and the paper's four approaches.
    pub fn new() -> Self {
        ScenarioMatrix::default()
    }

    /// Adds one firmware profile to the firmware axis.
    pub fn firmware(mut self, profile: FirmwareProfile) -> Self {
        self.profiles.push(profile);
        self
    }

    /// Adds several firmware profiles to the firmware axis.
    pub fn firmwares(mut self, profiles: impl IntoIterator<Item = FirmwareProfile>) -> Self {
        self.profiles.extend(profiles);
        self
    }

    /// Adds one workload to the workload axis.
    pub fn workload(mut self, workload: ScriptedWorkload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds several workloads to the workload axis.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = ScriptedWorkload>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Adds one built-in approach to the strategy axis.
    pub fn approach(mut self, approach: Approach) -> Self {
        self.strategies.push(StrategySlot {
            name: approach.name().to_string(),
            approach: Some(approach),
            factory: Box::new(move || approach.strategy()),
        });
        self
    }

    /// Adds several built-in approaches to the strategy axis.
    pub fn approaches(mut self, approaches: impl IntoIterator<Item = Approach>) -> Self {
        for approach in approaches {
            self = self.approach(approach);
        }
        self
    }

    /// Adds a custom strategy to the strategy axis. The factory mints a
    /// fresh instance per cell.
    pub fn strategy(
        mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Strategy> + Send + 'static,
    ) -> Self {
        self.strategies.push(StrategySlot {
            name: name.into(),
            approach: None,
            factory: Box::new(factory),
        });
        self
    }

    /// Adds one named link-fault scenario to the protocol-fault axis:
    /// every firmware × workload × strategy cell is additionally run
    /// with `plan` pinned under its search (see
    /// [`crate::campaign::CampaignBuilder::link_faults`]), and the
    /// cell's [`CampaignResult::link_scenario`] records the name. An
    /// empty axis runs each cell once over a clean link.
    pub fn link_scenario(mut self, name: impl Into<String>, plan: LinkFaultPlan) -> Self {
        self.link_scenarios.push((name.into(), plan));
        self
    }

    /// Adds several named link-fault scenarios to the protocol-fault
    /// axis.
    pub fn link_scenarios(
        mut self,
        scenarios: impl IntoIterator<Item = (String, LinkFaultPlan)>,
    ) -> Self {
        self.link_scenarios.extend(scenarios);
        self
    }

    /// The defects compiled into every cell's firmware. Default: each
    /// profile's "current code base".
    pub fn bugs(mut self, bugs: BugSet) -> Self {
        self.bugs = Some(bugs);
        self
    }

    /// The per-campaign test budget. Default: 50 simulations.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Profiling runs per campaign. Default: 3.
    pub fn profiling_runs(mut self, runs: usize) -> Self {
        self.profiling_runs = runs;
        self
    }

    /// Worker threads per campaign. Default: the number of available CPU
    /// cores.
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = Some(parallelism.max(1));
        self
    }

    /// Hard cap on simulated time per run (s).
    pub fn max_duration(mut self, seconds: f64) -> Self {
        self.max_duration = Some(seconds);
        self
    }

    /// Sensor-noise level for every cell.
    pub fn noise(mut self, noise: SensorNoise) -> Self {
        self.noise = Some(noise);
        self
    }

    /// The deterministic campaign seed shared by every cell. Default: 17.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether cells that share a firmware × workload pair (differing
    /// only by strategy) share one checkpoint tree through a
    /// [`SharedSnapshotTier`], so the second strategy's campaign
    /// warm-starts from snapshots the first one recorded instead of
    /// rebuilding the tree per campaign. Sharing never changes any cell
    /// result — a forked run is bit-identical to a cold one. Default:
    /// `true`.
    pub fn share_snapshots(mut self, share: bool) -> Self {
        self.share_snapshots = share;
        self
    }

    /// Attaches a persistent snapshot store rooted at `path` to every
    /// cell (see [`crate::campaign::CampaignBuilder::snapshot_store`]).
    /// The store keys its state by experiment fingerprint, so one root
    /// directory cleanly separates every firmware × workload cell: a
    /// re-run matrix warm-starts each cell from the chains its own
    /// experiment persisted last time, and cells never see foreign
    /// state. Requires [`ScenarioMatrix::share_snapshots`] (the
    /// default) — without a shared tier there is nothing to hydrate
    /// into. Persistence never changes any cell result. Default: no
    /// store.
    pub fn snapshot_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_store = Some(path.into());
        self
    }

    /// On-disk byte budget for each cell's slice of the snapshot store
    /// (see
    /// [`crate::campaign::CampaignBuilder::snapshot_store_budget`]).
    pub fn snapshot_store_budget(mut self, max_bytes: u64) -> Self {
        self.store_budget = max_bytes;
        self
    }

    /// Number of campaigns the matrix expands to (empty axes counted at
    /// their [`ScenarioMatrix::run`] fallback sizes).
    pub fn cell_count(&self) -> usize {
        let strategies = if self.strategies.is_empty() {
            Approach::ALL.len()
        } else {
            self.strategies.len()
        };
        self.profiles.len().max(1)
            * self.workloads.len().max(1)
            * strategies
            * self.link_scenarios.len().max(1)
    }

    /// Executes every cell and aggregates the results, discarding events.
    pub fn run(self) -> MatrixReport {
        self.run_with_observer(&mut NullObserver)
    }

    /// Executes every cell, streaming each campaign's events to
    /// `observer` (cells run sequentially, in strategy → firmware →
    /// workload → link-scenario order; within a cell events arrive in
    /// commit order).
    pub fn run_with_observer(mut self, observer: &mut dyn CampaignObserver) -> MatrixReport {
        if self.profiles.is_empty() {
            self.profiles.push(FirmwareProfile::ArduPilotLike);
        }
        if self.workloads.is_empty() {
            self.workloads.push(avis_workload::auto_box_mission());
        }
        if self.strategies.is_empty() {
            self = self.approaches(Approach::ALL);
        }
        // One shared snapshot tier per firmware × workload pair: the
        // outer loop iterates strategies, so by the time the second
        // strategy reaches a cell, the tier already holds the first
        // strategy's checkpoint tree and its campaign warm-starts
        // instead of re-recording the fault-free chain.
        let mut tiers: BTreeMap<(usize, usize), Arc<SharedSnapshotTier>> = BTreeMap::new();
        let tier_budget = CheckpointConfig::default().max_bytes;
        // An empty protocol-fault axis is one unnamed clean-link cell.
        let link_scenarios: Vec<(Option<String>, LinkFaultPlan)> = if self.link_scenarios.is_empty()
        {
            vec![(None, LinkFaultPlan::empty())]
        } else {
            self.link_scenarios
                .iter()
                .map(|(name, plan)| (Some(name.clone()), plan.clone()))
                .collect()
        };
        let mut results = Vec::new();
        for slot in &self.strategies {
            for (profile_idx, &profile) in self.profiles.iter().enumerate() {
                for (workload_idx, workload) in self.workloads.iter().enumerate() {
                    for (scenario_name, link_plan) in &link_scenarios {
                        let bugs = self
                            .bugs
                            .clone()
                            .unwrap_or_else(|| BugSet::current_code_base(profile));
                        let mut builder = Campaign::builder()
                            .firmware(profile)
                            .bugs(bugs)
                            .workload(workload.clone())
                            .budget(self.budget)
                            .profiling_runs(self.profiling_runs)
                            .seed(self.seed)
                            .link_faults(link_plan.clone());
                        if self.share_snapshots {
                            // Cells over the same firmware × workload pair
                            // share one tier even across link scenarios:
                            // combined injection prefixes keep foreign
                            // snapshots from ever being misapplied, and
                            // the fault-free chain is reusable up to each
                            // scenario's first link fault.
                            let tier = tiers
                                .entry((profile_idx, workload_idx))
                                .or_insert_with(|| Arc::new(SharedSnapshotTier::new(tier_budget)));
                            builder = builder.shared_snapshots(Arc::clone(tier));
                            if let Some(root) = &self.snapshot_store {
                                // Fingerprint keying inside the store
                                // separates the cells; every cell can
                                // share one root directory.
                                builder = builder
                                    .snapshot_store(root.clone())
                                    .snapshot_store_budget(self.store_budget);
                            }
                        }
                        if let Some(parallelism) = self.parallelism {
                            builder = builder.parallelism(parallelism);
                        }
                        if let Some(max_duration) = self.max_duration {
                            builder = builder.max_duration(max_duration);
                        }
                        if let Some(noise) = self.noise.clone() {
                            builder = builder.noise(noise);
                        }
                        builder = match slot.approach {
                            Some(approach) => builder.approach(approach),
                            None => builder.boxed_strategy((slot.factory)()),
                        };
                        let mut result = builder.build().run_with_observer(observer);
                        // Custom strategies may report a different internal
                        // name; the matrix column name wins in the report.
                        result.strategy = slot.name.clone();
                        result.link_scenario = scenario_name.clone();
                        results.push(result);
                    }
                }
            }
        }
        MatrixReport { results }
    }
}

/// The aggregated outcome of a [`ScenarioMatrix`] run: every cell's
/// [`CampaignResult`], plus summary helpers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixReport {
    /// One result per cell, in strategy → firmware → workload →
    /// link-scenario order.
    pub results: Vec<CampaignResult>,
}

impl MatrixReport {
    /// Total unsafe conditions across every cell.
    pub fn total_unsafe(&self) -> usize {
        self.results.iter().map(|r| r.unsafe_count()).sum()
    }

    /// Total simulations executed across every cell.
    pub fn total_simulations(&self) -> usize {
        self.results.iter().map(|r| r.simulations).sum()
    }

    /// The distinct injected defects exposed anywhere in the matrix.
    pub fn bugs_found(&self) -> BTreeSet<BugId> {
        self.results.iter().flat_map(|r| r.bugs_found()).collect()
    }

    /// Unsafe conditions per strategy, summed over firmware and
    /// workloads, in first-appearance order.
    pub fn per_strategy(&self) -> Vec<(String, usize)> {
        let mut order: Vec<String> = Vec::new();
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for result in &self.results {
            if !counts.contains_key(&result.strategy) {
                order.push(result.strategy.clone());
            }
            *counts.entry(result.strategy.clone()).or_insert(0) += result.unsafe_count();
        }
        order
            .into_iter()
            .map(|name| {
                let count = counts[&name];
                (name, count)
            })
            .collect()
    }

    /// The cells run for `strategy`, in firmware → workload order.
    pub fn cells_for(&self, strategy: &str) -> Vec<&CampaignResult> {
        self.results
            .iter()
            .filter(|r| r.strategy == strategy)
            .collect()
    }

    /// A markdown summary: one row per strategy, one column per
    /// firmware × workload cell, unsafe-condition counts in the cells.
    pub fn summary_table(&self) -> String {
        let mut columns: Vec<(FirmwareProfile, String)> = Vec::new();
        for result in &self.results {
            let column = (result.profile, result.workload.clone());
            if !columns.contains(&column) {
                columns.push(column);
            }
        }
        let mut out = String::from("| Strategy |");
        for (profile, workload) in &columns {
            out.push_str(&format!(" {profile} / {workload} |"));
        }
        out.push_str(" Total |\n|---|");
        for _ in &columns {
            out.push_str("---|");
        }
        out.push_str("---|\n");
        for (strategy, total) in self.per_strategy() {
            out.push_str(&format!("| {strategy} |"));
            for (profile, workload) in &columns {
                let count: usize = self
                    .results
                    .iter()
                    .filter(|r| {
                        r.strategy == strategy && r.profile == *profile && r.workload == *workload
                    })
                    .map(|r| r.unsafe_count())
                    .sum();
                out.push_str(&format!(" {count} |"));
            }
            out.push_str(&format!(" {total} |\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_count_multiplies_the_axes() {
        let matrix = ScenarioMatrix::new()
            .firmwares(FirmwareProfile::ALL)
            .workload(avis_workload::auto_box_mission())
            .approaches(Approach::ALL)
            .strategy(
                "custom",
                || Box::new(crate::strategy::RoundRobinMode::new()),
            );
        // 2 firmwares × 1 workload × 5 strategies.
        assert_eq!(matrix.cell_count(), 10);
        // Empty axes fall back to defaults in the count too.
        assert_eq!(ScenarioMatrix::new().cell_count(), 4);
        // A partially filled strategy axis is counted as-is, not clamped
        // to the empty-axis fallback.
        assert_eq!(
            ScenarioMatrix::new().approach(Approach::Avis).cell_count(),
            1
        );
        // The protocol-fault axis multiplies in like the others.
        assert_eq!(
            ScenarioMatrix::new()
                .approach(Approach::Avis)
                .link_scenario("clean-ish", LinkFaultPlan::empty())
                .link_scenario("lossy", LinkFaultPlan::empty())
                .cell_count(),
            2
        );
    }

    #[test]
    fn shared_snapshot_tiers_do_not_change_matrix_results() {
        // Cells sharing a firmware × workload pair share one checkpoint
        // tree; the aggregated report must be identical with sharing on
        // and off (a forked run is bit-identical to a cold one).
        let run = |share: bool| {
            ScenarioMatrix::new()
                .firmware(FirmwareProfile::ArduPilotLike)
                .workload(avis_workload::auto_box_mission())
                .approach(Approach::Avis)
                .approach(Approach::Random)
                .budget(Budget::simulations(5))
                .profiling_runs(1)
                .parallelism(1)
                .max_duration(110.0)
                .noise(SensorNoise::default())
                .share_snapshots(share)
                .run()
        };
        let shared = run(true);
        let unshared = run(false);
        assert_eq!(
            shared, unshared,
            "matrix-level snapshot sharing changed a cell result"
        );
    }

    #[test]
    fn report_aggregation_and_table() {
        use crate::checker::CampaignResult;
        let result = |strategy: &str, profile, unsafe_count: usize| CampaignResult {
            strategy: strategy.to_string(),
            approach: None,
            profile,
            workload: "w".to_string(),
            unsafe_conditions: Vec::new(),
            simulations: 5 + unsafe_count,
            cost_seconds: 100.0,
            labels_evaluated: 0,
            symmetry_pruned: 0,
            found_bug_pruned: 0,
            link_scenario: None,
            crashes: Vec::new(),
        };
        let report = MatrixReport {
            results: vec![
                result("Avis", FirmwareProfile::ArduPilotLike, 0),
                result("Avis", FirmwareProfile::Px4Like, 0),
                result("Random", FirmwareProfile::ArduPilotLike, 0),
                result("Random", FirmwareProfile::Px4Like, 0),
            ],
        };
        assert_eq!(report.total_unsafe(), 0);
        assert_eq!(report.total_simulations(), 20);
        assert_eq!(report.per_strategy().len(), 2);
        assert_eq!(report.cells_for("Avis").len(), 2);
        let table = report.summary_table();
        assert!(table.contains("| Avis |"));
        assert!(table.contains("| Random |"));
        assert!(table.contains("Total |"));
    }
}
