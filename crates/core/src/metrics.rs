//! Aggregation helpers that turn campaign results into the paper's tables.

use crate::checker::{Approach, CampaignResult};
use avis_firmware::{FirmwareProfile, ModeCategory};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One row of Table III: unsafe scenarios per approach, split by firmware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnsafeScenarioRow {
    /// The approach.
    pub approach: Approach,
    /// Unsafe scenarios found on the ArduPilot-like firmware.
    pub ardupilot: usize,
    /// Unsafe scenarios found on the PX4-like firmware.
    pub px4: usize,
}

impl UnsafeScenarioRow {
    /// The total across both firmware stacks.
    pub fn total(&self) -> usize {
        self.ardupilot + self.px4
    }
}

/// Builds Table III rows (unsafe scenarios per approach per firmware) from
/// a set of campaign results. Results for the same approach and firmware
/// (e.g. different workloads) are summed.
pub fn unsafe_scenario_table(results: &[CampaignResult]) -> Vec<UnsafeScenarioRow> {
    Approach::ALL
        .iter()
        .map(|&approach| {
            let count = |profile: FirmwareProfile| {
                results
                    .iter()
                    .filter(|r| r.approach == Some(approach) && r.profile == profile)
                    .map(|r| r.unsafe_count())
                    .sum()
            };
            UnsafeScenarioRow {
                approach,
                ardupilot: count(FirmwareProfile::ArduPilotLike),
                px4: count(FirmwareProfile::Px4Like),
            }
        })
        .collect()
}

/// One row of Table IV: unsafe scenarios per approach per mode category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerModeRow {
    /// The approach.
    pub approach: Approach,
    /// Count per mode category, in [`ModeCategory::ALL`] order.
    pub per_category: Vec<(ModeCategory, usize)>,
}

/// Builds Table IV rows from campaign results.
pub fn per_mode_table(results: &[CampaignResult]) -> Vec<PerModeRow> {
    Approach::ALL
        .iter()
        .map(|&approach| {
            let mut counts: BTreeMap<ModeCategory, usize> =
                ModeCategory::ALL.iter().map(|&c| (c, 0)).collect();
            for result in results.iter().filter(|r| r.approach == Some(approach)) {
                for (category, n) in result.per_category() {
                    *counts.entry(category).or_insert(0) += n;
                }
            }
            PerModeRow {
                approach,
                per_category: ModeCategory::ALL.iter().map(|&c| (c, counts[&c])).collect(),
            }
        })
        .collect()
}

/// The efficiency ratio between two approaches: unsafe conditions found per
/// unit of budget, `a` relative to `b` (the headline "2.4×" comparison).
pub fn efficiency_ratio(a: &[&CampaignResult], b: &[&CampaignResult]) -> f64 {
    let rate = |rs: &[&CampaignResult]| {
        let found: usize = rs.iter().map(|r| r.unsafe_count()).sum();
        let cost: f64 = rs.iter().map(|r| r.cost_seconds).sum();
        if cost <= 0.0 {
            0.0
        } else {
            found as f64 / cost
        }
    };
    let rb = rate(b);
    if rb <= 0.0 {
        f64::INFINITY
    } else {
        rate(a) / rb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::UnsafeCondition;
    use crate::monitor::{Violation, ViolationKind};
    use avis_firmware::OperatingMode;
    use avis_hinj::FaultPlan;

    fn fake_condition(category: ModeCategory) -> UnsafeCondition {
        UnsafeCondition {
            plan: FaultPlan::empty(),
            violations: vec![Violation {
                kind: ViolationKind::Collision { impact_speed: 3.0 },
                time: 1.0,
                mode: OperatingMode::Land,
            }],
            injection_category: category,
            injection_mode: Some(OperatingMode::Takeoff),
            triggered_bugs: Vec::new(),
            simulations_used: 1,
            cost_seconds_used: 10.0,
        }
    }

    fn fake_result(
        approach: Approach,
        profile: FirmwareProfile,
        categories: &[ModeCategory],
        cost: f64,
    ) -> CampaignResult {
        CampaignResult {
            strategy: approach.name().to_string(),
            approach: Some(approach),
            profile,
            workload: "w".to_string(),
            unsafe_conditions: categories.iter().map(|&c| fake_condition(c)).collect(),
            simulations: categories.len() + 3,
            cost_seconds: cost,
            labels_evaluated: 0,
            symmetry_pruned: 0,
            found_bug_pruned: 0,
            link_scenario: None,
            crashes: Vec::new(),
        }
    }

    #[test]
    fn table_iii_sums_across_workloads_and_profiles() {
        let results = vec![
            fake_result(
                Approach::Avis,
                FirmwareProfile::ArduPilotLike,
                &[ModeCategory::Takeoff, ModeCategory::Waypoint],
                100.0,
            ),
            fake_result(
                Approach::Avis,
                FirmwareProfile::ArduPilotLike,
                &[ModeCategory::Land],
                100.0,
            ),
            fake_result(
                Approach::Avis,
                FirmwareProfile::Px4Like,
                &[ModeCategory::Takeoff],
                100.0,
            ),
            fake_result(Approach::Bfi, FirmwareProfile::ArduPilotLike, &[], 100.0),
        ];
        let table = unsafe_scenario_table(&results);
        assert_eq!(table.len(), 4);
        let avis = &table[0];
        assert_eq!(avis.approach, Approach::Avis);
        assert_eq!(avis.ardupilot, 3);
        assert_eq!(avis.px4, 1);
        assert_eq!(avis.total(), 4);
        let bfi = table.iter().find(|r| r.approach == Approach::Bfi).unwrap();
        assert_eq!(bfi.total(), 0);
    }

    #[test]
    fn table_iv_groups_by_mode_category() {
        let results = vec![fake_result(
            Approach::Avis,
            FirmwareProfile::ArduPilotLike,
            &[
                ModeCategory::Takeoff,
                ModeCategory::Takeoff,
                ModeCategory::Land,
            ],
            100.0,
        )];
        let table = per_mode_table(&results);
        let avis = &table[0];
        let takeoff = avis
            .per_category
            .iter()
            .find(|(c, _)| *c == ModeCategory::Takeoff)
            .map(|(_, n)| *n)
            .unwrap();
        assert_eq!(takeoff, 2);
        let land = avis
            .per_category
            .iter()
            .find(|(c, _)| *c == ModeCategory::Land)
            .map(|(_, n)| *n)
            .unwrap();
        assert_eq!(land, 1);
        let manual = avis
            .per_category
            .iter()
            .find(|(c, _)| *c == ModeCategory::Manual)
            .map(|(_, n)| *n)
            .unwrap();
        assert_eq!(manual, 0);
    }

    #[test]
    fn efficiency_ratio_compares_rates() {
        let a = fake_result(
            Approach::Avis,
            FirmwareProfile::ArduPilotLike,
            &[ModeCategory::Takeoff; 6],
            100.0,
        );
        let b = fake_result(
            Approach::StratifiedBfi,
            FirmwareProfile::ArduPilotLike,
            &[ModeCategory::Takeoff; 2],
            100.0,
        );
        let ratio = efficiency_ratio(&[&a], &[&b]);
        assert!((ratio - 3.0).abs() < 1e-9);
        let zero = fake_result(Approach::Bfi, FirmwareProfile::ArduPilotLike, &[], 100.0);
        assert!(efficiency_ratio(&[&a], &[&zero]).is_infinite());
    }
}
