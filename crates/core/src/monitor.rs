//! The invariant monitor: safety and liveliness checking (§IV.C).
//!
//! * **Safety** — the UAV must not collide with an obstacle (or the
//!   ground at speed). Collisions are detected by the simulator and
//!   surfaced through the trace.
//! * **Liveliness** — the UAV must keep making progress toward its goal.
//!   Liveliness is checked by comparing the test run against a set of
//!   fault-free *profiling runs*: the state tuple `(P, α, M)` at the same
//!   time offset is compared using normalized distances (positions and
//!   accelerations scaled onto the mode-graph diameter, modes compared by
//!   shortest-path distance in the observed mode graph), and a violation
//!   is reported when the test state is farther from *every* profiling run
//!   than the largest distance `τ` ever observed between profiling runs
//!   (Equation 1).
//!
//! Safe modes (landing, return-to-launch, brake) are exempt from the
//! liveliness comparison but carry their own progress invariants, exactly
//! as the paper allows safety to be preserved at the expense of liveliness.

use crate::trace::{StateSample, Trace};
use avis_firmware::OperatingMode;
use avis_hinj::ModeCode;
use avis_sim::Vec3;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A directed graph over the operating modes observed in profiling runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModeGraph {
    nodes: BTreeSet<ModeCode>,
    edges: BTreeMap<ModeCode, BTreeSet<ModeCode>>,
}

impl ModeGraph {
    /// Builds the mode graph from the transitions observed in traces.
    pub fn from_traces<'a, I: IntoIterator<Item = &'a Trace>>(traces: I) -> Self {
        let mut graph = ModeGraph::default();
        for trace in traces {
            let mut prev: Option<ModeCode> = None;
            for tr in &trace.mode_transitions {
                let code = tr.mode.code();
                graph.nodes.insert(code);
                if let Some(p) = prev {
                    if p != code {
                        graph.edges.entry(p).or_default().insert(code);
                    }
                }
                prev = Some(code);
            }
        }
        graph
    }

    /// Number of modes in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Shortest directed path length between two modes, treating the graph
    /// as undirected for distance purposes when no directed path exists,
    /// and falling back to the diameter + 1 when the modes are not
    /// connected at all. Unknown modes are treated as maximally distant.
    pub fn distance(&self, from: ModeCode, to: ModeCode) -> f64 {
        if from == to {
            return 0.0;
        }
        if !self.nodes.contains(&from) || !self.nodes.contains(&to) {
            return self.diameter() + 1.0;
        }
        match self.bfs(from, to, false) {
            Some(d) => d as f64,
            None => match self.bfs(from, to, true) {
                Some(d) => d as f64,
                None => self.diameter() + 1.0,
            },
        }
    }

    fn neighbours(&self, node: ModeCode, undirected: bool) -> Vec<ModeCode> {
        let mut out: Vec<ModeCode> = self
            .edges
            .get(&node)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        if undirected {
            for (src, dsts) in &self.edges {
                if dsts.contains(&node) {
                    out.push(*src);
                }
            }
        }
        out
    }

    fn bfs(&self, from: ModeCode, to: ModeCode, undirected: bool) -> Option<usize> {
        let mut visited = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((from, 0usize));
        visited.insert(from);
        while let Some((node, dist)) = queue.pop_front() {
            if node == to {
                return Some(dist);
            }
            for next in self.neighbours(node, undirected) {
                if visited.insert(next) {
                    queue.push_back((next, dist + 1));
                }
            }
        }
        None
    }

    /// The length of the longest shortest-path in the graph (`D` in the
    /// paper's normalization), at least 1.
    pub fn diameter(&self) -> f64 {
        let mut best = 1usize;
        for &a in &self.nodes {
            for &b in &self.nodes {
                if a == b {
                    continue;
                }
                if let Some(d) = self.bfs(a, b, false).or_else(|| self.bfs(a, b, true)) {
                    best = best.max(d);
                }
            }
        }
        best as f64
    }

    /// Memoizes every pairwise distance into a [`ModeDistanceTable`].
    pub fn distance_table(&self) -> ModeDistanceTable {
        ModeDistanceTable::new(self)
    }
}

/// All-pairs memoization of [`ModeGraph::distance`]: built once per
/// campaign (at monitor calibration), consulted in O(1) per state-tuple
/// comparison. The per-sample liveliness check calls `distance` once per
/// candidate reference sample, so the repeated BFS it replaces used to
/// dominate [`InvariantMonitor::check`].
///
/// The table reproduces [`ModeGraph::distance`] exactly — including the
/// directed-then-undirected fallback and the `diameter + 1` answer for
/// unknown modes — because it is *built from* that function.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModeDistanceTable {
    /// Sorted mode codes (row/column order of `distances`).
    codes: Vec<ModeCode>,
    /// Row-major `codes.len() × codes.len()` distance matrix.
    distances: Vec<f64>,
    /// The distance reported for modes outside the graph.
    fallback: f64,
    /// The graph diameter (`D` in the paper's normalization).
    diameter: f64,
}

impl ModeDistanceTable {
    /// Builds the table by evaluating [`ModeGraph::distance`] for every
    /// pair of known modes.
    pub fn new(graph: &ModeGraph) -> Self {
        let codes: Vec<ModeCode> = graph.nodes.iter().copied().collect();
        let diameter = graph.diameter();
        let n = codes.len();
        let mut distances = vec![0.0; n * n];
        for (i, &a) in codes.iter().enumerate() {
            for (j, &b) in codes.iter().enumerate() {
                distances[i * n + j] = graph.distance(a, b);
            }
        }
        ModeDistanceTable {
            codes,
            distances,
            fallback: diameter + 1.0,
            diameter,
        }
    }

    /// Number of modes in the table.
    pub fn mode_count(&self) -> usize {
        self.codes.len()
    }

    /// The memoized graph diameter.
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// O(1) lookup of [`ModeGraph::distance`] for the pair.
    pub fn distance(&self, from: ModeCode, to: ModeCode) -> f64 {
        if from == to {
            return 0.0;
        }
        match (self.index(from), self.index(to)) {
            (Some(i), Some(j)) => self.distances[i * self.codes.len() + j],
            _ => self.fallback,
        }
    }

    fn index(&self, code: ModeCode) -> Option<usize> {
        self.codes.binary_search(&code).ok()
    }
}

/// Why a run was flagged as unsafe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Safety violation: physical collision.
    Collision {
        /// Impact speed (m/s).
        impact_speed: f64,
    },
    /// Liveliness violation: the run diverged from every profiling run.
    LivelinessDivergence {
        /// The normalized distance to the closest profiling run.
        distance: f64,
        /// The threshold `τ` that was exceeded.
        threshold: f64,
    },
    /// A safe mode failed its own progress invariant (e.g. RTL moving away
    /// from home, Land climbing).
    SafeModeStalled {
        /// The safe mode that stalled.
        mode: String,
    },
    /// Protocol violation: the vehicle disarmed (or rebooted) in the air.
    InAirDisarm {
        /// Last telemetered altitude before the disarm (m).
        altitude: f64,
    },
    /// Protocol violation: a GCS command was never acknowledged within
    /// the liveness window.
    CommandAckTimeout {
        /// Display name of the unacknowledged command.
        command: String,
        /// The liveness window that elapsed (s).
        window: f64,
    },
    /// Protocol violation: after an accepted upload, the mission stored
    /// on the vehicle differs from the one the workload sent.
    MissionAliasing {
        /// Items the workload sent.
        expected_items: usize,
        /// Items that match on the vehicle.
        matching_items: usize,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Collision { impact_speed } => {
                write!(f, "collision at {impact_speed:.1} m/s")
            }
            ViolationKind::LivelinessDivergence {
                distance,
                threshold,
            } => {
                write!(
                    f,
                    "liveliness divergence ({distance:.2} > τ={threshold:.2})"
                )
            }
            ViolationKind::SafeModeStalled { mode } => write!(f, "safe mode {mode} stalled"),
            ViolationKind::InAirDisarm { altitude } => {
                write!(f, "in-air disarm at {altitude:.1} m")
            }
            ViolationKind::CommandAckTimeout { command, window } => {
                write!(f, "{command} unacknowledged for {window:.1} s")
            }
            ViolationKind::MissionAliasing {
                expected_items,
                matching_items,
            } => {
                write!(
                    f,
                    "mission aliasing: {matching_items}/{expected_items} items match after accepted upload"
                )
            }
        }
    }
}

/// An unsafe condition detected by the monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// What was violated.
    pub kind: ViolationKind,
    /// Time within the run at which the violation was detected (s).
    pub time: f64,
    /// Operating mode at the time of the violation.
    pub mode: OperatingMode,
}

/// Monitor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Multiplier applied to the profiling-derived threshold `τ`; values
    /// above 1 add safety margin against false positives.
    pub tolerance_factor: f64,
    /// Floor for the position normalization constant `P̄` (m).
    pub min_position_scale: f64,
    /// Floor for the acceleration normalization constant `Ā` (m/s²).
    pub min_acceleration_scale: f64,
    /// Window over which safe-mode progress is evaluated (s).
    pub progress_window: f64,
    /// Minimum altitude loss (Land) or approach (RTL) expected over the
    /// progress window (m).
    pub min_progress: f64,
    /// Grace period after entering a safe mode before progress is required (s).
    pub safe_mode_grace: f64,
    /// Half-width of the time window (s) within which a test sample may be
    /// matched against profiling samples. Mode transitions shift by a
    /// fraction of a second between otherwise-identical runs (scheduler
    /// and sensor-noise nondeterminism, §IV.C.2); comparing against the
    /// nearest profiling sample within this window keeps those benign
    /// timing shifts from registering as divergence.
    pub time_window: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            tolerance_factor: 2.0,
            min_position_scale: 1.0,
            min_acceleration_scale: 0.5,
            progress_window: 6.0,
            min_progress: 0.5,
            safe_mode_grace: 8.0,
            time_window: 2.0,
        }
    }
}

/// One time-step's aggregate over every profiling sample a test sample at
/// that step may be compared against (the step's ± window, padded by one
/// step to absorb `f64` rounding at the window edges).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EnvelopeCell {
    pos_min: Vec3,
    pos_max: Vec3,
    acc_min: Vec3,
    acc_max: Vec3,
    /// Distinct operating-mode codes within the window.
    modes: Vec<ModeCode>,
}

/// The per-timestep liveliness envelope: axis-aligned bounds (and mode
/// sets) over the profiling samples each test sample is compared against
/// in Equation 1. Precomputed once at calibration; at check time it
/// yields an O(1) *lower bound* on the min-distance of Eq. 1, which
/// together with an outward-from-zero upper-bound probe resolves almost
/// every sample without scanning the full `runs × window` reference set.
///
/// The envelope is deliberately a *superset* bound (window padded by one
/// step, indices clamped like [`Trace::sample_at`] clamps), so its lower
/// bound can never exceed the true minimum: quick paths only shortcut
/// when the exact scan would provably reach the same verdict, keeping
/// [`InvariantMonitor::check`] bit-identical to the brute-force check.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LivelinessEnvelope {
    /// Profiling sample interval (s); cell `k` covers time `k × interval`.
    interval: f64,
    cells: Vec<EnvelopeCell>,
}

impl LivelinessEnvelope {
    fn build(profiling: &[Trace], config: &MonitorConfig, duration: f64) -> Self {
        let interval = profiling[0].sample_interval.max(1e-6);
        let steps = (duration / interval).ceil() as i64;
        let window = (config.time_window / interval).round() as i64;
        let mut cells = Vec::with_capacity(steps as usize + 1);
        for k in 0..=steps {
            let mut cell: Option<EnvelopeCell> = None;
            let mut modes = BTreeSet::new();
            for run in profiling {
                if run.samples.is_empty() {
                    continue;
                }
                let last = run.samples.len() as i64 - 1;
                // Window padded by one step either side; indices clamped
                // exactly like `sample_at` clamps times past the end.
                for idx in (k - window - 1).max(0)..=(k + window + 1) {
                    let sample = &run.samples[idx.min(last) as usize];
                    modes.insert(sample.mode.code());
                    match &mut cell {
                        None => {
                            cell = Some(EnvelopeCell {
                                pos_min: sample.position,
                                pos_max: sample.position,
                                acc_min: sample.acceleration,
                                acc_max: sample.acceleration,
                                modes: Vec::new(),
                            })
                        }
                        Some(cell) => {
                            cell.pos_min = component_min(cell.pos_min, sample.position);
                            cell.pos_max = component_max(cell.pos_max, sample.position);
                            cell.acc_min = component_min(cell.acc_min, sample.acceleration);
                            cell.acc_max = component_max(cell.acc_max, sample.acceleration);
                        }
                    }
                }
            }
            // Every profiling trace empty: no references exist at any
            // step, so leave the envelope empty — `cell_at` then yields
            // no bound and the check falls through to the exact scan,
            // which finds nothing to compare against (the pre-envelope
            // behaviour for sample-less profiling runs).
            let Some(mut cell) = cell else {
                return LivelinessEnvelope {
                    interval,
                    cells: Vec::new(),
                };
            };
            cell.modes = modes.into_iter().collect();
            cells.push(cell);
        }
        LivelinessEnvelope { interval, cells }
    }

    /// Number of per-timestep cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the envelope holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn cell_at(&self, time: f64) -> Option<&EnvelopeCell> {
        if self.cells.is_empty() {
            return None;
        }
        let idx = (time / self.interval).round() as usize;
        self.cells.get(idx.min(self.cells.len() - 1))
    }
}

/// Per-sample progress envelope over a *test* trace, built lazily (once
/// per checked trace, on the first safe-mode sample) and consulted in
/// O(1) per sample — the same quick-accept/quick-reject shape as
/// [`LivelinessEnvelope`], applied to the safe-mode progress invariant.
///
/// The exact check walks `sample_at` and recomputes two horizontal home
/// distances and an altitude delta per safe-mode sample; in long landing
/// tails that walk *is* the monitor's remaining hot spot. The envelope
/// precomputes the per-sample altitude, home-distance and time arrays in
/// one pass, plus the index of the landed tail (every later sample on
/// the ground), so almost every safe-mode sample resolves through a
/// single bounds check and the rest through pure array arithmetic. The
/// verdict is byte-identical to the exact walk — pinned by the
/// oracle-equivalence tests below.
#[derive(Debug, Clone)]
struct ProgressEnvelope {
    /// `samples[i].position.z`.
    alt: Vec<f64>,
    /// `samples[i].position.horizontal_distance(home)`.
    home_dist: Vec<f64>,
    /// `samples[i].time`.
    time: Vec<f64>,
    /// First index from which every later sample is on the ground
    /// (`alt < 0.5`) — the quick-accept for long landing tails: every
    /// progress invariant short-circuits on `on_ground`.
    landed_from: usize,
}

impl ProgressEnvelope {
    fn build(trace: &Trace, home: Vec3) -> Self {
        let n = trace.samples.len();
        let mut alt = Vec::with_capacity(n);
        let mut home_dist = Vec::with_capacity(n);
        let mut time = Vec::with_capacity(n);
        for s in &trace.samples {
            alt.push(s.position.z);
            home_dist.push(s.position.horizontal_distance(home));
            time.push(s.time);
        }
        let mut landed_from = n;
        while landed_from > 0 && alt[landed_from - 1] < 0.5 {
            landed_from -= 1;
        }
        ProgressEnvelope {
            alt,
            home_dist,
            time,
            landed_from,
        }
    }
}

fn component_min(a: Vec3, b: Vec3) -> Vec3 {
    Vec3::new(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z))
}

fn component_max(a: Vec3, b: Vec3) -> Vec3 {
    Vec3::new(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z))
}

/// Steps per calibration block (see [`CalibrationBlocks`]).
const CALIBRATION_BLOCK: usize = 32;

/// Axis-aligned bounds (and mode set) over one block of one profiling
/// run's step-aligned samples — the calibration-side analogue of the
/// check-side [`LivelinessEnvelope`] cell.
#[derive(Debug, Clone)]
struct CalibrationBlock {
    pos_min: Vec3,
    pos_max: Vec3,
    acc_min: Vec3,
    acc_max: Vec3,
    modes: Vec<ModeCode>,
}

/// Per-run, per-block envelope bounds over the step-aligned samples the
/// calibration loops compare, built in one O(runs × steps) pass. τ
/// calibration (and the P̄/Ā normalization pass before it) is a max over
/// all run pairs at every step — O(runs² × steps) state-tuple distances
/// brute force, which dominates campaign start-up once profiling counts
/// grow past a handful. The block bounds give an upper bound on every
/// pairwise value inside a block pair, so blocks that provably cannot
/// raise the running maximum are skipped without computing a single
/// distance; the result is *exactly* the brute-force maximum (skipped
/// blocks contain no new maximum — pinned by the oracle-equivalence
/// test).
#[derive(Debug)]
struct CalibrationBlocks {
    /// Step-aligned (clamped, like [`Trace::sample_at`]) samples per run;
    /// `None` for sample-less runs, which the pairwise loops skip.
    samples: Vec<Option<Vec<StateSample>>>,
    blocks: Vec<Vec<CalibrationBlock>>,
}

impl CalibrationBlocks {
    fn build(profiling: &[Trace], sample_interval: f64, steps: usize) -> Self {
        let mut samples = Vec::with_capacity(profiling.len());
        let mut blocks = Vec::with_capacity(profiling.len());
        for run in profiling {
            if run.samples.is_empty() {
                samples.push(None);
                blocks.push(Vec::new());
                continue;
            }
            let stepped: Vec<StateSample> = (0..=steps)
                .map(|k| {
                    *run.sample_at(k as f64 * sample_interval)
                        .expect("non-empty run yields clamped samples")
                })
                .collect();
            let run_blocks = stepped
                .chunks(CALIBRATION_BLOCK)
                .map(|chunk| {
                    let first = &chunk[0];
                    let mut block = CalibrationBlock {
                        pos_min: first.position,
                        pos_max: first.position,
                        acc_min: first.acceleration,
                        acc_max: first.acceleration,
                        modes: Vec::new(),
                    };
                    let mut modes = BTreeSet::new();
                    for sample in chunk {
                        block.pos_min = component_min(block.pos_min, sample.position);
                        block.pos_max = component_max(block.pos_max, sample.position);
                        block.acc_min = component_min(block.acc_min, sample.acceleration);
                        block.acc_max = component_max(block.acc_max, sample.acceleration);
                        modes.insert(sample.mode.code());
                    }
                    block.modes = modes.into_iter().collect();
                    block
                })
                .collect();
            samples.push(Some(stepped));
            blocks.push(run_blocks);
        }
        CalibrationBlocks { samples, blocks }
    }
}

/// The largest per-axis separation between two axis-aligned boxes — an
/// upper bound on the distance between any point of one and any point of
/// the other. Componentwise `max(a_max − b_min, b_max − a_min)` is
/// non-negative and at least the true `|Δ|` on that axis, so the norm
/// bounds every pairwise distance in the block pair.
fn aabb_max_distance(a_min: Vec3, a_max: Vec3, b_min: Vec3, b_max: Vec3) -> f64 {
    let dx = (a_max.x - b_min.x).max(b_max.x - a_min.x);
    let dy = (a_max.y - b_min.y).max(b_max.y - a_min.y);
    let dz = (a_max.z - b_min.z).max(b_max.z - a_min.z);
    (dx * dx + dy * dy + dz * dz).sqrt()
}

/// Distance from a point to an axis-aligned box (0 inside).
fn aabb_distance(point: Vec3, lo: Vec3, hi: Vec3) -> f64 {
    let dx = (lo.x - point.x).max(0.0).max(point.x - hi.x);
    let dy = (lo.y - point.y).max(0.0).max(point.y - hi.y);
    let dz = (lo.z - point.z).max(0.0).max(point.z - hi.z);
    (dx * dx + dy * dy + dz * dz).sqrt()
}

/// The invariant monitor, calibrated from fault-free profiling runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvariantMonitor {
    config: MonitorConfig,
    profiling: Vec<Trace>,
    mode_graph: ModeGraph,
    /// Memoized all-pairs mode distances (built once per campaign).
    distances: ModeDistanceTable,
    /// Per-timestep bounds accelerating the Eq. 1 check.
    envelope: LivelinessEnvelope,
    diameter: f64,
    position_scale: f64,
    acceleration_scale: f64,
    /// The calibrated threshold `τ` (before the tolerance factor).
    tau: f64,
    /// Common duration of the profiling runs (s).
    duration: f64,
    home: Vec3,
}

impl InvariantMonitor {
    /// Calibrates a monitor from fault-free profiling runs.
    ///
    /// # Panics
    ///
    /// Panics if `profiling` is empty.
    pub fn calibrate(profiling: Vec<Trace>, config: MonitorConfig) -> Self {
        assert!(
            !profiling.is_empty(),
            "at least one profiling run is required"
        );
        let mode_graph = ModeGraph::from_traces(profiling.iter());
        // All-pairs mode distances, memoized once: every state-tuple
        // comparison below (and every per-sample check afterwards) is an
        // O(1) lookup instead of a BFS.
        let distances = mode_graph.distance_table();
        let diameter = distances.diameter();
        let duration = profiling.iter().map(|t| t.duration).fold(0.0, f64::max);
        let sample_interval = profiling[0].sample_interval;
        let envelope = LivelinessEnvelope::build(&profiling, &config, duration);

        // Normalization constants P̄ and Ā: the largest pairwise distance at
        // the same time offset between any two profiling runs — block-
        // bounded so pairs whose envelopes cannot raise either maximum
        // are skipped without sampling (see [`CalibrationBlocks`]).
        let mut position_scale = config.min_position_scale;
        let mut acceleration_scale = config.min_acceleration_scale;
        let steps = (duration / sample_interval).ceil() as usize;
        let cal = CalibrationBlocks::build(&profiling, sample_interval, steps);
        for i in 0..profiling.len() {
            for j in (i + 1)..profiling.len() {
                let (Some(a_samples), Some(b_samples)) = (&cal.samples[i], &cal.samples[j]) else {
                    continue;
                };
                for (block_index, (a_block, b_block)) in
                    cal.blocks[i].iter().zip(cal.blocks[j].iter()).enumerate()
                {
                    let pos_bound = aabb_max_distance(
                        a_block.pos_min,
                        a_block.pos_max,
                        b_block.pos_min,
                        b_block.pos_max,
                    );
                    let acc_bound = aabb_max_distance(
                        a_block.acc_min,
                        a_block.acc_max,
                        b_block.acc_min,
                        b_block.acc_max,
                    );
                    if pos_bound <= position_scale && acc_bound <= acceleration_scale {
                        continue; // cannot raise either maximum
                    }
                    let lo = block_index * CALIBRATION_BLOCK;
                    let hi = (lo + CALIBRATION_BLOCK).min(a_samples.len());
                    for k in lo..hi {
                        let (a, b) = (&a_samples[k], &b_samples[k]);
                        position_scale = position_scale.max(a.position.distance(b.position));
                        acceleration_scale =
                            acceleration_scale.max(a.acceleration.distance(b.acceleration));
                    }
                }
            }
        }

        let home = profiling[0]
            .samples
            .first()
            .map(|s| Vec3::new(s.position.x, s.position.y, 0.0))
            .unwrap_or(Vec3::ZERO);

        let mut monitor = InvariantMonitor {
            config,
            profiling,
            mode_graph,
            distances,
            envelope,
            diameter,
            position_scale,
            acceleration_scale,
            tau: 0.0,
            duration,
            home,
        };

        // τ: the largest distance between any two profiling runs at the
        // same time offset. Same block-bounded skip as the scales above,
        // with the mode term bounded by the worst mode pair across the
        // two blocks' mode sets: a block pair whose distance bound cannot
        // exceed the running τ is provably maximum-free, so the loop
        // computes exact state distances only where the envelopes
        // overlap least — the result equals the brute-force τ bit for
        // bit (the oracle-equivalence test below pins this).
        let mut tau: f64 = 0.0;
        for i in 0..monitor.profiling.len() {
            for j in (i + 1)..monitor.profiling.len() {
                let (Some(a_samples), Some(b_samples)) = (&cal.samples[i], &cal.samples[j]) else {
                    continue;
                };
                for (block_index, (a_block, b_block)) in
                    cal.blocks[i].iter().zip(cal.blocks[j].iter()).enumerate()
                {
                    let dp = aabb_max_distance(
                        a_block.pos_min,
                        a_block.pos_max,
                        b_block.pos_min,
                        b_block.pos_max,
                    ) * monitor.diameter
                        / monitor.position_scale;
                    let da = aabb_max_distance(
                        a_block.acc_min,
                        a_block.acc_max,
                        b_block.acc_min,
                        b_block.acc_max,
                    ) * monitor.diameter
                        / monitor.acceleration_scale;
                    let mut dm: f64 = 0.0;
                    for &ma in &a_block.modes {
                        for &mb in &b_block.modes {
                            dm = dm.max(monitor.distances.distance(ma, mb));
                        }
                    }
                    let bound = (dp * dp + da * da + dm * dm).sqrt();
                    if bound <= tau {
                        continue; // cannot raise τ
                    }
                    let lo = block_index * CALIBRATION_BLOCK;
                    let hi = (lo + CALIBRATION_BLOCK).min(a_samples.len());
                    for k in lo..hi {
                        tau = tau.max(monitor.state_distance(&a_samples[k], &b_samples[k]));
                    }
                }
            }
        }
        // With a single profiling run (or perfectly identical runs) τ would
        // be zero; fall back to one mode-graph hop as the minimum
        // meaningful deviation.
        monitor.tau = if tau > 1e-9 { tau } else { 1.0 };
        monitor
    }

    /// The calibrated threshold `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The observed mode graph.
    pub fn mode_graph(&self) -> &ModeGraph {
        &self.mode_graph
    }

    /// The memoized all-pairs mode-distance table.
    pub fn distance_table(&self) -> &ModeDistanceTable {
        &self.distances
    }

    /// The per-timestep liveliness envelope.
    pub fn envelope(&self) -> &LivelinessEnvelope {
        &self.envelope
    }

    /// The fault-free profiling runs the monitor was calibrated from.
    pub fn profiling(&self) -> &[Trace] {
        &self.profiling
    }

    /// The normalization constants `(P̄, Ā, D)`.
    pub fn normalization(&self) -> (f64, f64, f64) {
        (self.position_scale, self.acceleration_scale, self.diameter)
    }

    /// The normalized distance between two state tuples (the `d(S_i, S_j)`
    /// of §IV.C.2).
    pub fn state_distance(&self, a: &StateSample, b: &StateSample) -> f64 {
        let dp = a.position.distance(b.position) * self.diameter / self.position_scale;
        let da = a.acceleration.distance(b.acceleration) * self.diameter / self.acceleration_scale;
        let dm = self.distances.distance(a.mode.code(), b.mode.code());
        (dp * dp + da * da + dm * dm).sqrt()
    }

    /// A lower bound on the Eq. 1 minimum for `sample`: the distance to
    /// the envelope cell's bounds can only under-estimate the distance to
    /// any actual profiling sample in the window.
    fn envelope_lower_bound(&self, sample: &StateSample) -> Option<f64> {
        let cell = self.envelope.cell_at(sample.time)?;
        let dp = aabb_distance(sample.position, cell.pos_min, cell.pos_max) * self.diameter
            / self.position_scale;
        let da = aabb_distance(sample.acceleration, cell.acc_min, cell.acc_max) * self.diameter
            / self.acceleration_scale;
        let dm = cell
            .modes
            .iter()
            .map(|&m| self.distances.distance(sample.mode.code(), m))
            .fold(f64::INFINITY, f64::min);
        if dm.is_finite() {
            Some((dp * dp + da * da + dm * dm).sqrt())
        } else {
            None
        }
    }

    /// The exact Eq. 1 minimum: the smallest normalized distance between
    /// `sample` and any profiling sample within the configured time
    /// window (infinite when no reference exists).
    fn min_profiling_distance(&self, sample: &StateSample, interval: f64, window: i64) -> f64 {
        let mut min_distance = f64::INFINITY;
        for reference_run in &self.profiling {
            for offset in -window..=window {
                let t = sample.time + offset as f64 * interval;
                if t < 0.0 {
                    continue;
                }
                if let Some(reference) = reference_run.sample_at(t) {
                    min_distance = min_distance.min(self.state_distance(sample, reference));
                }
            }
        }
        min_distance
    }

    /// Amortised-O(1) resolution of "is some reference within the
    /// threshold?" — the envelope lower bound proves divergence without
    /// scanning, and an outward-from-zero probe proves conformance after
    /// computing only a handful of real distances (the nearest reference
    /// is almost always at, or a benign timing shift away from, the same
    /// time offset). Returns `true` only when an actual in-window
    /// reference sits within the threshold, so the verdict always equals
    /// the brute-force scan's.
    fn within_threshold(
        &self,
        sample: &StateSample,
        threshold: f64,
        interval: f64,
        window: i64,
    ) -> bool {
        if let Some(lower_bound) = self.envelope_lower_bound(sample) {
            if lower_bound > threshold {
                return false;
            }
        }
        for step in 0..=window {
            for offset in [step, -step] {
                let t = sample.time + offset as f64 * interval;
                if t < 0.0 {
                    continue;
                }
                for reference_run in &self.profiling {
                    if let Some(reference) = reference_run.sample_at(t) {
                        if self.state_distance(sample, reference) <= threshold {
                            return true;
                        }
                    }
                }
                if step == 0 {
                    break; // +0 and -0 are the same probe
                }
            }
        }
        false
    }

    /// Checks a test run against the calibrated invariants and returns the
    /// violations found (empty when the run is safe and live).
    pub fn check(&self, trace: &Trace) -> Vec<Violation> {
        let mut violations = Vec::new();

        // Safety: physical collision.
        if let Some(collision) = trace.collision {
            let time = trace
                .samples
                .iter()
                .find(|s| s.position.distance(collision.position) < 1.0)
                .map(|s| s.time)
                .unwrap_or(trace.duration);
            violations.push(Violation {
                kind: ViolationKind::Collision {
                    impact_speed: collision.impact_speed,
                },
                time,
                mode: trace.mode_at(time).unwrap_or(OperatingMode::Crashed),
            });
        }

        // Liveliness (Equation 1) for non-safe modes; progress invariants
        // for safe modes. The per-sample Eq. 1 check is resolved through
        // the precomputed envelope + outward probe in amortised O(1); the
        // full `runs × window` scan only runs to compute the exact
        // distance of an actual violation (at most once — the check stops
        // at the first one).
        let threshold = self.tau * self.config.tolerance_factor;
        let interval = self.profiling[0].sample_interval.max(1e-6);
        let window_steps = (self.config.time_window / interval).round() as i64;
        let mut safe_mode_entry: Option<(OperatingMode, f64)> = None;
        // Built lazily on the first safe-mode sample; traces that never
        // enter a safe mode pay nothing.
        let mut progress: Option<ProgressEnvelope> = None;
        for (index, sample) in trace.samples.iter().enumerate() {
            if sample.time > self.duration {
                break;
            }
            let mode = sample.mode;
            if mode.is_safe_mode() {
                let entry = match safe_mode_entry {
                    Some((m, t)) if m == mode => t,
                    _ => {
                        safe_mode_entry = Some((mode, sample.time));
                        sample.time
                    }
                };
                let envelope =
                    progress.get_or_insert_with(|| ProgressEnvelope::build(trace, self.home));
                if let Some(v) = self.check_safe_mode_progress(
                    envelope,
                    trace.sample_interval,
                    mode,
                    entry,
                    index,
                    sample,
                ) {
                    violations.push(v);
                    break;
                }
                continue;
            }
            safe_mode_entry = None;
            if self.within_threshold(sample, threshold, interval, window_steps) {
                continue;
            }
            let min_distance = self.min_profiling_distance(sample, interval, window_steps);
            if min_distance.is_finite() && min_distance > threshold {
                violations.push(Violation {
                    kind: ViolationKind::LivelinessDivergence {
                        distance: min_distance,
                        threshold,
                    },
                    time: sample.time,
                    mode,
                });
                break;
            }
        }

        // Protocol invariants: anomalies the runner's link tracker
        // recorded map one-to-one onto violations. Appended after the
        // physical checks so sensor-only campaigns (whose traces carry no
        // protocol events) see byte-identical output.
        for event in &trace.protocol {
            let kind = match &event.kind {
                crate::trace::ProtocolEventKind::InAirDisarm { altitude } => {
                    ViolationKind::InAirDisarm {
                        altitude: *altitude,
                    }
                }
                crate::trace::ProtocolEventKind::AckTimeout {
                    command, window, ..
                } => ViolationKind::CommandAckTimeout {
                    command: command.clone(),
                    window: *window,
                },
                crate::trace::ProtocolEventKind::MissionAliasing {
                    expected_items,
                    matching_items,
                } => ViolationKind::MissionAliasing {
                    expected_items: *expected_items,
                    matching_items: *matching_items,
                },
            };
            violations.push(Violation {
                kind,
                time: event.time,
                mode: trace
                    .mode_at(event.time)
                    .unwrap_or(OperatingMode::PreFlight),
            });
        }

        violations
    }

    /// Progress invariant for safe modes — landing must keep descending,
    /// return-to-launch must keep approaching home (or descending once
    /// above it) — evaluated against the precomputed [`ProgressEnvelope`]
    /// in O(1) per sample: a landed-tail quick-accept, then pure array
    /// arithmetic. Byte-identical to the exact per-sample walk (kept
    /// below as the test oracle).
    fn check_safe_mode_progress(
        &self,
        envelope: &ProgressEnvelope,
        sample_interval: f64,
        mode: OperatingMode,
        entered_at: f64,
        index: usize,
        sample: &StateSample,
    ) -> Option<Violation> {
        let cfg = &self.config;
        if sample.time - entered_at < cfg.safe_mode_grace {
            return None;
        }
        // Quick-accept: inside the landed tail `on_ground` holds, and
        // every safe mode's invariant short-circuits on it (modes
        // without an invariant answer `None` regardless).
        if index >= envelope.landed_from {
            return None;
        }
        // The exact walk's `trace.sample_at(t)` lookup, replayed on the
        // precomputed arrays: same rounding, same clamping.
        let earlier = (((sample.time - cfg.progress_window) / sample_interval).round() as usize)
            .min(envelope.time.len() - 1);
        // Only compare windows fully inside the same safe-mode stretch.
        if envelope.time[earlier] < entered_at {
            return None;
        }
        let descended = envelope.alt[earlier] - envelope.alt[index];
        let on_ground = envelope.alt[index] < 0.5;
        match mode {
            OperatingMode::Land | OperatingMode::Brake => {
                if on_ground || descended >= cfg.min_progress {
                    None
                } else {
                    Some(Violation {
                        kind: ViolationKind::SafeModeStalled { mode: mode.name() },
                        time: sample.time,
                        mode,
                    })
                }
            }
            OperatingMode::ReturnToLaunch => {
                let approach = envelope.home_dist[earlier] - envelope.home_dist[index];
                let near_home = envelope.home_dist[index] < 3.0;
                if on_ground
                    || near_home
                    || approach >= cfg.min_progress
                    || descended >= cfg.min_progress
                {
                    None
                } else {
                    Some(Violation {
                        kind: ViolationKind::SafeModeStalled { mode: mode.name() },
                        time: sample.time,
                        mode,
                    })
                }
            }
            _ => None,
        }
    }

    /// The pre-envelope progress invariant, verbatim: the oracle the
    /// equivalence tests compare [`InvariantMonitor::check`] against.
    #[cfg(test)]
    fn check_safe_mode_progress_exact(
        &self,
        trace: &Trace,
        mode: OperatingMode,
        entered_at: f64,
        sample: &StateSample,
    ) -> Option<Violation> {
        let cfg = &self.config;
        if sample.time - entered_at < cfg.safe_mode_grace {
            return None;
        }
        let earlier = trace.sample_at(sample.time - cfg.progress_window)?;
        // Only compare windows fully inside the same safe-mode stretch.
        if earlier.time < entered_at {
            return None;
        }
        let descended = earlier.position.z - sample.position.z;
        let on_ground = sample.position.z < 0.5;
        match mode {
            OperatingMode::Land | OperatingMode::Brake => {
                if on_ground || descended >= cfg.min_progress {
                    None
                } else {
                    Some(Violation {
                        kind: ViolationKind::SafeModeStalled { mode: mode.name() },
                        time: sample.time,
                        mode,
                    })
                }
            }
            OperatingMode::ReturnToLaunch => {
                let approach = earlier.position.horizontal_distance(self.home)
                    - sample.position.horizontal_distance(self.home);
                let near_home = sample.position.horizontal_distance(self.home) < 3.0;
                if on_ground
                    || near_home
                    || approach >= cfg.min_progress
                    || descended >= cfg.min_progress
                {
                    None
                } else {
                    Some(Violation {
                        kind: ViolationKind::SafeModeStalled { mode: mode.name() },
                        time: sample.time,
                        mode,
                    })
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ModeTransition;
    use avis_workload::WorkloadStatus;

    fn sample(t: f64, pos: Vec3, mode: OperatingMode) -> StateSample {
        StateSample {
            time: t,
            position: pos,
            acceleration: Vec3::ZERO,
            mode,
        }
    }

    /// Builds a synthetic "mission-like" trace: climb, cruise east, land.
    fn synthetic_run(offset: f64) -> Trace {
        let mut samples = Vec::new();
        let mut transitions = vec![ModeTransition {
            time: 0.0,
            mode: OperatingMode::PreFlight,
        }];
        let dt = 0.5;
        let mut mode = OperatingMode::PreFlight;
        for k in 0..200 {
            let t = k as f64 * dt;
            let (pos, new_mode) = if t < 2.0 {
                (Vec3::new(offset, 0.0, 0.0), OperatingMode::PreFlight)
            } else if t < 12.0 {
                (
                    Vec3::new(offset, 0.0, (t - 2.0) * 2.0),
                    OperatingMode::Takeoff,
                )
            } else if t < 40.0 {
                (
                    Vec3::new(offset + (t - 12.0) * 1.0, 0.0, 20.0),
                    OperatingMode::Auto { leg: 1 },
                )
            } else if t < 70.0 {
                (
                    Vec3::new(offset + 28.0, 0.0, (20.0 - (t - 40.0) * 0.7).max(0.0)),
                    OperatingMode::Land,
                )
            } else {
                (Vec3::new(offset + 28.0, 0.0, 0.0), OperatingMode::PreFlight)
            };
            if new_mode != mode {
                transitions.push(ModeTransition {
                    time: t,
                    mode: new_mode,
                });
                mode = new_mode;
            }
            samples.push(sample(t, pos, mode));
        }
        Trace {
            sample_interval: dt,
            samples,
            mode_transitions: transitions,
            collision: None,
            fence_violations: 0,
            workload_status: WorkloadStatus::Passed,
            duration: 100.0,
            protocol: Vec::new(),
        }
    }

    fn calibrated_monitor() -> InvariantMonitor {
        let profiling = vec![synthetic_run(0.0), synthetic_run(0.4), synthetic_run(-0.3)];
        InvariantMonitor::calibrate(profiling, MonitorConfig::default())
    }

    #[test]
    fn mode_graph_distances() {
        let trace = synthetic_run(0.0);
        let graph = ModeGraph::from_traces([&trace]);
        assert_eq!(graph.node_count(), 4);
        let pre = OperatingMode::PreFlight.code();
        let takeoff = OperatingMode::Takeoff.code();
        let auto = OperatingMode::Auto { leg: 1 }.code();
        let land = OperatingMode::Land.code();
        assert_eq!(graph.distance(pre, pre), 0.0);
        assert_eq!(graph.distance(pre, takeoff), 1.0);
        assert_eq!(graph.distance(pre, auto), 2.0);
        assert_eq!(graph.distance(pre, land), 3.0);
        // Unknown modes are maximally distant.
        assert!(graph.distance(pre, OperatingMode::PosHold.code()) > graph.diameter());
        assert!(graph.diameter() >= 3.0);
    }

    #[test]
    fn mode_graph_falls_back_to_undirected_paths() {
        let trace = synthetic_run(0.0);
        let graph = ModeGraph::from_traces([&trace]);
        // There is no directed path from Land back to PreFlight start node
        // except the recorded transition Land -> PreFlight; check reverse
        // direction uses the undirected fallback rather than "unreachable".
        let land = OperatingMode::Land.code();
        let takeoff = OperatingMode::Takeoff.code();
        let d = graph.distance(land, takeoff);
        assert!(d <= graph.diameter() + 1.0);
        assert!(d > 0.0);
    }

    #[test]
    fn calibration_produces_positive_tau_and_scales() {
        let monitor = calibrated_monitor();
        assert!(monitor.tau() > 0.0);
        let (p, a, d) = monitor.normalization();
        assert!(p >= 0.7, "position scale includes the 0.7 m offsets: {p}");
        assert!(a >= 0.5);
        assert!(d >= 3.0);
    }

    #[test]
    fn profiling_runs_check_clean_against_each_other() {
        let monitor = calibrated_monitor();
        for run in [synthetic_run(0.2), synthetic_run(-0.2)] {
            assert!(
                monitor.check(&run).is_empty(),
                "a near-profiling run must not be flagged"
            );
        }
    }

    #[test]
    fn collision_reported_as_safety_violation() {
        let monitor = calibrated_monitor();
        let mut run = synthetic_run(0.0);
        run.collision = Some(avis_sim::Collision {
            kind: avis_sim::CollisionKind::Ground,
            impact_speed: 4.2,
            position: Vec3::new(10.0, 0.0, 0.0),
        });
        let violations = monitor.check(&run);
        assert!(violations.iter().any(
            |v| matches!(v.kind, ViolationKind::Collision { impact_speed } if impact_speed > 4.0)
        ));
    }

    #[test]
    fn fly_away_reported_as_liveliness_violation() {
        let monitor = calibrated_monitor();
        let mut run = synthetic_run(0.0);
        // From t = 20 s the vehicle departs sideways at 5 m/s instead of
        // following the mission (and never enters a safe mode).
        for s in run.samples.iter_mut().filter(|s| s.time >= 20.0) {
            s.position.y = (s.time - 20.0) * 5.0;
            s.mode = OperatingMode::Auto { leg: 1 };
        }
        run.mode_transitions.retain(|t| t.time < 20.0);
        let violations = monitor.check(&run);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::LivelinessDivergence { .. })),
            "violations: {violations:?}"
        );
    }

    #[test]
    fn safe_mode_exempts_liveliness_but_requires_progress() {
        let monitor = calibrated_monitor();
        // A run that diverges from the mission but is descending in Land
        // mode: allowed (safety preserved at the expense of liveliness).
        let mut diverted = synthetic_run(0.0);
        for s in diverted.samples.iter_mut().filter(|s| s.time >= 20.0) {
            let dt = s.time - 20.0;
            s.position = Vec3::new(40.0, 10.0, (20.0 - dt * 0.7).max(0.0));
            s.mode = OperatingMode::Land;
        }
        assert!(
            monitor.check(&diverted).is_empty(),
            "a diverted but correctly landing vehicle is not unsafe"
        );

        // The same divergence but hovering in Land mode forever: stalled.
        let mut stalled = synthetic_run(0.0);
        for s in stalled.samples.iter_mut().filter(|s| s.time >= 20.0) {
            s.position = Vec3::new(40.0, 10.0, 20.0);
            s.mode = OperatingMode::Land;
        }
        let violations = monitor.check(&stalled);
        assert!(violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::SafeModeStalled { .. })));
    }

    #[test]
    fn rtl_flying_away_from_home_is_flagged() {
        let monitor = calibrated_monitor();
        let mut run = synthetic_run(0.0);
        for s in run.samples.iter_mut().filter(|s| s.time >= 20.0) {
            let dt = s.time - 20.0;
            s.position = Vec3::new(8.0 + dt * 4.0, 0.0, 20.0);
            s.mode = OperatingMode::ReturnToLaunch;
        }
        let violations = monitor.check(&run);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::SafeModeStalled { .. })),
            "an RTL that departs from home must be flagged: {violations:?}"
        );
    }

    #[test]
    fn takeoff_failure_is_a_liveliness_violation() {
        let monitor = calibrated_monitor();
        let mut run = synthetic_run(0.0);
        // The vehicle never climbs above 1.5 m.
        for s in run.samples.iter_mut() {
            s.position.z = s.position.z.min(1.5);
            if s.time >= 2.0 && s.time < 70.0 {
                s.mode = OperatingMode::Takeoff;
            }
        }
        let violations = monitor.check(&run);
        assert!(violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::LivelinessDivergence { .. })));
    }

    #[test]
    #[should_panic(expected = "at least one profiling run")]
    fn calibrate_requires_profiling_runs() {
        let _ = InvariantMonitor::calibrate(Vec::new(), MonitorConfig::default());
    }

    #[test]
    fn calibrate_tolerates_sample_less_profiling_runs() {
        // A degenerate but previously-accepted input: profiling traces
        // with no samples. The envelope must stay empty (not panic) and
        // the check must keep reporting nothing, reference-free.
        let empty = Trace {
            sample_interval: 0.5,
            samples: Vec::new(),
            mode_transitions: Vec::new(),
            collision: None,
            fence_violations: 0,
            workload_status: WorkloadStatus::Passed,
            duration: 10.0,
            protocol: Vec::new(),
        };
        let monitor = InvariantMonitor::calibrate(vec![empty], MonitorConfig::default());
        assert!(monitor.envelope().is_empty());
        let run = synthetic_run(0.0);
        assert_eq!(monitor.check(&run), brute_force_check(&monitor, &run));
        assert!(monitor.check(&run).is_empty());
    }

    /// The pre-envelope check, kept verbatim as the oracle: a straight
    /// `runs × window` scan per sample with no quick paths.
    fn brute_force_check(monitor: &InvariantMonitor, trace: &Trace) -> Vec<Violation> {
        let mut violations = Vec::new();
        if let Some(collision) = trace.collision {
            let time = trace
                .samples
                .iter()
                .find(|s| s.position.distance(collision.position) < 1.0)
                .map(|s| s.time)
                .unwrap_or(trace.duration);
            violations.push(Violation {
                kind: ViolationKind::Collision {
                    impact_speed: collision.impact_speed,
                },
                time,
                mode: trace.mode_at(time).unwrap_or(OperatingMode::Crashed),
            });
        }
        let threshold = monitor.tau * monitor.config.tolerance_factor;
        let mut safe_mode_entry: Option<(OperatingMode, f64)> = None;
        for sample in &trace.samples {
            if sample.time > monitor.duration {
                break;
            }
            let mode = sample.mode;
            if mode.is_safe_mode() {
                let entry = match safe_mode_entry {
                    Some((m, t)) if m == mode => t,
                    _ => {
                        safe_mode_entry = Some((mode, sample.time));
                        sample.time
                    }
                };
                if let Some(v) = monitor.check_safe_mode_progress_exact(trace, mode, entry, sample)
                {
                    violations.push(v);
                    break;
                }
                continue;
            }
            safe_mode_entry = None;
            let interval = monitor.profiling[0].sample_interval.max(1e-6);
            let window_steps = (monitor.config.time_window / interval).round() as i64;
            let mut min_distance = f64::INFINITY;
            for reference_run in &monitor.profiling {
                for offset in -window_steps..=window_steps {
                    let t = sample.time + offset as f64 * interval;
                    if t < 0.0 {
                        continue;
                    }
                    if let Some(reference) = reference_run.sample_at(t) {
                        min_distance = min_distance.min(monitor.state_distance(sample, reference));
                    }
                }
            }
            if min_distance.is_finite() && min_distance > threshold {
                violations.push(Violation {
                    kind: ViolationKind::LivelinessDivergence {
                        distance: min_distance,
                        threshold,
                    },
                    time: sample.time,
                    mode,
                });
                break;
            }
        }
        violations
    }

    #[test]
    fn distance_table_memoizes_the_graph_exactly() {
        let traces = [synthetic_run(0.0), synthetic_run(0.4)];
        let graph = ModeGraph::from_traces(traces.iter());
        let table = graph.distance_table();
        assert_eq!(table.mode_count(), graph.node_count());
        assert_eq!(table.diameter(), graph.diameter());
        // Every known pair, plus unknown modes on both sides.
        let mut codes: Vec<ModeCode> = graph.nodes.iter().copied().collect();
        codes.push(OperatingMode::PosHold.code());
        codes.push(OperatingMode::Stabilize.code());
        for &a in &codes {
            for &b in &codes {
                assert_eq!(
                    table.distance(a, b),
                    graph.distance(a, b),
                    "table diverged from BFS at ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn envelope_check_matches_brute_force_on_perturbed_runs() {
        use avis_sim::SimRng;
        let monitor = calibrated_monitor();
        assert!(!monitor.envelope().is_empty());
        let mut rng = SimRng::seed_from_u64(2024);
        for case in 0..40 {
            let mut run = synthetic_run(rng.uniform_range(-0.5, 0.5));
            // Random perturbations covering conforming runs, timing
            // shifts, marginal drifts and outright fly-aways.
            let drift = rng.uniform_range(0.0, 8.0);
            let start = rng.uniform_range(5.0, 60.0);
            let wrong_mode = rng.chance(0.3);
            for s in run.samples.iter_mut().filter(|s| s.time >= start) {
                s.position.y += (s.time - start) * drift / 10.0;
                if rng.chance(0.1) {
                    s.acceleration.x += rng.uniform_range(-2.0, 2.0);
                }
                if wrong_mode {
                    s.mode = OperatingMode::Guided;
                }
            }
            if wrong_mode {
                run.mode_transitions.retain(|t| t.time < start);
            }
            assert_eq!(
                monitor.check(&run),
                brute_force_check(&monitor, &run),
                "case {case}: envelope-accelerated check diverged (drift {drift}, start {start}, wrong_mode {wrong_mode})"
            );
        }
    }

    #[test]
    fn envelope_check_matches_brute_force_on_existing_scenarios() {
        let monitor = calibrated_monitor();
        // The named scenarios the other tests exercise, pinned one-by-one
        // against the oracle.
        let mut fly_away = synthetic_run(0.0);
        for s in fly_away.samples.iter_mut().filter(|s| s.time >= 20.0) {
            s.position.y = (s.time - 20.0) * 5.0;
            s.mode = OperatingMode::Auto { leg: 1 };
        }
        fly_away.mode_transitions.retain(|t| t.time < 20.0);
        let mut stalled = synthetic_run(0.0);
        for s in stalled.samples.iter_mut().filter(|s| s.time >= 20.0) {
            s.position = Vec3::new(40.0, 10.0, 20.0);
            s.mode = OperatingMode::Land;
        }
        let mut crashed = synthetic_run(0.1);
        crashed.collision = Some(avis_sim::Collision {
            kind: avis_sim::CollisionKind::Ground,
            impact_speed: 4.2,
            position: Vec3::new(10.0, 0.0, 0.0),
        });
        for run in [synthetic_run(0.2), fly_away, stalled, crashed] {
            assert_eq!(monitor.check(&run), brute_force_check(&monitor, &run));
        }
    }

    #[test]
    fn progress_envelope_matches_exact_walk_on_safe_mode_stretches() {
        use avis_sim::SimRng;
        // Randomised safe-mode behaviour — clean landings, stalls,
        // hovering RTLs, approaches, late descents, landed tails — must
        // produce byte-identical violations through the amortised
        // envelope path and the exact per-sample walk.
        let monitor = calibrated_monitor();
        let mut rng = SimRng::seed_from_u64(77);
        for case in 0..60 {
            let mut run = synthetic_run(rng.uniform_range(-0.4, 0.4));
            let start = rng.uniform_range(10.0, 50.0);
            let mode = match rng.index(3) {
                0 => OperatingMode::Land,
                1 => OperatingMode::Brake,
                _ => OperatingMode::ReturnToLaunch,
            };
            // 0: stall (hover), 1: descend, 2: approach home, 3: descend
            // then hold just above ground, 4: land fully (long landed tail).
            let behaviour = rng.index(5);
            let rate = rng.uniform_range(0.05, 1.2);
            for s in run.samples.iter_mut().filter(|s| s.time >= start) {
                let dt = s.time - start;
                s.mode = mode;
                match behaviour {
                    0 => s.position = Vec3::new(25.0, 8.0, 18.0),
                    1 => s.position = Vec3::new(25.0, 8.0, (18.0 - dt * rate).max(0.0)),
                    2 => {
                        s.position = Vec3::new((25.0 - dt * rate).max(0.0), 0.0, 18.0);
                    }
                    3 => s.position = Vec3::new(25.0, 8.0, (18.0 - dt * rate).max(0.6)),
                    _ => s.position = Vec3::new(25.0, 8.0, (18.0 - dt * 2.0).max(0.0)),
                }
            }
            run.mode_transitions.retain(|t| t.time < start);
            assert_eq!(
                monitor.check(&run),
                brute_force_check(&monitor, &run),
                "case {case}: progress envelope diverged (mode {mode:?}, behaviour {behaviour}, start {start}, rate {rate})"
            );
        }
    }

    /// The pre-envelope calibration maxima, verbatim: the oracle the
    /// block-bounded calibration must reproduce bit for bit.
    fn brute_force_calibration(
        monitor: &InvariantMonitor,
        profiling: &[Trace],
        config: &MonitorConfig,
    ) -> (f64, f64, f64) {
        let interval = profiling[0].sample_interval;
        let steps = (monitor.duration / interval).ceil() as usize;
        let mut position_scale = config.min_position_scale;
        let mut acceleration_scale = config.min_acceleration_scale;
        for i in 0..profiling.len() {
            for j in (i + 1)..profiling.len() {
                for k in 0..=steps {
                    let t = k as f64 * interval;
                    let (Some(a), Some(b)) = (profiling[i].sample_at(t), profiling[j].sample_at(t))
                    else {
                        continue;
                    };
                    position_scale = position_scale.max(a.position.distance(b.position));
                    acceleration_scale =
                        acceleration_scale.max(a.acceleration.distance(b.acceleration));
                }
            }
        }
        let mut tau: f64 = 0.0;
        for i in 0..profiling.len() {
            for j in (i + 1)..profiling.len() {
                for k in 0..=steps {
                    let t = k as f64 * interval;
                    let (Some(a), Some(b)) = (profiling[i].sample_at(t), profiling[j].sample_at(t))
                    else {
                        continue;
                    };
                    tau = tau.max(monitor.state_distance(a, b));
                }
            }
        }
        let tau = if tau > 1e-9 { tau } else { 1.0 };
        (position_scale, acceleration_scale, tau)
    }

    #[test]
    fn block_bounded_calibration_matches_brute_force_exactly() {
        use avis_sim::SimRng;
        let mut rng = SimRng::seed_from_u64(404);
        for case in 0..6 {
            // A mixed population: clustered runs, spread runs, a run with
            // a divergent stretch (mode + trajectory), and — in half the
            // cases — a sample-less degenerate run.
            let mut profiling: Vec<Trace> = (0..5)
                .map(|_| synthetic_run(rng.uniform_range(-1.5, 1.5)))
                .collect();
            let mut divergent = synthetic_run(rng.uniform_range(-0.5, 0.5));
            let start = rng.uniform_range(10.0, 60.0);
            for s in divergent.samples.iter_mut().filter(|s| s.time >= start) {
                s.position.y += (s.time - start) * rng.uniform_range(0.2, 1.5);
                s.acceleration.x += rng.uniform_range(-1.0, 1.0);
            }
            profiling.push(divergent);
            if case % 2 == 0 {
                profiling.push(Trace {
                    sample_interval: 0.5,
                    samples: Vec::new(),
                    mode_transitions: Vec::new(),
                    collision: None,
                    fence_violations: 0,
                    workload_status: WorkloadStatus::Passed,
                    duration: 100.0,
                    protocol: Vec::new(),
                });
            }
            let config = MonitorConfig::default();
            let monitor = InvariantMonitor::calibrate(profiling.clone(), config.clone());
            let (p, a, tau) = brute_force_calibration(&monitor, &profiling, &config);
            let (mp, ma, _) = monitor.normalization();
            assert_eq!(mp, p, "case {case}: P̄ diverged from the brute force");
            assert_eq!(ma, a, "case {case}: Ā diverged from the brute force");
            assert_eq!(
                monitor.tau(),
                tau,
                "case {case}: τ diverged from the brute force"
            );
        }
    }

    #[test]
    fn violation_kind_display() {
        let c = ViolationKind::Collision { impact_speed: 3.5 };
        assert!(c.to_string().contains("3.5"));
        let l = ViolationKind::LivelinessDivergence {
            distance: 9.0,
            threshold: 2.0,
        };
        assert!(l.to_string().contains("9.00"));
        let s = ViolationKind::SafeModeStalled {
            mode: "rtl".to_string(),
        };
        assert!(s.to_string().contains("rtl"));
        let d = ViolationKind::InAirDisarm { altitude: 12.5 };
        assert!(d.to_string().contains("12.5"));
        let a = ViolationKind::CommandAckTimeout {
            command: "Arm".to_string(),
            window: 5.0,
        };
        assert!(a.to_string().contains("Arm"));
        let m = ViolationKind::MissionAliasing {
            expected_items: 6,
            matching_items: 4,
        };
        assert!(m.to_string().contains("4/6"));
    }

    #[test]
    fn protocol_events_map_to_violations() {
        use crate::trace::{ProtocolEvent, ProtocolEventKind};
        let monitor = calibrated_monitor();
        let mut run = synthetic_run(0.0);
        assert!(
            monitor.check(&run).is_empty(),
            "the protocol-free run is clean"
        );
        run.protocol = vec![
            ProtocolEvent {
                time: 30.0,
                kind: ProtocolEventKind::InAirDisarm { altitude: 12.0 },
            },
            ProtocolEvent {
                time: 40.0,
                kind: ProtocolEventKind::AckTimeout {
                    command: "Arm".to_string(),
                    sent_at: 35.0,
                    window: 5.0,
                },
            },
            ProtocolEvent {
                time: 5.0,
                kind: ProtocolEventKind::MissionAliasing {
                    expected_items: 6,
                    matching_items: 4,
                },
            },
        ];
        let violations = monitor.check(&run);
        assert_eq!(violations.len(), 3);
        assert!(matches!(
            violations[0].kind,
            ViolationKind::InAirDisarm { altitude } if altitude == 12.0
        ));
        assert_eq!(violations[0].time, 30.0);
        assert!(matches!(
            violations[1].kind,
            ViolationKind::CommandAckTimeout { ref command, .. } if command == "Arm"
        ));
        assert!(matches!(
            violations[2].kind,
            ViolationKind::MissionAliasing {
                expected_items: 6,
                matching_items: 4
            }
        ));
        // The mode is looked up from the transition log at the event time.
        assert_eq!(violations[0].mode, run.mode_at(30.0).unwrap());
    }
}
