//! Protocol-level invariant tracking on the GCS ↔ vehicle link.
//!
//! The [`ProtocolTracker`] rides along with the runner's lock-step loop
//! and observes the link from the ground station's perspective: the
//! commands the workload sends (before the fault shim touches them) and
//! the telemetry that actually arrives. From those two streams it derives
//! the protocol anomalies of [`crate::trace::ProtocolEventKind`]:
//!
//! - **in-air disarm** — the heartbeat's armed flag drops while the last
//!   telemetered state shows the vehicle airborne (a mid-air reboot or a
//!   mishandled duplicated arm command),
//! - **command-ack liveness** — a sent `ArmDisarm` / `SetMode` /
//!   `CommandTakeoff` that is never acknowledged (accepted *or* rejected)
//!   within a bounded window,
//! - **mission aliasing** — after an *accepted* mission upload, the
//!   mission stored on the vehicle differs from the one the workload
//!   sent (corrupted or duplicated upload frames silently reshaping the
//!   flight plan).
//!
//! The tracker is deterministic state carried by value inside
//! [`crate::snapshot::RunSnapshot`], so checkpointed runs observe exactly
//! what a cold run would.

use crate::trace::{ProtocolEvent, ProtocolEventKind};
use avis_firmware::mission::{decode_mission_item, encode_mission_item};
use avis_mavlite::{CommandKind, Message, MissionItem};
use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};

/// Altitude (m) above which a disarm observed over telemetry counts as
/// an in-air disarm rather than a normal post-landing shutdown.
const IN_AIR_ALTITUDE: f64 = 2.0;

/// Default command-ack liveness window (simulated seconds).
const DEFAULT_ACK_WINDOW: f64 = 5.0;

/// GCS-side protocol observer: feeds on sent commands and delivered
/// telemetry, emits [`ProtocolEvent`]s (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct ProtocolTracker {
    /// Liveness window for command acknowledgements (s).
    ack_window: f64,
    /// The armed flag of the last heartbeat the GCS received.
    armed_seen: Option<bool>,
    /// Altitude of the last `Status` the GCS received (m).
    last_altitude: f64,
    /// Landed flag of the last `Status` the GCS received.
    last_landed: bool,
    /// Commands sent but not yet acknowledged, in send order.
    pending_acks: Vec<(CommandKind, f64)>,
    /// Mission items of the upload currently in flight, as the workload
    /// sent them (before any link fault touched the frames).
    upload: Vec<MissionItem>,
    /// Anomalies observed so far, in time order.
    events: Vec<ProtocolEvent>,
}

impl Default for ProtocolTracker {
    fn default() -> Self {
        ProtocolTracker::new()
    }
}

impl ProtocolTracker {
    /// A fresh tracker with the default ack-liveness window.
    pub fn new() -> Self {
        ProtocolTracker {
            ack_window: DEFAULT_ACK_WINDOW,
            armed_seen: None,
            last_altitude: 0.0,
            last_landed: true,
            pending_acks: Vec::new(),
            upload: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Observes one command the workload is about to send (called before
    /// the fault shim, so the tracker records *intent*, not what survives
    /// the link).
    pub fn note_sent(&mut self, msg: &Message, now: f64) {
        match *msg {
            Message::ArmDisarm { .. } => self.pending_acks.push((CommandKind::Arm, now)),
            Message::SetMode { .. } => self.pending_acks.push((CommandKind::SetMode, now)),
            Message::CommandTakeoff { .. } => {
                self.pending_acks.push((CommandKind::Takeoff, now));
            }
            // A new upload handshake supersedes any previous recording.
            Message::MissionCount { .. } => self.upload.clear(),
            Message::MissionItemMsg { item } => self.upload.push(item),
            _ => {}
        }
    }

    /// Observes the telemetry delivered to the GCS this step.
    /// `vehicle_items` is the mission currently stored on the vehicle —
    /// the ground truth an accepted upload is compared against.
    pub fn note_delivered(&mut self, msgs: &[Message], now: f64, vehicle_items: &[MissionItem]) {
        self.expire_pending(now);
        for msg in msgs {
            match *msg {
                Message::Heartbeat { armed, .. } => {
                    let airborne = !self.last_landed && self.last_altitude > IN_AIR_ALTITUDE;
                    if self.armed_seen == Some(true) && !armed && airborne {
                        self.events.push(ProtocolEvent {
                            time: now,
                            kind: ProtocolEventKind::InAirDisarm {
                                altitude: self.last_altitude,
                            },
                        });
                    }
                    self.armed_seen = Some(armed);
                }
                Message::Status {
                    altitude, landed, ..
                } => {
                    self.last_altitude = altitude;
                    self.last_landed = landed;
                }
                // Any ack — accepted or rejected — satisfies liveness for
                // the oldest matching pending command.
                Message::CommandAck { command, .. } => {
                    if let Some(idx) = self.pending_acks.iter().position(|(k, _)| *k == command) {
                        self.pending_acks.remove(idx);
                    }
                }
                Message::MissionAck { accepted: true } if !self.upload.is_empty() => {
                    let matching = vehicle_items
                        .iter()
                        .zip(self.upload.iter())
                        .filter(|(a, b)| a == b)
                        .count();
                    if vehicle_items.len() != self.upload.len() || matching != self.upload.len() {
                        self.events.push(ProtocolEvent {
                            time: now,
                            kind: ProtocolEventKind::MissionAliasing {
                                expected_items: self.upload.len(),
                                matching_items: matching,
                            },
                        });
                    }
                    self.upload.clear();
                }
                _ => {}
            }
        }
    }

    /// Expires pending commands whose ack window has elapsed, recording
    /// one [`ProtocolEventKind::AckTimeout`] per expired command in send
    /// order.
    fn expire_pending(&mut self, now: f64) {
        let window = self.ack_window;
        let mut expired = Vec::new();
        self.pending_acks.retain(|&(kind, sent_at)| {
            if now - sent_at >= window {
                expired.push((kind, sent_at));
                false
            } else {
                true
            }
        });
        for (kind, sent_at) in expired {
            self.events.push(ProtocolEvent {
                time: now,
                kind: ProtocolEventKind::AckTimeout {
                    command: format!("{kind:?}"),
                    sent_at,
                    window,
                },
            });
        }
    }

    /// The anomalies observed so far, in time order.
    pub fn events(&self) -> &[ProtocolEvent] {
        &self.events
    }

    /// Consumes the tracker, yielding the recorded events (the runner
    /// moves them into the run's [`crate::trace::Trace`]).
    pub fn into_events(self) -> Vec<ProtocolEvent> {
        self.events
    }

    /// Serialise the tracker (full observer state, including recorded
    /// events, so a restored checkpoint reports exactly what a cold run
    /// would).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.f64(self.ack_window);
        w.option(self.armed_seen.as_ref(), |w, v| w.bool(*v));
        w.f64(self.last_altitude);
        w.bool(self.last_landed);
        w.seq(&self.pending_acks, |w, (kind, sent_at)| {
            w.u8(match kind {
                CommandKind::Arm => 0,
                CommandKind::SetMode => 1,
                CommandKind::Takeoff => 2,
            });
            w.f64(*sent_at);
        });
        w.seq(&self.upload, encode_mission_item);
        w.seq(&self.events, |w, e| e.encode(w));
    }

    /// Decode a tracker previously written by [`ProtocolTracker::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<ProtocolTracker> {
        Ok(ProtocolTracker {
            ack_window: r.f64()?,
            armed_seen: r.option(|r| r.bool())?,
            last_altitude: r.f64()?,
            last_landed: r.bool()?,
            pending_acks: r.seq(|r| {
                let kind = match r.u8()? {
                    0 => CommandKind::Arm,
                    1 => CommandKind::SetMode,
                    2 => CommandKind::Takeoff,
                    _ => return Err(CodecError::Malformed("command kind tag")),
                };
                Ok((kind, r.f64()?))
            })?,
            upload: r.seq(decode_mission_item)?,
            events: r.seq(ProtocolEvent::decode)?,
        })
    }

    /// Approximate heap bytes held (snapshot accounting).
    pub fn approx_bytes(&self) -> usize {
        self.pending_acks.len() * std::mem::size_of::<(CommandKind, f64)>()
            + self.upload.len() * std::mem::size_of::<MissionItem>()
            + self.events.len() * std::mem::size_of::<ProtocolEvent>()
            + 128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_mavlite::{AckResult, MissionCommand, ProtocolMode};

    fn status(altitude: f64, landed: bool) -> Message {
        Message::Status {
            x: 0.0,
            y: 0.0,
            altitude,
            climb_rate: 0.0,
            mission_seq: 0,
            landed,
        }
    }

    fn heartbeat(armed: bool) -> Message {
        Message::Heartbeat {
            mode: ProtocolMode::Auto,
            armed,
        }
    }

    #[test]
    fn in_air_disarm_is_detected_from_telemetry() {
        let mut tracker = ProtocolTracker::new();
        tracker.note_delivered(&[heartbeat(true), status(18.0, false)], 10.0, &[]);
        tracker.note_delivered(&[heartbeat(false)], 10.1, &[]);
        assert_eq!(tracker.events().len(), 1);
        assert!(matches!(
            tracker.events()[0].kind,
            ProtocolEventKind::InAirDisarm { altitude } if altitude == 18.0
        ));
    }

    #[test]
    fn post_landing_disarm_is_not_an_anomaly() {
        let mut tracker = ProtocolTracker::new();
        tracker.note_delivered(&[heartbeat(true), status(0.1, true)], 50.0, &[]);
        tracker.note_delivered(&[heartbeat(false)], 50.1, &[]);
        assert!(tracker.events().is_empty());
    }

    #[test]
    fn unacknowledged_command_times_out() {
        let mut tracker = ProtocolTracker::new();
        tracker.note_sent(&Message::ArmDisarm { arm: true }, 1.0);
        tracker.note_delivered(&[], 3.0, &[]);
        assert!(tracker.events().is_empty(), "window not yet elapsed");
        tracker.note_delivered(&[], 6.5, &[]);
        assert_eq!(tracker.events().len(), 1);
        assert!(matches!(
            &tracker.events()[0].kind,
            ProtocolEventKind::AckTimeout { command, sent_at, .. }
                if command == "Arm" && *sent_at == 1.0
        ));
    }

    #[test]
    fn any_ack_satisfies_liveness() {
        let mut tracker = ProtocolTracker::new();
        tracker.note_sent(
            &Message::SetMode {
                mode: ProtocolMode::Auto,
            },
            1.0,
        );
        tracker.note_delivered(
            &[Message::CommandAck {
                command: CommandKind::SetMode,
                result: AckResult::Rejected,
            }],
            1.1,
            &[],
        );
        tracker.note_delivered(&[], 20.0, &[]);
        assert!(tracker.events().is_empty());
    }

    #[test]
    fn mission_aliasing_fires_when_stored_mission_differs() {
        let sent = vec![
            MissionItem {
                seq: 0,
                command: MissionCommand::Takeoff { altitude: 20.0 },
            },
            MissionItem {
                seq: 1,
                command: MissionCommand::Land,
            },
        ];
        let mut tracker = ProtocolTracker::new();
        tracker.note_sent(&Message::MissionCount { count: 2 }, 1.0);
        for item in &sent {
            tracker.note_sent(&Message::MissionItemMsg { item: *item }, 1.0);
        }
        // The vehicle stored a duplicated first item: one of two matches.
        let stored = vec![sent[0], sent[0]];
        tracker.note_delivered(&[Message::MissionAck { accepted: true }], 2.0, &stored);
        assert_eq!(tracker.events().len(), 1);
        assert!(matches!(
            tracker.events()[0].kind,
            ProtocolEventKind::MissionAliasing {
                expected_items: 2,
                matching_items: 1,
            }
        ));
    }

    #[test]
    fn faithful_upload_is_silent() {
        let sent = vec![MissionItem {
            seq: 0,
            command: MissionCommand::Land,
        }];
        let mut tracker = ProtocolTracker::new();
        tracker.note_sent(&Message::MissionCount { count: 1 }, 1.0);
        tracker.note_sent(&Message::MissionItemMsg { item: sent[0] }, 1.0);
        tracker.note_delivered(&[Message::MissionAck { accepted: true }], 2.0, &sent);
        assert!(tracker.events().is_empty());
    }
}
