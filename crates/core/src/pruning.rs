//! Redundancy elimination (§IV.B.1): sensor-instance symmetry and
//! found-bug pruning.
//!
//! * **Sensor-instance symmetry** — the firmware's failure handling
//!   depends on the *role* (primary vs backup) of the failed instances,
//!   not on which physical instance failed. For a sensor with `N`
//!   instances this reduces the `N × (2^N − 1)` instance-level failure
//!   combinations the paper counts to `2N − 1` role-level representatives.
//! * **Found-bug pruning** — once a failure set triggers a bug at a
//!   timestamp, supersets of that failure set at the same timestamp are
//!   skipped: a vehicle that cannot handle one failure is unlikely to
//!   handle that failure plus more.

use avis_hinj::FaultPlan;
use avis_sim::{SensorInstance, SensorKind, SensorRole, SensorSuiteConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A role-level signature of one scheduled failure: kind, role and
/// millisecond-quantised start time. Backup indices are erased, which is
/// exactly the symmetry the pruning exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoleFailure {
    /// The failed sensor kind.
    pub kind: SensorKind,
    /// The failed instance's role.
    pub role: SensorRole,
    /// Failure start time in integer milliseconds.
    pub time_ms: i64,
}

/// The role-level signature of a complete fault plan (a multiset of
/// [`RoleFailure`]s, kept sorted).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct RoleSignature(Vec<RoleFailure>);

impl RoleSignature {
    /// Computes the signature of a fault plan.
    pub fn of(plan: &FaultPlan) -> Self {
        let mut failures: Vec<RoleFailure> = plan
            .specs()
            .map(|s| RoleFailure {
                kind: s.instance.kind,
                role: s.instance.role(),
                time_ms: (s.time * 1000.0).round() as i64,
            })
            .collect();
        failures.sort_unstable();
        RoleSignature(failures)
    }

    /// Whether `self` is a sub-multiset of `other` (every failure in `self`
    /// appears in `other`, respecting multiplicity).
    ///
    /// Both signatures are kept sorted by construction, so this is a
    /// single two-pointer merge walk — no allocation, O(len) — instead of
    /// cloning `other` and position-scanning it per element.
    pub fn is_subset_of(&self, other: &RoleSignature) -> bool {
        if self.0.len() > other.0.len() {
            return false;
        }
        let mut candidates = other.0.iter();
        'next_failure: for failure in &self.0 {
            for candidate in candidates.by_ref() {
                if candidate == failure {
                    continue 'next_failure;
                }
                if candidate > failure {
                    // Both vecs are sorted: once `other` has advanced past
                    // `failure`, no later element can match it.
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Number of role-level failures in the signature.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the signature is empty (the fault-free run).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Number of instance-level failure combinations for a sensor with `n`
/// redundant instances, as counted by the paper (`N × (2^N − 1)`).
pub fn naive_combination_count(n: u32) -> u64 {
    let subsets = 2u64.pow(n) - 1;
    n as u64 * subsets
}

/// Number of role-level representatives after sensor-instance symmetry
/// (`2N − 1`).
pub fn symmetric_combination_count(n: u32) -> u64 {
    (2 * n - 1) as u64
}

/// Representative instance subsets for one sensor kind under
/// sensor-instance symmetry: fail `k` backups (k = 1..N-1), the primary
/// alone, or the primary plus `k` backups.
pub fn representative_subsets(kind: SensorKind, instances: u8) -> Vec<Vec<SensorInstance>> {
    let mut out = Vec::new();
    if instances == 0 {
        return out;
    }
    let primary = SensorInstance::new(kind, 0);
    // Primary alone.
    out.push(vec![primary]);
    // k backups without the primary, then with the primary.
    for k in 1..instances {
        let backups: Vec<SensorInstance> = (1..=k).map(|i| SensorInstance::new(kind, i)).collect();
        out.push(backups.clone());
        let mut with_primary = vec![primary];
        with_primary.extend(backups);
        out.push(with_primary);
    }
    out
}

/// Candidate failure sets for one injection point, across every sensor
/// kind on the vehicle: all single-kind representative subsets first
/// (primary-only first within each kind), then primary+primary pairs of
/// distinct kinds. This is the concrete instantiation of Algorithm 1's
/// `PowerSet(Failures)` iteration under symmetry pruning and a cap of two
/// simultaneously failed sensor kinds (exhaustive enumeration beyond that
/// is possible but, as the paper notes, prohibitively expensive).
pub fn candidate_failure_sets(config: &SensorSuiteConfig) -> Vec<Vec<SensorInstance>> {
    let mut out = Vec::new();
    for kind in SensorKind::ALL {
        out.extend(representative_subsets(kind, config.instance_count(kind)));
    }
    // Two-kind combinations: primary of each.
    let kinds: Vec<SensorKind> = SensorKind::ALL
        .into_iter()
        .filter(|&k| config.instance_count(k) > 0)
        .collect();
    for i in 0..kinds.len() {
        for j in (i + 1)..kinds.len() {
            out.push(vec![
                SensorInstance::new(kinds[i], 0),
                SensorInstance::new(kinds[j], 0),
            ]);
        }
    }
    out
}

/// Tracks explored scenarios and found bugs to implement `CanPrune`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PruningState {
    explored: BTreeSet<RoleSignature>,
    bug_signatures: Vec<RoleSignature>,
    pruned_symmetry: u64,
    pruned_found_bug: u64,
}

impl PruningState {
    /// Creates empty pruning state.
    pub fn new() -> Self {
        PruningState::default()
    }

    /// An equivalent (role-symmetric) plan was already explored.
    fn symmetry_hit(&self, signature: &RoleSignature) -> bool {
        self.explored.contains(signature)
    }

    /// A known bug-triggering plan is strictly contained in the plan.
    fn found_bug_hit(&self, signature: &RoleSignature) -> bool {
        self.bug_signatures
            .iter()
            .any(|bug| !bug.is_empty() && bug.is_subset_of(signature) && bug != signature)
    }

    /// Returns `true` if the plan should be skipped, either because an
    /// equivalent (role-symmetric) plan was already explored or because a
    /// known bug-triggering plan is contained in it.
    pub fn should_prune(&mut self, plan: &FaultPlan) -> bool {
        let signature = RoleSignature::of(plan);
        if self.symmetry_hit(&signature) {
            self.pruned_symmetry += 1;
            return true;
        }
        if self.found_bug_hit(&signature) {
            self.pruned_found_bug += 1;
            return true;
        }
        false
    }

    /// The non-mutating form of [`PruningState::should_prune`]: the same
    /// two predicates, without touching the counters. Used to revalidate
    /// speculative work — only the authoritative commit-time
    /// `should_prune` call may count a pruned scenario.
    pub fn is_pruned(&self, plan: &FaultPlan) -> bool {
        let signature = RoleSignature::of(plan);
        self.symmetry_hit(&signature) || self.found_bug_hit(&signature)
    }

    /// An estimate, in `0.0..=1.0`, that `plan` will be pruned by commit
    /// time. A plan pruned *now* scores `1.0`. Otherwise the estimate is
    /// the share of the plan's failure timestamps at which some bug has
    /// already triggered: found-bug pruning rejects supersets of bug
    /// signatures at the same timestamps, and sites that have yielded one
    /// bug tend to yield the sibling bugs that complete such supersets —
    /// so plans concentrated on bug-yielding timestamps are the ones
    /// speculation loses on. Deliberately cheap and non-mutating; used by
    /// the engine's speculation admission gate, never by commit-time
    /// control flow.
    pub fn prune_probability(&self, plan: &FaultPlan) -> f64 {
        let signature = RoleSignature::of(plan);
        if self.symmetry_hit(&signature) || self.found_bug_hit(&signature) {
            return 1.0;
        }
        if signature.is_empty() || self.bug_signatures.is_empty() {
            return 0.0;
        }
        let bug_times: BTreeSet<i64> = self
            .bug_signatures
            .iter()
            .flat_map(|bug| bug.0.iter().map(|f| f.time_ms))
            .collect();
        let at_bug_sites = signature
            .0
            .iter()
            .filter(|f| bug_times.contains(&f.time_ms))
            .count();
        at_bug_sites as f64 / signature.0.len() as f64
    }

    /// Records that a plan has been executed.
    pub fn record_explored(&mut self, plan: &FaultPlan) {
        self.explored.insert(RoleSignature::of(plan));
    }

    /// Records that a plan triggered a bug (enables found-bug pruning).
    pub fn record_bug(&mut self, plan: &FaultPlan) {
        self.bug_signatures.push(RoleSignature::of(plan));
    }

    /// Number of distinct role-level scenarios explored.
    pub fn explored_count(&self) -> usize {
        self.explored.len()
    }

    /// Scenarios skipped by instance symmetry / duplicate elimination.
    pub fn symmetry_pruned(&self) -> u64 {
        self.pruned_symmetry
    }

    /// Scenarios skipped by found-bug pruning.
    pub fn found_bug_pruned(&self) -> u64 {
        self.pruned_found_bug
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_hinj::FaultSpec;

    fn plan(specs: &[(SensorKind, u8, f64)]) -> FaultPlan {
        FaultPlan::from_specs(
            specs
                .iter()
                .map(|&(k, i, t)| FaultSpec::new(SensorInstance::new(k, i), t)),
        )
    }

    #[test]
    fn counts_match_paper_example() {
        // Three compasses: 21 naive combinations reduced to 5 (Figure 6).
        assert_eq!(naive_combination_count(3), 21);
        assert_eq!(symmetric_combination_count(3), 5);
        assert_eq!(naive_combination_count(1), 1);
        assert_eq!(symmetric_combination_count(1), 1);
        assert_eq!(symmetric_combination_count(2), 3);
    }

    #[test]
    fn representative_subsets_match_figure_6() {
        let subsets = representative_subsets(SensorKind::Compass, 3);
        assert_eq!(subsets.len(), 5);
        // {P}, {B1}, {P,B1}, {B1,B2}, {P,B1,B2} in some order; check sizes
        // and primary membership.
        let with_primary = subsets
            .iter()
            .filter(|s| s.iter().any(|i| i.index == 0))
            .count();
        assert_eq!(with_primary, 3);
        let sizes: Vec<usize> = subsets.iter().map(|s| s.len()).collect();
        assert!(sizes.contains(&1));
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&3));
    }

    #[test]
    fn candidate_sets_cover_all_kinds_and_pairs() {
        let config = SensorSuiteConfig::iris();
        let candidates = candidate_failure_sets(&config);
        // Single-kind representatives: accel 5, gyro 5, gps 3, baro 3,
        // compass 5, battery 1 = 22. Pairs: C(6,2) = 15. Total 37.
        assert_eq!(candidates.len(), 37);
        // The first candidate for each kind is the primary alone.
        assert!(candidates
            .iter()
            .any(|c| c == &vec![SensorInstance::new(SensorKind::Gps, 0)]));
        // Pairs involve exactly two distinct kinds, primaries only.
        let pairs: Vec<_> = candidates
            .iter()
            .filter(|c| c.len() == 2 && c[0].kind != c[1].kind)
            .collect();
        assert_eq!(pairs.len(), 15);
        assert!(pairs.iter().all(|p| p.iter().all(|i| i.index == 0)));
    }

    #[test]
    fn role_signature_erases_backup_indices() {
        let a = plan(&[(SensorKind::Compass, 1, 5.0)]);
        let b = plan(&[(SensorKind::Compass, 2, 5.0)]);
        assert_eq!(RoleSignature::of(&a), RoleSignature::of(&b));
        let c = plan(&[(SensorKind::Compass, 0, 5.0)]);
        assert_ne!(RoleSignature::of(&a), RoleSignature::of(&c));
        // Different times are different signatures.
        let d = plan(&[(SensorKind::Compass, 1, 6.0)]);
        assert_ne!(RoleSignature::of(&a), RoleSignature::of(&d));
    }

    #[test]
    fn is_pruned_matches_should_prune_without_counting() {
        let mut state = PruningState::new();
        let gps = plan(&[(SensorKind::Gps, 0, 10.0)]);
        assert!(!state.is_pruned(&gps));
        state.record_explored(&gps);
        state.record_bug(&gps);
        let superset = plan(&[(SensorKind::Gps, 0, 10.0), (SensorKind::Barometer, 0, 10.0)]);
        // Both pruning reasons are visible through the non-mutating form...
        assert!(state.is_pruned(&gps));
        assert!(state.is_pruned(&superset));
        assert!(!state.is_pruned(&plan(&[(SensorKind::Compass, 0, 10.0)])));
        // ...and none of the checks above touched the counters.
        assert_eq!(state.symmetry_pruned(), 0);
        assert_eq!(state.found_bug_pruned(), 0);
    }

    #[test]
    fn prune_probability_ranks_doomed_plans_highest() {
        let mut state = PruningState::new();
        let gps10 = plan(&[(SensorKind::Gps, 0, 10.0)]);
        // No pruning knowledge: everything scores zero.
        assert_eq!(state.prune_probability(&gps10), 0.0);
        state.record_explored(&gps10);
        state.record_bug(&gps10);
        // A plan pruned right now scores 1.0 (replay → symmetry hit;
        // superset at the bug's timestamp → found-bug hit).
        assert_eq!(state.prune_probability(&gps10), 1.0);
        let superset = plan(&[(SensorKind::Gps, 0, 10.0), (SensorKind::Barometer, 0, 10.0)]);
        assert_eq!(state.prune_probability(&superset), 1.0);
        // A different sensor at the bug-yielding timestamp: fully
        // concentrated on a bug site, maximal (but not certain) risk.
        let same_site = plan(&[(SensorKind::Compass, 0, 10.0)]);
        assert_eq!(state.prune_probability(&same_site), 1.0);
        assert!(!state.is_pruned(&same_site), "risky is not pruned");
        // Half the failures at a bug site: intermediate.
        let half = plan(&[
            (SensorKind::Compass, 0, 10.0),
            (SensorKind::Compass, 1, 20.0),
        ]);
        assert_eq!(state.prune_probability(&half), 0.5);
        // Nowhere near a bug site: zero.
        let elsewhere = plan(&[(SensorKind::Compass, 0, 20.0)]);
        assert_eq!(state.prune_probability(&elsewhere), 0.0);
        // Probability checks never touch the counters.
        assert_eq!(state.symmetry_pruned(), 0);
        assert_eq!(state.found_bug_pruned(), 0);
    }

    #[test]
    fn symmetry_pruning_skips_equivalent_backup_failures() {
        let mut state = PruningState::new();
        let b1 = plan(&[(SensorKind::Compass, 1, 5.0)]);
        let b2 = plan(&[(SensorKind::Compass, 2, 5.0)]);
        assert!(!state.should_prune(&b1));
        state.record_explored(&b1);
        assert!(
            state.should_prune(&b2),
            "failing B2 is equivalent to failing B1"
        );
        assert_eq!(state.symmetry_pruned(), 1);
        assert_eq!(state.explored_count(), 1);
    }

    #[test]
    fn found_bug_pruning_skips_supersets_at_same_time() {
        let mut state = PruningState::new();
        let single = plan(&[(SensorKind::Gps, 0, 10.0)]);
        state.record_explored(&single);
        state.record_bug(&single);
        // GPS + barometer at the same time: pruned.
        let superset = plan(&[(SensorKind::Gps, 0, 10.0), (SensorKind::Barometer, 0, 10.0)]);
        assert!(state.should_prune(&superset));
        assert_eq!(state.found_bug_pruned(), 1);
        // GPS at a different time plus barometer: not pruned.
        let different_time = plan(&[(SensorKind::Gps, 0, 20.0), (SensorKind::Barometer, 0, 20.0)]);
        assert!(!state.should_prune(&different_time));
        // The bug plan itself (replay) is not pruned by found-bug pruning
        // (it is pruned as already-explored instead).
        assert!(state.should_prune(&single));
        assert_eq!(state.symmetry_pruned(), 1);
    }

    #[test]
    fn two_pointer_subset_matches_naive_reference() {
        use avis_sim::SimRng;

        /// The replaced clone + position-scan implementation, kept as the
        /// oracle.
        fn naive_is_subset_of(a: &RoleSignature, b: &RoleSignature) -> bool {
            let mut remaining = b.0.clone();
            for f in &a.0 {
                match remaining.iter().position(|r| r == f) {
                    Some(idx) => {
                        remaining.swap_remove(idx);
                    }
                    None => return false,
                }
            }
            true
        }

        let mut rng = SimRng::seed_from_u64(77);
        let arb_signature = |rng: &mut SimRng| {
            let len = rng.index(6);
            let specs: Vec<FaultSpec> = (0..len)
                .map(|_| {
                    // A tiny domain so subsets, equalities and
                    // multiplicities all actually occur.
                    let kind = [SensorKind::Gps, SensorKind::Compass][rng.index(2)];
                    let index = rng.index(3) as u8;
                    let time = [5.0, 10.0][rng.index(2)];
                    FaultSpec::new(SensorInstance::new(kind, index), time)
                })
                .collect();
            RoleSignature::of(&FaultPlan::from_specs(specs))
        };
        for case in 0..500 {
            let a = arb_signature(&mut rng);
            let b = arb_signature(&mut rng);
            assert_eq!(
                a.is_subset_of(&b),
                naive_is_subset_of(&a, &b),
                "case {case}: {a:?} ⊆ {b:?} disagreed with the oracle"
            );
            // A signature is always a subset of itself.
            assert!(a.is_subset_of(&a));
        }
    }

    #[test]
    fn subset_check_respects_multiplicity() {
        let one_backup = RoleSignature::of(&plan(&[(SensorKind::Compass, 1, 5.0)]));
        let two_backups = RoleSignature::of(&plan(&[
            (SensorKind::Compass, 1, 5.0),
            (SensorKind::Compass, 2, 5.0),
        ]));
        assert!(one_backup.is_subset_of(&two_backups));
        assert!(!two_backups.is_subset_of(&one_backup));
        assert!(RoleSignature::default().is_subset_of(&one_backup));
        assert_eq!(two_backups.len(), 2);
        assert!(!two_backups.is_empty());
    }
}
