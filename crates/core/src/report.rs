//! Bug reports and replay (§IV.D).
//!
//! When the invariant monitor flags an unsafe condition, Avis records the
//! failures it injected so the scenario can be reconstructed. Replay
//! re-executes the mission with the same faults at the same offsets from
//! the mode transitions they were anchored to; the deterministic simulator
//! makes the reproduction exact, and the report records whether the
//! violation manifested again.

use crate::checker::UnsafeCondition;
use crate::monitor::{InvariantMonitor, Violation};
use crate::runner::ExperimentRunner;
use avis_firmware::{BugId, FirmwareProfile};
use avis_hinj::FaultPlan;
use serde::{Deserialize, Serialize};

/// A reproducible bug report generated from an unsafe condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugReport {
    /// Firmware the report applies to.
    pub profile: FirmwareProfile,
    /// The workload that was running.
    pub workload: String,
    /// The injected failures.
    pub plan: FaultPlan,
    /// The violations observed.
    pub violations: Vec<Violation>,
    /// Injected defects known to have activated (empty for real campaigns
    /// against unknown code).
    pub suspected_bugs: Vec<BugId>,
}

impl BugReport {
    /// Builds a report from an unsafe condition found by a campaign.
    pub fn from_unsafe_condition(
        profile: FirmwareProfile,
        workload: &str,
        condition: &UnsafeCondition,
    ) -> Self {
        BugReport {
            profile,
            workload: workload.to_string(),
            plan: condition.plan.clone(),
            violations: condition.violations.clone(),
            suspected_bugs: condition.triggered_bugs.clone(),
        }
    }

    /// Serialises the report to pretty JSON (the artefact format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bug reports are always serialisable")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// The result of replaying a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Violations observed during the replay.
    pub violations: Vec<Violation>,
    /// Whether the replay reproduced at least one violation of the same
    /// kind class as the original report.
    pub reproduced: bool,
}

/// Replays a bug report against a runner and monitor, returning whether
/// the unsafe condition manifested again.
pub fn replay(
    report: &BugReport,
    runner: &mut ExperimentRunner,
    monitor: &InvariantMonitor,
) -> ReplayOutcome {
    let result = runner.run_with_plan(report.plan.clone());
    let violations = monitor.check(&result.trace);
    let reproduced = !violations.is_empty();
    ReplayOutcome { violations, reproduced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::UnsafeCondition;
    use crate::monitor::ViolationKind;
    use avis_firmware::{ModeCategory, OperatingMode};
    use avis_hinj::FaultSpec;
    use avis_sim::{SensorInstance, SensorKind};

    fn condition() -> UnsafeCondition {
        UnsafeCondition {
            plan: FaultPlan::from_specs(vec![FaultSpec::new(
                SensorInstance::new(SensorKind::Gps, 0),
                12.5,
            )]),
            violations: vec![Violation {
                kind: ViolationKind::Collision { impact_speed: 3.0 },
                time: 20.0,
                mode: OperatingMode::Land,
            }],
            injection_category: ModeCategory::Waypoint,
            injection_mode: Some(OperatingMode::Auto { leg: 1 }),
            triggered_bugs: vec![BugId::Apm16020],
            simulations_used: 5,
            cost_seconds_used: 400.0,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BugReport::from_unsafe_condition(
            FirmwareProfile::ArduPilotLike,
            "auto-box-mission",
            &condition(),
        );
        let json = report.to_json();
        assert!(json.to_lowercase().contains("gps"));
        assert!(json.contains("auto-box-mission"));
        let parsed = BugReport::from_json(&json).expect("round trip");
        assert_eq!(parsed, report);
        assert!(BugReport::from_json("{not json").is_err());
    }

    #[test]
    fn report_captures_condition_fields() {
        let c = condition();
        let report =
            BugReport::from_unsafe_condition(FirmwareProfile::Px4Like, "manual-box-survey", &c);
        assert_eq!(report.profile, FirmwareProfile::Px4Like);
        assert_eq!(report.plan, c.plan);
        assert_eq!(report.suspected_bugs, vec![BugId::Apm16020]);
        assert_eq!(report.violations.len(), 1);
    }
}
