//! Bug reports and replay (§IV.D).
//!
//! When the invariant monitor flags an unsafe condition, Avis records the
//! failures it injected so the scenario can be reconstructed. Replay
//! re-executes the mission with the same faults at the same offsets from
//! the mode transitions they were anchored to; the deterministic simulator
//! makes the reproduction exact, and the report records whether the
//! violation manifested again.

use crate::checker::UnsafeCondition;
use crate::json::{self, Json, JsonError};
use crate::monitor::{InvariantMonitor, Violation, ViolationKind};
use crate::runner::ExperimentRunner;
use avis_firmware::{BugId, FirmwareProfile, OperatingMode};
use avis_hinj::{FaultPlan, FaultSpec, ModeCode};
use avis_sim::{SensorInstance, SensorKind};
use serde::{Deserialize, Serialize};

/// A reproducible bug report generated from an unsafe condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugReport {
    /// Firmware the report applies to.
    pub profile: FirmwareProfile,
    /// The workload that was running.
    pub workload: String,
    /// The injected failures.
    pub plan: FaultPlan,
    /// The violations observed.
    pub violations: Vec<Violation>,
    /// Injected defects known to have activated (empty for real campaigns
    /// against unknown code).
    pub suspected_bugs: Vec<BugId>,
}

impl BugReport {
    /// Builds a report from an unsafe condition found by a campaign.
    pub fn from_unsafe_condition(
        profile: FirmwareProfile,
        workload: &str,
        condition: &UnsafeCondition,
    ) -> Self {
        BugReport {
            profile,
            workload: workload.to_string(),
            plan: condition.plan.clone(),
            violations: condition.violations.clone(),
            suspected_bugs: condition.triggered_bugs.clone(),
        }
    }

    /// Serialises the report to pretty JSON (the artefact format).
    pub fn to_json(&self) -> String {
        json::object(vec![
            ("profile", Json::String(self.profile.name().to_string())),
            ("workload", Json::String(self.workload.clone())),
            (
                "plan",
                Json::Array(
                    self.plan
                        .specs()
                        .map(|s| {
                            json::object(vec![
                                ("sensor", Json::String(s.instance.kind.name().to_string())),
                                ("index", Json::Number(s.instance.index as f64)),
                                ("time", Json::Number(s.time)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "violations",
                Json::Array(self.violations.iter().map(violation_to_json).collect()),
            ),
            (
                "suspected_bugs",
                Json::Array(
                    self.suspected_bugs
                        .iter()
                        .map(|b| Json::String(b.to_string()))
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed input or an unknown
    /// profile / sensor / bug / mode name.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let doc = Json::parse(text)?;
        let profile_name = require_str(&doc, "profile")?;
        let profile = FirmwareProfile::ALL
            .into_iter()
            .find(|p| p.name() == profile_name)
            .ok_or_else(|| schema_error(format!("unknown firmware profile `{profile_name}`")))?;
        let workload = require_str(&doc, "workload")?.to_string();

        let mut plan = FaultPlan::empty();
        for entry in require_array(&doc, "plan")? {
            let sensor_name = require_str(entry, "sensor")?;
            let kind = SensorKind::ALL
                .into_iter()
                .find(|k| k.name() == sensor_name)
                .ok_or_else(|| schema_error(format!("unknown sensor kind `{sensor_name}`")))?;
            let index = require_f64(entry, "index")? as u8;
            let time = require_f64(entry, "time")?;
            plan.add(FaultSpec::new(SensorInstance::new(kind, index), time));
        }

        let violations = require_array(&doc, "violations")?
            .iter()
            .map(violation_from_json)
            .collect::<Result<Vec<_>, _>>()?;

        let suspected_bugs = require_array(&doc, "suspected_bugs")?
            .iter()
            .map(|entry| {
                let name = entry
                    .as_str()
                    .ok_or_else(|| schema_error("bug entries must be strings"))?;
                BugId::UNKNOWN
                    .into_iter()
                    .chain(BugId::KNOWN)
                    .find(|b| b.to_string() == name)
                    .ok_or_else(|| schema_error(format!("unknown bug id `{name}`")))
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(BugReport {
            profile,
            workload,
            plan,
            violations,
            suspected_bugs,
        })
    }
}

fn schema_error(message: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: message.into(),
    }
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    doc.get(key)
        .ok_or_else(|| schema_error(format!("missing field `{key}`")))
}

fn require_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, JsonError> {
    require(doc, key)?
        .as_str()
        .ok_or_else(|| schema_error(format!("field `{key}` must be a string")))
}

fn require_f64(doc: &Json, key: &str) -> Result<f64, JsonError> {
    require(doc, key)?
        .as_f64()
        .ok_or_else(|| schema_error(format!("field `{key}` must be a number")))
}

fn require_array<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], JsonError> {
    require(doc, key)?
        .as_array()
        .ok_or_else(|| schema_error(format!("field `{key}` must be an array")))
}

fn violation_to_json(v: &Violation) -> Json {
    let kind = match &v.kind {
        ViolationKind::Collision { impact_speed } => json::object(vec![
            ("type", Json::String("collision".to_string())),
            ("impact_speed", Json::Number(*impact_speed)),
        ]),
        ViolationKind::LivelinessDivergence {
            distance,
            threshold,
        } => json::object(vec![
            ("type", Json::String("liveliness_divergence".to_string())),
            ("distance", Json::Number(*distance)),
            ("threshold", Json::Number(*threshold)),
        ]),
        ViolationKind::SafeModeStalled { mode } => json::object(vec![
            ("type", Json::String("safe_mode_stalled".to_string())),
            ("mode", Json::String(mode.clone())),
        ]),
        ViolationKind::InAirDisarm { altitude } => json::object(vec![
            ("type", Json::String("in_air_disarm".to_string())),
            ("altitude", Json::Number(*altitude)),
        ]),
        ViolationKind::CommandAckTimeout { command, window } => json::object(vec![
            ("type", Json::String("command_ack_timeout".to_string())),
            ("command", Json::String(command.clone())),
            ("window", Json::Number(*window)),
        ]),
        ViolationKind::MissionAliasing {
            expected_items,
            matching_items,
        } => json::object(vec![
            ("type", Json::String("mission_aliasing".to_string())),
            ("expected_items", Json::Number(*expected_items as f64)),
            ("matching_items", Json::Number(*matching_items as f64)),
        ]),
    };
    json::object(vec![
        ("kind", kind),
        ("time", Json::Number(v.time)),
        ("mode_code", Json::Number(v.mode.code().0 as f64)),
    ])
}

fn violation_from_json(doc: &Json) -> Result<Violation, JsonError> {
    let kind_doc = require(doc, "kind")?;
    let kind = match require_str(kind_doc, "type")? {
        "collision" => ViolationKind::Collision {
            impact_speed: require_f64(kind_doc, "impact_speed")?,
        },
        "liveliness_divergence" => ViolationKind::LivelinessDivergence {
            distance: require_f64(kind_doc, "distance")?,
            threshold: require_f64(kind_doc, "threshold")?,
        },
        "safe_mode_stalled" => ViolationKind::SafeModeStalled {
            mode: require_str(kind_doc, "mode")?.to_string(),
        },
        "in_air_disarm" => ViolationKind::InAirDisarm {
            altitude: require_f64(kind_doc, "altitude")?,
        },
        "command_ack_timeout" => ViolationKind::CommandAckTimeout {
            command: require_str(kind_doc, "command")?.to_string(),
            window: require_f64(kind_doc, "window")?,
        },
        "mission_aliasing" => ViolationKind::MissionAliasing {
            expected_items: require_f64(kind_doc, "expected_items")? as usize,
            matching_items: require_f64(kind_doc, "matching_items")? as usize,
        },
        other => return Err(schema_error(format!("unknown violation type `{other}`"))),
    };
    let time = require_f64(doc, "time")?;
    let code = require_f64(doc, "mode_code")? as u32;
    let mode = OperatingMode::from_code(ModeCode(code))
        .ok_or_else(|| schema_error(format!("unknown mode code {code}")))?;
    Ok(Violation { kind, time, mode })
}

/// The result of replaying a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Violations observed during the replay.
    pub violations: Vec<Violation>,
    /// Whether the replay reproduced at least one violation of the same
    /// kind class as the original report.
    pub reproduced: bool,
}

/// Replays a bug report against a runner and monitor, returning whether
/// the unsafe condition manifested again.
pub fn replay(
    report: &BugReport,
    runner: &mut ExperimentRunner,
    monitor: &InvariantMonitor,
) -> ReplayOutcome {
    let result = runner.run_with_plan(report.plan.clone());
    let violations = monitor.check(&result.trace);
    let reproduced = !violations.is_empty();
    ReplayOutcome {
        violations,
        reproduced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::UnsafeCondition;
    use crate::monitor::ViolationKind;
    use avis_firmware::{ModeCategory, OperatingMode};
    use avis_hinj::FaultSpec;
    use avis_sim::{SensorInstance, SensorKind};

    fn condition() -> UnsafeCondition {
        UnsafeCondition {
            plan: FaultPlan::from_specs(vec![FaultSpec::new(
                SensorInstance::new(SensorKind::Gps, 0),
                12.5,
            )]),
            violations: vec![Violation {
                kind: ViolationKind::Collision { impact_speed: 3.0 },
                time: 20.0,
                mode: OperatingMode::Land,
            }],
            injection_category: ModeCategory::Waypoint,
            injection_mode: Some(OperatingMode::Auto { leg: 1 }),
            triggered_bugs: vec![BugId::Apm16020],
            simulations_used: 5,
            cost_seconds_used: 400.0,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BugReport::from_unsafe_condition(
            FirmwareProfile::ArduPilotLike,
            "auto-box-mission",
            &condition(),
        );
        let json = report.to_json();
        assert!(json.to_lowercase().contains("gps"));
        assert!(json.contains("auto-box-mission"));
        let parsed = BugReport::from_json(&json).expect("round trip");
        assert_eq!(parsed, report);
        assert!(BugReport::from_json("{not json").is_err());
    }

    #[test]
    fn report_captures_condition_fields() {
        let c = condition();
        let report =
            BugReport::from_unsafe_condition(FirmwareProfile::Px4Like, "manual-box-survey", &c);
        assert_eq!(report.profile, FirmwareProfile::Px4Like);
        assert_eq!(report.plan, c.plan);
        assert_eq!(report.suspected_bugs, vec![BugId::Apm16020]);
        assert_eq!(report.violations.len(), 1);
    }
}
