//! The experiment runner: provisions a fresh simulator + firmware +
//! workload per test, executes one fault-injection scenario in lock-step
//! and records the [`Trace`] (the `RunExperiment` procedure of
//! Algorithm 1, and the step loop of Figure 7).

use crate::contain;
use crate::protocol::ProtocolTracker;
use crate::snapshot::{
    injection_prefix, ChainParent, CheckpointConfig, CheckpointStats, RunSnapshot,
    SharedSnapshotTier, SnapshotCache, SnapshotKey,
};
use crate::trace::{transition_from_code, ModeTransition, StateSample, Trace};
use avis_firmware::{BugId, BugSet, Firmware, FirmwareProfile};
use avis_hinj::{FaultInjector, FaultPlan, FaultyLink, LinkSnapshot, SharedInjector};
use avis_mavlite::{Endpoint, Message};
use avis_sim::simulator::{SimConfig, Simulator, StepOutput};
use avis_sim::{CowVec, MotorCommands, SensorNoise, SimRng};
use avis_workload::{ScriptedWorkload, WorkloadStatus};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Salt folded into the link fault shim's RNG seed so its stream is
/// independent of the simulator's sensor-noise stream derived from the
/// same experiment seed. Never derived from the fault plan: two plans
/// sharing an injection prefix must consume identical link-RNG streams
/// up to the first divergent fault, which is what makes checkpointed
/// link-fault runs bit-identical to cold ones.
pub(crate) const LINK_RNG_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Configuration of an experiment: which firmware, which injected defects,
/// which workload, and the simulation parameters shared by every run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Firmware profile under test.
    pub profile: FirmwareProfile,
    /// Defects compiled into the firmware ("current code base" or a single
    /// re-inserted bug).
    pub bugs: BugSet,
    /// The workload to execute.
    pub workload: ScriptedWorkload,
    /// Simulation time-step (s).
    pub dt: f64,
    /// Hard cap on simulated time per run (s).
    pub max_duration: f64,
    /// Interval at which the trace is sampled (s).
    pub sample_interval: f64,
    /// Base RNG seed for sensor noise. Each run adds its own offset so
    /// profiling runs differ realistically.
    pub seed: u64,
    /// Sensor noise level (`None` keeps the simulator default).
    pub noise: Option<SensorNoise>,
    /// Extra simulated seconds to keep running after the workload reaches a
    /// terminal state (so post-landing behaviour is captured).
    pub grace_period: f64,
    /// Checkpoint-tree configuration: whether (and how densely) the
    /// runner snapshots injection runs so later scenarios can fork from a
    /// shared prefix instead of cold-starting (see [`crate::snapshot`]).
    /// Checkpointing never changes a run's result — a forked run is
    /// bit-identical to a cold one — so this is purely a speed/memory
    /// trade-off.
    pub checkpoints: CheckpointConfig,
    /// Scenario watchdog budgets, so a non-terminating scenario cannot
    /// starve a worker forever (see [`WatchdogConfig`]).
    pub watchdog: WatchdogConfig,
    /// Number of sibling scenarios a worker advances in lockstep through
    /// one SoA [`avis_sim::LaneBatch`] when the dispatcher hands it a
    /// prefix-sharded batch (see [`crate::batch`]). `1` disables
    /// batching. Purely a speed knob: a batched run is bit-identical to
    /// a scalar one, so this is excluded from the experiment
    /// fingerprint, exactly like checkpoint placement.
    pub lockstep_lanes: usize,
}

/// Per-experiment watchdog budgets. The *step* budget is the canonical
/// limit: it counts simulated lock-step iterations, so it trips at the
/// identical simulated state cold or forked, at any parallelism, and a
/// tripped run carries the deterministic [`RunVerdict::Diverged`]. The
/// *wall-clock* budget is a deliberately nondeterministic backstop for a
/// hung substrate (an infinite loop inside one simulated step, which the
/// step budget can never observe); it is lint-exempted, checked coarsely,
/// and should be set far above any plausible honest run time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WatchdogConfig {
    /// Maximum simulated lock-step iterations per run (`None` = no step
    /// budget). Deterministic: part of the experiment fingerprint.
    pub max_steps: Option<u64>,
    /// Maximum wall-clock seconds per run (`None` = no wall-clock
    /// backstop). Nondeterministic by nature; excluded from the
    /// experiment fingerprint because it can only convert a *hang* into
    /// a [`RunVerdict::Diverged`], never alter a run that terminates.
    pub wall_clock_seconds: Option<f64>,
}

impl ExperimentConfig {
    /// A stable identity of everything that determines a run's state
    /// evolution — used by [`SharedSnapshotTier`] to refuse cross-
    /// experiment snapshot reuse. Checkpoint placement is deliberately
    /// excluded: it changes which snapshots exist, never what state they
    /// capture.
    pub(crate) fn fingerprint(&self) -> String {
        // The watchdog *step* budget joins the fingerprint (it changes
        // where a run can end); the wall-clock backstop does not (it can
        // only convert a hang into `Diverged`, never alter a terminating
        // run's state evolution).
        format!(
            "{:?}|{:?}|{}|{:?}|{:?}|{}|{}|{}|{}|{:?}|{}|{:?}",
            self.profile,
            self.bugs,
            self.workload.name(),
            self.workload.steps(),
            self.workload.environment(),
            self.dt,
            self.max_duration,
            self.sample_interval,
            self.seed,
            self.noise,
            self.grace_period,
            self.watchdog.max_steps
        )
    }

    /// A configuration with sensible defaults for the given profile,
    /// defects and workload.
    pub fn new(profile: FirmwareProfile, bugs: BugSet, workload: ScriptedWorkload) -> Self {
        ExperimentConfig {
            profile,
            bugs,
            workload,
            dt: 0.0025,
            max_duration: 150.0,
            sample_interval: 0.1,
            seed: 7,
            noise: None,
            grace_period: 2.0,
            checkpoints: CheckpointConfig::default(),
            watchdog: WatchdogConfig::default(),
            lockstep_lanes: 4,
        }
    }
}

/// How a run ended, beyond what the trace itself records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum RunVerdict {
    /// The run executed to its natural end (workload terminal state,
    /// grace period, or the simulated-duration cap).
    #[default]
    Completed,
    /// The firmware (or another substrate layer) panicked while
    /// executing the plan. Contained at the runner boundary (see
    /// [`crate::contain`]) and reported as a first-class outcome — the
    /// paper's `Serious` symptom class — instead of aborting the
    /// campaign. Deterministic: the same (seed, plan) crashes at the
    /// same step with the same message at any parallelism.
    Crashed {
        /// The rendered panic payload, tagged with the experiment
        /// fingerprint (seed + canonical plan key).
        message: String,
        /// The simulated lock-step index at which the panic unwound.
        step: u64,
    },
    /// A scenario watchdog tripped before the run reached a natural end
    /// (see [`WatchdogConfig`]). The step budget trips deterministically;
    /// the wall-clock backstop only fires on a hung substrate.
    Diverged,
}

/// The outcome of one simulated test run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The fault plan that was injected.
    pub plan: FaultPlan,
    /// The recorded trace.
    pub trace: Trace,
    /// Simulated duration of the run (s) — the "cost" charged against the
    /// checker's test budget.
    pub simulated_seconds: f64,
    /// Injected defects that activated during the run (used to map unsafe
    /// conditions back to the bugs of Tables II and V).
    pub triggered_defects: Vec<BugId>,
    /// How the run ended: completed, crashed (contained panic) or
    /// diverged (watchdog). Serde-defaulted so records serialised before
    /// this field existed deserialise as [`RunVerdict::Completed`].
    #[serde(default)]
    pub verdict: RunVerdict,
}

impl RunResult {
    /// Whether the run ended in a physical collision.
    pub fn crashed(&self) -> bool {
        self.trace.collision.is_some()
    }
}

/// The experiment runner.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    pub(crate) config: ExperimentConfig,
    pub(crate) runs: u64,
    /// The checkpoint tree (see [`crate::snapshot`]): snapshots of
    /// injection runs keyed by quantised injection prefix, so later
    /// scenarios fork from the deepest shared prefix. Owned per runner —
    /// each engine worker holds its own runner, which keeps the parallel
    /// path lock-free.
    pub(crate) cache: SnapshotCache,
    /// The optional cross-worker / cross-campaign second tier: lookups
    /// probe it lock-free alongside the local cache and take whichever
    /// snapshot is deeper; newly recorded snapshots are offered to it
    /// for the engine to republish between wavefronts.
    pub(crate) shared: Option<Arc<SharedSnapshotTier>>,
    /// The simulated lock-step index the in-flight run last reached —
    /// read by [`ExperimentRunner::run_contained`] after a contained
    /// panic, when the run's locals are gone with the unwind.
    pub(crate) step_cursor: u64,
    /// Local-cache keys the in-flight run recorded, so a contained panic
    /// can quarantine exactly the chain the panicked run tainted.
    pub(crate) fresh_keys: Vec<SnapshotKey>,
}

impl ExperimentRunner {
    /// Creates a runner for the given configuration.
    pub fn new(mut config: ExperimentConfig) -> Self {
        assert!(config.dt > 0.0, "dt must be positive");
        assert!(
            config.sample_interval >= config.dt,
            "sample interval must be >= dt"
        );
        assert!(
            config.checkpoints.interval > 0.0,
            "checkpoint interval must be positive"
        );
        config.checkpoints.normalize_anchors();
        config.checkpoints.keyframe_stride = config.checkpoints.keyframe_stride.max(1);
        let mut cache = SnapshotCache::new(config.checkpoints.max_bytes);
        cache.set_keyframe_stride(config.checkpoints.keyframe_stride);
        ExperimentRunner {
            config,
            runs: 0,
            cache,
            shared: None,
            step_cursor: 0,
            fresh_keys: Vec::new(),
        }
    }

    /// Attaches the shared snapshot tier this runner publishes to and
    /// forks from (see [`crate::snapshot::SharedSnapshotTier`]). Sharing
    /// never changes a run's result — a forked run is bit-identical to a
    /// cold one whichever tier served the snapshot. The tier is claimed
    /// for this runner's experiment on first attach; a runner whose
    /// experiment differs from the claim leaves the tier unattached
    /// (snapshot keys encode only the injection prefix, so cross-
    /// experiment reuse would resume foreign state).
    pub fn set_shared_tier(&mut self, tier: Arc<SharedSnapshotTier>) {
        if tier.claim(&self.config.fingerprint()) {
            self.shared = Some(tier);
        }
    }

    /// Replaces the checkpoint anchor times (sorted, de-duplicated). The
    /// campaign calls this after profiling with the golden run's mode
    /// transitions when [`CheckpointConfig::anchor_placement`] is on.
    pub fn set_checkpoint_anchors(&mut self, anchors: Vec<f64>) {
        self.config.checkpoints.anchors = anchors;
        self.config.checkpoints.normalize_anchors();
    }

    /// The runner's configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Number of runs executed so far.
    pub fn runs_executed(&self) -> u64 {
        self.runs
    }

    /// Checkpoint-cache statistics (forked vs cold runs, memory held,
    /// simulated seconds skipped by forking).
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.cache.stats()
    }

    /// Test hook: silently corrupts every cached chain entry, as a stuck
    /// bit in the store would. The next fork attempt must detect the
    /// mismatch, quarantine the chain and fall back to cold execution.
    #[doc(hidden)]
    pub fn corrupt_cached_chains_for_test(&mut self) {
        self.cache.corrupt_entries_for_test();
    }

    /// Executes the workload with no injected faults (a golden / profiling
    /// run). `profiling_index` varies the sensor-noise seed so profiling
    /// runs differ the way real repeated flights do.
    pub fn run_profiling(&mut self, profiling_index: u64) -> RunResult {
        self.execute(FaultPlan::empty(), profiling_index + 1)
    }

    /// Executes one fault-injection scenario.
    pub fn run_with_plan(&mut self, plan: FaultPlan) -> RunResult {
        self.execute(plan, 0)
    }

    /// Executes one fault-injection scenario with panic containment: a
    /// panic raised anywhere inside the run — simulated firmware, the
    /// substrate, the workload — is caught at this boundary and reported
    /// as [`RunVerdict::Crashed`] instead of unwinding into the engine.
    /// Any snapshots the panicked run recorded are quarantined from the
    /// local cache and retracted from the shared tier's pending buffer
    /// (the panicked run's chain is never served to a later fork), so a
    /// crashing (seed, plan) crashes bit-identically cold, checkpointed
    /// or sharded.
    pub fn run_contained(&mut self, plan: FaultPlan) -> RunResult {
        let retained = plan.clone();
        match contain::catch(|| self.execute(plan, 0)) {
            Ok(result) => result,
            Err(payload) => {
                let tainted = std::mem::take(&mut self.fresh_keys);
                self.cache.quarantine(&tainted);
                if let Some(tier) = &self.shared {
                    tier.retract(&tainted);
                }
                let context = format!(
                    "experiment seed {}, plan {}",
                    self.config.seed,
                    retained.canonical_key()
                );
                let message = contain::render_panic(payload.as_ref(), &context);
                let step = self.step_cursor;
                RunResult {
                    plan: retained,
                    trace: Trace {
                        sample_interval: self.config.sample_interval,
                        samples: Vec::new(),
                        mode_transitions: Vec::new(),
                        collision: None,
                        fence_violations: 0,
                        workload_status: WorkloadStatus::Running,
                        duration: 0.0,
                        protocol: Vec::new(),
                    },
                    simulated_seconds: 0.0,
                    triggered_defects: Vec::new(),
                    verdict: RunVerdict::Crashed { message, step },
                }
            }
        }
    }

    /// Whether the checkpoint breaker has tripped: repeated checksum
    /// failures disabled checkpointing for this runner, and every
    /// subsequent run cold-starts (see [`crate::snapshot`]).
    pub fn checkpointing_degraded(&self) -> bool {
        self.cache.degraded()
    }

    /// The deterministic `t = 0` state of a run of this configuration —
    /// the *genesis* snapshot the persistent store diffs keyframes
    /// against. Mirrors the cold-start arm of
    /// [`ExperimentRunner::execute`] exactly (same construction order,
    /// same priming step), so a chain persisted as
    /// `genesis → keyframe-delta → deltas…` re-materialises bit-exactly
    /// on any host that can rebuild the same [`ExperimentConfig`]. The
    /// fault plan is irrelevant here: a restore always swaps the plan in
    /// (see `into_restored_with_plan`), so genesis carries the empty one.
    pub(crate) fn genesis_snapshot(cfg: &ExperimentConfig, seed_offset: u64) -> RunSnapshot {
        let plan = FaultPlan::empty();
        let link_plan = plan.link_plan().clone();
        let mut sim_config = SimConfig {
            dt: cfg.dt,
            seed: cfg.seed.wrapping_add(seed_offset),
            ..SimConfig::default()
        };
        if let Some(noise) = &cfg.noise {
            sim_config.sensors.noise = noise.clone();
        }
        let mut sim = Simulator::new_shared(sim_config, cfg.workload.shared_environment());
        let injector = SharedInjector::new(FaultInjector::new(plan));
        let mut firmware = Firmware::new(cfg.profile, cfg.bugs.clone(), injector.clone());
        let link = FaultyLink::new(
            link_plan,
            SimRng::seed_from_u64(cfg.seed.wrapping_add(seed_offset) ^ LINK_RNG_SALT),
        );
        let mut output = StepOutput::empty();
        sim.step_into(&MotorCommands::IDLE, &mut output);
        let time = sim.time();
        RunSnapshot {
            sim: sim.snapshot(),
            firmware: firmware.snapshot(),
            injector: injector.snapshot(),
            link: LinkSnapshot::capture(&link),
            tracker: ProtocolTracker::new(),
            workload: cfg.workload.fresh(),
            samples: CowVec::with_capacity((cfg.max_duration / cfg.sample_interval) as usize + 2),
            output,
            fence_violations: 0,
            next_sample_time: 0.0,
            workload_status: WorkloadStatus::Running,
            terminal_since: None,
            time,
            prefix: crate::snapshot::InjectionPrefix::default(),
        }
    }

    fn execute(&mut self, plan: FaultPlan, seed_offset: u64) -> RunResult {
        self.runs += 1;
        self.step_cursor = 0;
        self.fresh_keys.clear();
        // The wall-clock watchdog baseline. Sampled once per run and
        // compared coarsely (every `WALL_CLOCK_STRIDE` iterations); see
        // [`WatchdogConfig::wall_clock_seconds`] for why this cannot
        // perturb a deterministic run.
        let started = self
            .config
            .watchdog
            .wall_clock_seconds
            // avis-lint: allow(d1, reason = "wall-clock watchdog backstop: only ever converts a hung substrate into RunVerdict::Diverged, never observed by a terminating run")
            .map(|_| std::time::Instant::now());
        let cfg = &self.config;
        // Only injection runs (seed offset 0) go through the checkpoint
        // tree: profiling runs each use a distinct sensor-noise seed and
        // execute exactly once, so snapshotting them is pure overhead.
        // A tripped checksum breaker (`SnapshotCache::degraded`) forces
        // cold execution for the rest of the runner's life.
        let checkpointing = cfg.checkpoints.enabled && seed_offset == 0 && !self.cache.degraded();

        // Fork from the deepest cached snapshot whose injection prefix
        // matches the plan — probing both the local cache and the shared
        // tier and taking whichever is deeper — or provision a cold run
        // from t = 0. A forked run is bit-identical to a cold one: the
        // restored state is the exact state a cold run of this plan would
        // reach at the fork time, because the two plans agree on every
        // failure scheduled before it (see `crate::snapshot` for the
        // argument).
        // The delta-chain context: the key + exact snapshot of the last
        // cut this run stored into (or took from) the local cache. The
        // next recorded cut is diffed against it (see
        // [`SnapshotCache::record`]); forks served by the shared tier
        // start a fresh chain (their snapshot has no local entry). At
        // stride 1 (keyframes only) no cut can ever be delta-encoded, so
        // the context — and the snapshot clone it would keep resident —
        // is skipped entirely.
        let chains_enabled = cfg.checkpoints.keyframe_stride > 1;
        let mut chain_parent: Option<ChainParent> = None;
        let resumed = if checkpointing {
            // Probe both tiers for depth first; only the winner is
            // materialised (snapshot clones are cheap but not free — the
            // fixed substrate state is copied even under CoW).
            let local = self.cache.peek_deepest(seed_offset, &plan, f64::INFINITY);
            let local_depth = local.as_ref().map(|(t, _)| *t);
            // Carry the tier handle with its probed depth, so the
            // take-from-shared arm below cannot exist without a tier.
            let shared_probe = self.shared.as_ref().and_then(|tier| {
                tier.peek_depth(seed_offset, &plan, f64::INFINITY)
                    .map(|d| (d, tier))
            });
            let take_local = |cache: &mut SnapshotCache, chain_parent: &mut Option<ChainParent>| {
                local.clone().and_then(|(time, key)| {
                    // `take` re-validates the chain's record-time
                    // checksums while materialising. A corrupt chain is
                    // quarantined inside the cache (counted in
                    // `CheckpointStats::{quarantined, checksum_failures}`)
                    // and `None` comes back — the run then transparently
                    // cold-starts, which is always correct, just slower.
                    let snapshot = cache.take(&key, time)?;
                    if chains_enabled {
                        *chain_parent = Some(ChainParent {
                            key,
                            snapshot: snapshot.clone(),
                        });
                    }
                    Some(snapshot)
                })
            };
            match shared_probe {
                Some((probed, tier)) if Some(probed) > local_depth => {
                    match tier.take_deepest(seed_offset, &plan, f64::INFINITY) {
                        Some((depth, snapshot)) => {
                            self.cache.note_shared_fork(depth);
                            Some(snapshot)
                        }
                        // A republish evicted the entry between probe and
                        // take: fall back to the local candidate, if any.
                        None => take_local(&mut self.cache, &mut chain_parent),
                    }
                }
                _ => take_local(&mut self.cache, &mut chain_parent),
            }
        } else {
            None
        };

        // The workload's commands and the firmware's telemetry cross a
        // fault shim around the MAVLite link; its plan travels inside the
        // [`FaultPlan`] and is swapped at restore exactly like the sensor
        // injector's.
        let link_plan = plan.link_plan().clone();
        let mut outbox: Vec<Message> = Vec::new();
        let (
            mut sim,
            injector,
            mut firmware,
            mut link,
            mut tracker,
            mut workload,
            mut samples,
            mut output,
            mut fence_violations,
            mut next_sample_time,
            mut workload_status,
            mut terminal_since,
        );
        match resumed {
            Some(snapshot) => {
                let RunSnapshot {
                    sim: sim_snap,
                    firmware: firmware_snap,
                    injector: injector_snap,
                    link: link_snap,
                    tracker: tracker_snap,
                    workload: workload_snap,
                    samples: samples_snap,
                    output: output_snap,
                    fence_violations: fences_snap,
                    next_sample_time: sample_time_snap,
                    workload_status: status_snap,
                    terminal_since: terminal_snap,
                    ..
                } = snapshot;
                injector = SharedInjector::new(injector_snap.into_restored_with_plan(plan));
                firmware = firmware_snap.into_restored(injector.clone());
                sim = sim_snap.into_restored();
                link = link_snap.into_restored_with_plan(link_plan);
                tracker = tracker_snap;
                workload = workload_snap;
                samples = samples_snap;
                output = output_snap;
                fence_violations = fences_snap;
                next_sample_time = sample_time_snap;
                workload_status = status_snap;
                terminal_since = terminal_snap;
            }
            None => {
                if checkpointing {
                    self.cache.note_cold_run();
                }
                let mut sim_config = SimConfig {
                    dt: cfg.dt,
                    seed: cfg.seed.wrapping_add(seed_offset),
                    ..SimConfig::default()
                };
                if let Some(noise) = &cfg.noise {
                    sim_config.sensors.noise = noise.clone();
                }
                sim = Simulator::new_shared(sim_config, cfg.workload.shared_environment());
                injector = SharedInjector::new(FaultInjector::new(plan));
                firmware = Firmware::new(cfg.profile, cfg.bugs.clone(), injector.clone());
                link = FaultyLink::new(
                    link_plan,
                    SimRng::seed_from_u64(cfg.seed.wrapping_add(seed_offset) ^ LINK_RNG_SALT),
                );
                tracker = ProtocolTracker::new();
                workload = cfg.workload.fresh();

                // Pre-size the trace for the full run and reuse the
                // step/telemetry buffers across iterations: the lock-step
                // loop below performs no per-step heap allocations in
                // steady state.
                samples =
                    CowVec::with_capacity((cfg.max_duration / cfg.sample_interval) as usize + 2);
                fence_violations = 0usize;
                next_sample_time = 0.0;
                workload_status = WorkloadStatus::Running;
                terminal_since = None;

                // Prime the loop with one idle simulator step to obtain
                // readings.
                output = StepOutput::empty();
                sim.step_into(&MotorCommands::IDLE, &mut output);
            }
        }

        // The next snapshot boundary: the first multiple of the
        // checkpoint interval strictly after the current (cold or fork)
        // time, so a forked run extends the tree instead of re-recording
        // the chain it resumed from. Anchor cuts fire at the *last*
        // loop-top at or before each anchor time (`time + dt > anchor`),
        // so a plan injecting exactly at the anchor can fork from the cut
        // — a failure scheduled at `t` first fires at the firmware step
        // at `t`, after a snapshot taken at loop-top time `t`.
        let checkpoint_interval = cfg.checkpoints.interval;
        let mut next_checkpoint = if checkpointing {
            (sim.time() / checkpoint_interval).floor() * checkpoint_interval + checkpoint_interval
        } else {
            f64::INFINITY
        };
        let anchors: &[f64] = if checkpointing {
            &cfg.checkpoints.anchors
        } else {
            &[]
        };
        // Skip anchors whose cut already lies at or before the resume
        // point (the chain we forked from recorded them).
        let mut anchor_idx = anchors.partition_point(|&a| a < sim.time() + cfg.dt);

        // How often (in lock-step iterations) the wall-clock backstop is
        // actually consulted — coarse on purpose, so the hot loop never
        // syscalls per step.
        const WALL_CLOCK_STRIDE: u64 = 4096;
        let mut verdict = RunVerdict::Completed;
        while sim.time() < cfg.max_duration {
            let time = sim.time();
            // Scenario watchdogs, checked at the top of the loop. The
            // step cursor is derived from *simulated* time, so it is
            // identical cold or forked — the step budget trips at the
            // same simulated state at any parallelism. It also survives
            // on the runner across a panic unwind, which is how
            // `run_contained` learns the crash step.
            self.step_cursor = (time / cfg.dt).round() as u64;
            if let Some(max_steps) = cfg.watchdog.max_steps {
                if self.step_cursor >= max_steps {
                    verdict = RunVerdict::Diverged;
                    break;
                }
            }
            if let (Some(limit), Some(started)) = (cfg.watchdog.wall_clock_seconds, started) {
                if self.step_cursor.is_multiple_of(WALL_CLOCK_STRIDE)
                    && started.elapsed().as_secs_f64() > limit
                {
                    verdict = RunVerdict::Diverged;
                    break;
                }
            }
            // Checkpoint recording, cut at the top of the loop body: the
            // snapshot captures the state *before* this step's
            // ground-station exchange, firmware step and physics step.
            let anchor_due = anchor_idx < anchors.len() && time + cfg.dt > anchors[anchor_idx];
            if time >= next_checkpoint || anchor_due {
                let snapshot = RunSnapshot {
                    sim: sim.snapshot(),
                    firmware: firmware.snapshot(),
                    injector: injector.snapshot(),
                    link: LinkSnapshot::capture(&link),
                    tracker: tracker.clone(),
                    workload: workload.clone(),
                    // Seal the sample tail into a shared chunk: the
                    // snapshot (and every later one along this chain)
                    // shares the history structurally — recording is
                    // O(1) in the run length.
                    samples: samples.sealed_clone(),
                    output: output.clone(),
                    fence_violations,
                    next_sample_time,
                    workload_status: workload_status.clone(),
                    terminal_since,
                    time,
                    prefix: injection_prefix(&injector.plan(), time),
                };
                // Remember the cut's key before the snapshot moves: a
                // contained panic quarantines exactly these keys from
                // the local cache and retracts them from the shared
                // tier's pending buffer.
                self.fresh_keys
                    .push(SnapshotKey::for_snapshot(seed_offset, &snapshot));
                if let Some(tier) = &self.shared {
                    // The tier always receives the full snapshot: its
                    // entries cross worker (and campaign) boundaries, so
                    // they must be independently restorable.
                    tier.offer(seed_offset, &snapshot);
                }
                // The local cache stores the cut as a delta against the
                // previous cut of this run where the keyframe stride
                // allows, otherwise as a full keyframe; either way the
                // stored cut becomes the next cut's chain parent. A
                // duplicate cell keeps the previous chain context.
                let parent_candidate = chains_enabled.then(|| snapshot.clone());
                let stored = self
                    .cache
                    .record(seed_offset, snapshot, chain_parent.as_ref());
                if let (Some(key), Some(snapshot)) = (stored, parent_candidate) {
                    chain_parent = Some(ChainParent { key, snapshot });
                }
                while time >= next_checkpoint {
                    next_checkpoint += checkpoint_interval;
                }
                while anchor_idx < anchors.len() && time + cfg.dt > anchors[anchor_idx] {
                    anchor_idx += 1;
                }
            }
            // Ground-station exchange, both legs crossing the fault shim:
            // vehicle telemetry travels to the GCS, workload commands
            // travel back — dropped, duplicated, reordered, corrupted,
            // delayed or stormed as the link plan dictates. With no link
            // faults the shim is a lossless wire round-trip.
            firmware.drain_outbox_into(&mut outbox);
            for msg in &outbox {
                link.send(Endpoint::Vehicle, msg, time);
            }
            let telemetry = link.deliver(Endpoint::GroundStation, time);
            tracker.note_delivered(&telemetry, time, firmware.mission().items());
            let (commands, status) = workload.tick(&telemetry, time);
            for msg in &commands {
                // The tracker records *intent* — what the workload sent —
                // before the shim decides what survives the link.
                tracker.note_sent(msg, time);
                link.send(Endpoint::GroundStation, msg, time);
            }
            let inbound = link.deliver(Endpoint::Vehicle, time);
            firmware.handle_messages(inbound.iter());
            workload_status = status;
            if workload_status.is_terminal() {
                let since = *terminal_since.get_or_insert(time);
                if time - since >= cfg.grace_period {
                    break;
                }
            }

            // Firmware control step, then physics.
            let motor = firmware.step(&output.readings, time, cfg.dt);
            sim.step_into(&motor, &mut output);
            if !output.violated_fences.is_empty() {
                fence_violations += 1;
            }

            // Trace sampling.
            if time >= next_sample_time {
                samples.push(StateSample {
                    time,
                    position: output.state.position,
                    acceleration: output.state.acceleration,
                    mode: firmware.mode(),
                });
                next_sample_time += cfg.sample_interval;
            }
        }

        let mode_transitions: Vec<ModeTransition> = injector
            .mode_transitions()
            .into_iter()
            .filter_map(|r| transition_from_code(r.time, r.to))
            .collect();

        let duration = sim.time();
        let trace = Trace {
            sample_interval: cfg.sample_interval,
            samples: samples.into_vec(),
            mode_transitions,
            collision: sim.first_collision(),
            fence_violations,
            workload_status,
            duration,
            protocol: tracker.into_events(),
        };
        let mut triggered_defects: Vec<BugId> = firmware
            .defect_log()
            .iter()
            .flat_map(|(_, o)| o.active.iter().copied())
            .collect();
        triggered_defects.sort_unstable();
        triggered_defects.dedup();
        // The injector owned the plan for the duration of the run; take it
        // back rather than cloning it up front.
        let plan = injector.take_plan();
        RunResult {
            plan,
            trace,
            simulated_seconds: duration,
            triggered_defects,
            verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::CheckpointStats;
    use avis_firmware::{BugId, OperatingMode};
    use avis_hinj::FaultSpec;
    use avis_sim::{SensorInstance, SensorKind};
    use avis_workload::auto_box_mission;

    fn quiet_config(bugs: BugSet) -> ExperimentConfig {
        let mut cfg =
            ExperimentConfig::new(FirmwareProfile::ArduPilotLike, bugs, auto_box_mission());
        cfg.noise = Some(SensorNoise::noiseless());
        cfg.max_duration = 120.0;
        cfg
    }

    #[test]
    fn golden_run_passes_and_does_not_crash() {
        let mut runner = ExperimentRunner::new(quiet_config(BugSet::none()));
        let result = runner.run_profiling(0);
        assert_eq!(result.trace.workload_status, WorkloadStatus::Passed);
        assert!(!result.crashed());
        assert!(
            result.trace.max_altitude() > 15.0,
            "the mission climbs to ~20 m"
        );
        assert!(
            result.trace.len() > 100,
            "trace is sampled throughout the run"
        );
        assert!(result.simulated_seconds > 30.0);
        assert_eq!(runner.runs_executed(), 1);
        // The mode transitions include takeoff, auto legs and landing.
        let modes: Vec<OperatingMode> = result
            .trace
            .mode_transitions
            .iter()
            .map(|t| t.mode)
            .collect();
        assert!(modes.contains(&OperatingMode::Takeoff));
        assert!(modes.iter().any(|m| m.is_auto()));
        assert!(modes.contains(&OperatingMode::Land));
    }

    #[test]
    fn profiling_runs_with_different_indices_differ_slightly() {
        let mut cfg = quiet_config(BugSet::none());
        cfg.noise = None; // keep the default noise so runs differ
        let mut runner = ExperimentRunner::new(cfg);
        let a = runner.run_profiling(0);
        let b = runner.run_profiling(1);
        assert_eq!(a.trace.workload_status, WorkloadStatus::Passed);
        assert_eq!(b.trace.workload_status, WorkloadStatus::Passed);
        assert_ne!(a.trace.samples, b.trace.samples, "different noise seeds");
    }

    #[test]
    fn identical_plans_replay_identically() {
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Gps, 1),
            30.0,
        )]);
        let mut runner = ExperimentRunner::new(quiet_config(BugSet::none()));
        let a = runner.run_with_plan(plan.clone());
        let b = runner.run_with_plan(plan);
        assert_eq!(
            a.trace.samples, b.trace.samples,
            "replay must be deterministic"
        );
    }

    #[test]
    fn forked_replay_is_bit_identical_to_cold_execution() {
        let gps1 = SensorInstance::new(SensorKind::Gps, 1);
        let plan_a = FaultPlan::from_specs(vec![FaultSpec::new(gps1, 40.0)]);
        let plan_b = FaultPlan::from_specs(vec![FaultSpec::new(gps1, 50.0)]);

        // Reference results from a checkpoint-disabled runner.
        let mut cold_cfg = quiet_config(BugSet::none());
        cold_cfg.checkpoints = CheckpointConfig::disabled();
        let mut cold_runner = ExperimentRunner::new(cold_cfg);
        let cold_a = cold_runner.run_with_plan(plan_a.clone());
        let cold_b = cold_runner.run_with_plan(plan_b.clone());
        assert_eq!(cold_runner.checkpoint_stats(), CheckpointStats::default());

        // The checkpointing runner cold-starts the first plan and forks
        // the second off the shared fault-free prefix (< 40 s).
        let mut runner = ExperimentRunner::new(quiet_config(BugSet::none()));
        let a = runner.run_with_plan(plan_a);
        let b = runner.run_with_plan(plan_b);
        assert_eq!(a, cold_a, "cold-started checkpointing run diverged");
        assert_eq!(b, cold_b, "forked run diverged from cold execution");

        let stats = runner.checkpoint_stats();
        assert_eq!(stats.cold_runs, 1);
        assert_eq!(stats.forked_runs, 1);
        assert!(
            stats.simulated_seconds_skipped >= 35.0,
            "the fork should resume close to the 40 s injection: {stats:?}"
        );
        assert!(stats.snapshots_recorded as usize >= stats.snapshots_cached);
        assert!(stats.cached_bytes > 0);
    }

    #[test]
    fn tiny_memory_budget_evicts_but_stays_correct() {
        let gps1 = SensorInstance::new(SensorKind::Gps, 1);
        let mut cfg = quiet_config(BugSet::none());
        // Room for roughly one snapshot: almost every record evicts.
        cfg.checkpoints = CheckpointConfig::with_max_bytes(64 * 1024);
        let mut runner = ExperimentRunner::new(cfg);
        let mut cold_cfg = quiet_config(BugSet::none());
        cold_cfg.checkpoints = CheckpointConfig::disabled();
        let mut cold_runner = ExperimentRunner::new(cold_cfg);
        for time in [30.0, 45.0, 60.0] {
            let plan = FaultPlan::from_specs(vec![FaultSpec::new(gps1, time)]);
            let budgeted = runner.run_with_plan(plan.clone());
            let cold = cold_runner.run_with_plan(plan);
            assert_eq!(budgeted, cold, "eviction must never change results");
        }
        let stats = runner.checkpoint_stats();
        assert!(
            stats.snapshots_evicted > 0,
            "budget should evict: {stats:?}"
        );
        assert!(stats.cached_bytes <= 64 * 1024);
    }

    #[test]
    fn fault_free_run_with_current_code_base_is_still_safe() {
        // The injected defects only corrupt behaviour when their trigger
        // sensor fails; without injection the mission completes normally.
        let bugs = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
        let mut runner = ExperimentRunner::new(quiet_config(bugs));
        let result = runner.run_profiling(0);
        assert_eq!(result.trace.workload_status, WorkloadStatus::Passed);
        assert!(!result.crashed());
    }

    #[test]
    fn injected_accel_failure_during_takeoff_crashes_buggy_firmware() {
        // APM-16021: primary accelerometer failure during the climb.
        let bugs = BugSet::only(BugId::Apm16021);
        let mut runner = ExperimentRunner::new(quiet_config(bugs));
        // Profile first to find the takeoff window.
        let golden = runner.run_profiling(0);
        let takeoff_time = golden
            .trace
            .mode_transitions
            .iter()
            .find(|t| t.mode == OperatingMode::Takeoff)
            .map(|t| t.time)
            .expect("golden run takes off");
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Accelerometer, 0),
            takeoff_time + 4.0,
        )]);
        let result = runner.run_with_plan(plan);
        assert!(result.crashed(), "the APM-16021 defect crashes the vehicle");
    }

    #[test]
    fn same_failure_without_the_bug_is_handled_safely() {
        let mut runner = ExperimentRunner::new(quiet_config(BugSet::none()));
        let golden = runner.run_profiling(0);
        let takeoff_time = golden
            .trace
            .mode_transitions
            .iter()
            .find(|t| t.mode == OperatingMode::Takeoff)
            .map(|t| t.time)
            .unwrap();
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Accelerometer, 0),
            takeoff_time + 4.0,
        )]);
        let result = runner.run_with_plan(plan);
        assert!(
            !result.crashed(),
            "failover to the backup accelerometer handles this"
        );
    }
}
