//! The experiment runner: provisions a fresh simulator + firmware +
//! workload per test, executes one fault-injection scenario in lock-step
//! and records the [`Trace`] (the `RunExperiment` procedure of
//! Algorithm 1, and the step loop of Figure 7).

use crate::trace::{transition_from_code, ModeTransition, StateSample, Trace};
use avis_firmware::{BugId, BugSet, Firmware, FirmwareProfile};
use avis_hinj::{FaultInjector, FaultPlan, SharedInjector};
use avis_mavlite::Message;
use avis_sim::simulator::{SimConfig, Simulator, StepOutput};
use avis_sim::{MotorCommands, SensorNoise};
use avis_workload::{ScriptedWorkload, WorkloadStatus};
use serde::{Deserialize, Serialize};

/// Configuration of an experiment: which firmware, which injected defects,
/// which workload, and the simulation parameters shared by every run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Firmware profile under test.
    pub profile: FirmwareProfile,
    /// Defects compiled into the firmware ("current code base" or a single
    /// re-inserted bug).
    pub bugs: BugSet,
    /// The workload to execute.
    pub workload: ScriptedWorkload,
    /// Simulation time-step (s).
    pub dt: f64,
    /// Hard cap on simulated time per run (s).
    pub max_duration: f64,
    /// Interval at which the trace is sampled (s).
    pub sample_interval: f64,
    /// Base RNG seed for sensor noise. Each run adds its own offset so
    /// profiling runs differ realistically.
    pub seed: u64,
    /// Sensor noise level (`None` keeps the simulator default).
    pub noise: Option<SensorNoise>,
    /// Extra simulated seconds to keep running after the workload reaches a
    /// terminal state (so post-landing behaviour is captured).
    pub grace_period: f64,
}

impl ExperimentConfig {
    /// A configuration with sensible defaults for the given profile,
    /// defects and workload.
    pub fn new(profile: FirmwareProfile, bugs: BugSet, workload: ScriptedWorkload) -> Self {
        ExperimentConfig {
            profile,
            bugs,
            workload,
            dt: 0.0025,
            max_duration: 150.0,
            sample_interval: 0.1,
            seed: 7,
            noise: None,
            grace_period: 2.0,
        }
    }
}

/// The outcome of one simulated test run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// The fault plan that was injected.
    pub plan: FaultPlan,
    /// The recorded trace.
    pub trace: Trace,
    /// Simulated duration of the run (s) — the "cost" charged against the
    /// checker's test budget.
    pub simulated_seconds: f64,
    /// Injected defects that activated during the run (used to map unsafe
    /// conditions back to the bugs of Tables II and V).
    pub triggered_defects: Vec<BugId>,
}

impl RunResult {
    /// Whether the run ended in a physical collision.
    pub fn crashed(&self) -> bool {
        self.trace.collision.is_some()
    }
}

/// The experiment runner.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    config: ExperimentConfig,
    runs: u64,
}

impl ExperimentRunner {
    /// Creates a runner for the given configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        assert!(config.dt > 0.0, "dt must be positive");
        assert!(
            config.sample_interval >= config.dt,
            "sample interval must be >= dt"
        );
        ExperimentRunner { config, runs: 0 }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Number of runs executed so far.
    pub fn runs_executed(&self) -> u64 {
        self.runs
    }

    /// Executes the workload with no injected faults (a golden / profiling
    /// run). `profiling_index` varies the sensor-noise seed so profiling
    /// runs differ the way real repeated flights do.
    pub fn run_profiling(&mut self, profiling_index: u64) -> RunResult {
        self.execute(FaultPlan::empty(), profiling_index + 1)
    }

    /// Executes one fault-injection scenario.
    pub fn run_with_plan(&mut self, plan: FaultPlan) -> RunResult {
        self.execute(plan, 0)
    }

    fn execute(&mut self, plan: FaultPlan, seed_offset: u64) -> RunResult {
        self.runs += 1;
        let cfg = &self.config;

        let mut sim_config = SimConfig {
            dt: cfg.dt,
            seed: cfg.seed.wrapping_add(seed_offset),
            ..SimConfig::default()
        };
        if let Some(noise) = &cfg.noise {
            sim_config.sensors.noise = noise.clone();
        }
        let mut sim = Simulator::new(sim_config, cfg.workload.environment().clone());
        let injector = SharedInjector::new(FaultInjector::new(plan));
        let mut firmware = Firmware::new(cfg.profile, cfg.bugs.clone(), injector.clone());
        let mut workload = cfg.workload.fresh();

        // Pre-size the trace for the full run and reuse the step/telemetry
        // buffers across iterations: the lock-step loop below performs no
        // per-step heap allocations in steady state.
        let mut samples: Vec<StateSample> =
            Vec::with_capacity((cfg.max_duration / cfg.sample_interval) as usize + 2);
        let mut telemetry: Vec<Message> = Vec::new();
        let mut fence_violations = 0usize;
        let mut next_sample_time = 0.0;
        let mut workload_status = WorkloadStatus::Running;
        let mut terminal_since: Option<f64> = None;

        // Prime the loop with one idle simulator step to obtain readings.
        let mut output = StepOutput::empty();
        sim.step_into(&MotorCommands::IDLE, &mut output);

        while sim.time() < cfg.max_duration {
            let time = sim.time();
            // Ground-station side: deliver telemetry, collect commands.
            firmware.drain_outbox_into(&mut telemetry);
            let (commands, status) = workload.tick(&telemetry, time);
            firmware.handle_messages(commands.iter());
            workload_status = status;
            if workload_status.is_terminal() {
                let since = *terminal_since.get_or_insert(time);
                if time - since >= cfg.grace_period {
                    break;
                }
            }

            // Firmware control step, then physics.
            let motor = firmware.step(&output.readings, time, cfg.dt);
            sim.step_into(&motor, &mut output);
            if !output.violated_fences.is_empty() {
                fence_violations += 1;
            }

            // Trace sampling.
            if time >= next_sample_time {
                samples.push(StateSample {
                    time,
                    position: output.state.position,
                    acceleration: output.state.acceleration,
                    mode: firmware.mode(),
                });
                next_sample_time += cfg.sample_interval;
            }
        }

        let mode_transitions: Vec<ModeTransition> = injector
            .mode_transitions()
            .into_iter()
            .filter_map(|r| transition_from_code(r.time, r.to))
            .collect();

        let duration = sim.time();
        let trace = Trace {
            sample_interval: cfg.sample_interval,
            samples,
            mode_transitions,
            collision: sim.first_collision(),
            fence_violations,
            workload_status,
            duration,
        };
        let mut triggered_defects: Vec<BugId> = firmware
            .defect_log()
            .iter()
            .flat_map(|(_, o)| o.active.iter().copied())
            .collect();
        triggered_defects.sort_unstable();
        triggered_defects.dedup();
        // The injector owned the plan for the duration of the run; take it
        // back rather than cloning it up front.
        let plan = injector.take_plan();
        RunResult {
            plan,
            trace,
            simulated_seconds: duration,
            triggered_defects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_firmware::{BugId, OperatingMode};
    use avis_hinj::FaultSpec;
    use avis_sim::{SensorInstance, SensorKind};
    use avis_workload::auto_box_mission;

    fn quiet_config(bugs: BugSet) -> ExperimentConfig {
        let mut cfg =
            ExperimentConfig::new(FirmwareProfile::ArduPilotLike, bugs, auto_box_mission());
        cfg.noise = Some(SensorNoise::noiseless());
        cfg.max_duration = 120.0;
        cfg
    }

    #[test]
    fn golden_run_passes_and_does_not_crash() {
        let mut runner = ExperimentRunner::new(quiet_config(BugSet::none()));
        let result = runner.run_profiling(0);
        assert_eq!(result.trace.workload_status, WorkloadStatus::Passed);
        assert!(!result.crashed());
        assert!(
            result.trace.max_altitude() > 15.0,
            "the mission climbs to ~20 m"
        );
        assert!(
            result.trace.len() > 100,
            "trace is sampled throughout the run"
        );
        assert!(result.simulated_seconds > 30.0);
        assert_eq!(runner.runs_executed(), 1);
        // The mode transitions include takeoff, auto legs and landing.
        let modes: Vec<OperatingMode> = result
            .trace
            .mode_transitions
            .iter()
            .map(|t| t.mode)
            .collect();
        assert!(modes.contains(&OperatingMode::Takeoff));
        assert!(modes.iter().any(|m| m.is_auto()));
        assert!(modes.contains(&OperatingMode::Land));
    }

    #[test]
    fn profiling_runs_with_different_indices_differ_slightly() {
        let mut cfg = quiet_config(BugSet::none());
        cfg.noise = None; // keep the default noise so runs differ
        let mut runner = ExperimentRunner::new(cfg);
        let a = runner.run_profiling(0);
        let b = runner.run_profiling(1);
        assert_eq!(a.trace.workload_status, WorkloadStatus::Passed);
        assert_eq!(b.trace.workload_status, WorkloadStatus::Passed);
        assert_ne!(a.trace.samples, b.trace.samples, "different noise seeds");
    }

    #[test]
    fn identical_plans_replay_identically() {
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Gps, 1),
            30.0,
        )]);
        let mut runner = ExperimentRunner::new(quiet_config(BugSet::none()));
        let a = runner.run_with_plan(plan.clone());
        let b = runner.run_with_plan(plan);
        assert_eq!(
            a.trace.samples, b.trace.samples,
            "replay must be deterministic"
        );
    }

    #[test]
    fn fault_free_run_with_current_code_base_is_still_safe() {
        // The injected defects only corrupt behaviour when their trigger
        // sensor fails; without injection the mission completes normally.
        let bugs = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
        let mut runner = ExperimentRunner::new(quiet_config(bugs));
        let result = runner.run_profiling(0);
        assert_eq!(result.trace.workload_status, WorkloadStatus::Passed);
        assert!(!result.crashed());
    }

    #[test]
    fn injected_accel_failure_during_takeoff_crashes_buggy_firmware() {
        // APM-16021: primary accelerometer failure during the climb.
        let bugs = BugSet::only(BugId::Apm16021);
        let mut runner = ExperimentRunner::new(quiet_config(bugs));
        // Profile first to find the takeoff window.
        let golden = runner.run_profiling(0);
        let takeoff_time = golden
            .trace
            .mode_transitions
            .iter()
            .find(|t| t.mode == OperatingMode::Takeoff)
            .map(|t| t.time)
            .expect("golden run takes off");
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Accelerometer, 0),
            takeoff_time + 4.0,
        )]);
        let result = runner.run_with_plan(plan);
        assert!(result.crashed(), "the APM-16021 defect crashes the vehicle");
    }

    #[test]
    fn same_failure_without_the_bug_is_handled_safely() {
        let mut runner = ExperimentRunner::new(quiet_config(BugSet::none()));
        let golden = runner.run_profiling(0);
        let takeoff_time = golden
            .trace
            .mode_transitions
            .iter()
            .find(|t| t.mode == OperatingMode::Takeoff)
            .map(|t| t.time)
            .unwrap();
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Accelerometer, 0),
            takeoff_time + 4.0,
        )]);
        let result = runner.run_with_plan(plan);
        assert!(
            !result.crashed(),
            "failover to the backup accelerometer handles this"
        );
    }
}
