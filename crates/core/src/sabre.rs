//! SABRE — the stratified breadth-first search over the fault space
//! (Algorithm 1).
//!
//! SABRE anchors fault injection at the operating-mode transitions
//! observed in a profiling run, explores every (symmetry-pruned) failure
//! set at each anchor, re-enqueues the mode transitions of each bug-free
//! result so that *additional* failures can be layered on top in later
//! runs, and finally re-enqueues the anchor one time-increment later so
//! the neighbourhood of each transition is eventually swept.

use crate::pruning::PruningState;
use avis_hinj::{FaultPlan, FaultSpec};
use avis_sim::SensorInstance;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One entry of the transition queue: inject new failures at `timestamp`
/// on top of the failures already present in `base_plan`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueEntry {
    /// The anchored injection time (s).
    pub timestamp: f64,
    /// Failures inherited from the run that produced this anchor.
    pub base_plan: FaultPlan,
}

/// Configuration of the SABRE queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SabreConfig {
    /// Increment applied when re-enqueueing a dequeued anchor (the
    /// "timestamp + 1" of Algorithm 1, in seconds).
    pub time_increment: f64,
    /// Anchors past this time are not enqueued (the workload is over).
    pub horizon: f64,
    /// Upper bound on the queue length (guards against unbounded growth
    /// when the test budget is large).
    pub max_queue: usize,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            time_increment: 1.0,
            horizon: 150.0,
            max_queue: 4096,
        }
    }
}

/// The SABRE scheduler state: the transition queue plus the pruning state.
#[derive(Debug, Clone)]
pub struct SabreQueue {
    config: SabreConfig,
    queue: VecDeque<QueueEntry>,
    pruning: PruningState,
    dequeued: u64,
}

impl SabreQueue {
    /// Initialises the queue from the mode-transition times of the
    /// profiling run (Line 1 of Algorithm 1).
    pub fn new(profile_transition_times: &[f64], config: SabreConfig) -> Self {
        let mut queue = VecDeque::new();
        for &t in profile_transition_times {
            if t <= config.horizon {
                queue.push_back(QueueEntry {
                    timestamp: t,
                    base_plan: FaultPlan::empty(),
                });
            }
        }
        SabreQueue {
            config,
            queue,
            pruning: PruningState::new(),
            dequeued: 0,
        }
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SabreConfig {
        &self.config
    }

    /// Whether any anchors remain.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Number of anchors dequeued so far.
    pub fn dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Access to the pruning state (for statistics).
    pub fn pruning(&self) -> &PruningState {
        &self.pruning
    }

    /// Dequeues the next anchor (Line 4) and immediately re-enqueues it one
    /// time increment later (Line 20), bounded by the horizon.
    pub fn next_anchor(&mut self) -> Option<QueueEntry> {
        let entry = self.queue.pop_front()?;
        self.dequeued += 1;
        let shifted = entry.timestamp + self.config.time_increment;
        if shifted <= self.config.horizon && self.queue.len() < self.config.max_queue {
            self.queue.push_back(QueueEntry {
                timestamp: shifted,
                base_plan: entry.base_plan.clone(),
            });
        }
        Some(entry)
    }

    /// Builds the concrete (not yet pruned) plan for injecting
    /// `failure_set` at the anchor: the anchor's inherited failures plus
    /// one failure per instance at the anchor timestamp. This is the plan
    /// [`SabreQueue::plan_for`] submits to pruning; the parallel engine
    /// uses it to speculate without touching the real pruning state.
    pub fn assemble_plan(anchor: &QueueEntry, failure_set: &[SensorInstance]) -> FaultPlan {
        let mut plan = anchor.base_plan.clone();
        for &instance in failure_set {
            plan.add(FaultSpec::new(instance, anchor.timestamp));
        }
        plan
    }

    /// Builds the concrete plan for injecting `failure_set` at the anchor,
    /// returning `None` if pruning rejects it (Lines 6–9).
    pub fn plan_for(
        &mut self,
        anchor: &QueueEntry,
        failure_set: &[SensorInstance],
    ) -> Option<FaultPlan> {
        let plan = Self::assemble_plan(anchor, failure_set);
        if self.pruning.should_prune(&plan) {
            return None;
        }
        self.pruning.record_explored(&plan);
        Some(plan)
    }

    /// Records a bug-free result: every mode transition of the run becomes
    /// a new anchor carrying the run's failures (Lines 11–14).
    pub fn record_ok(&mut self, plan: &FaultPlan, mode_transition_times: &[f64]) {
        for &t in mode_transition_times {
            if t > self.config.horizon || self.queue.len() >= self.config.max_queue {
                continue;
            }
            self.queue.push_back(QueueEntry {
                timestamp: t,
                base_plan: plan.clone(),
            });
        }
    }

    /// Records a bug-triggering result (Lines 16–17): enables found-bug
    /// pruning for supersets of this plan.
    pub fn record_bug(&mut self, plan: &FaultPlan) {
        self.pruning.record_bug(plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_sim::SensorKind;

    fn gps(i: u8) -> SensorInstance {
        SensorInstance::new(SensorKind::Gps, i)
    }
    fn baro(i: u8) -> SensorInstance {
        SensorInstance::new(SensorKind::Barometer, i)
    }

    #[test]
    fn initial_queue_holds_profile_transitions_in_order() {
        let mut q = SabreQueue::new(&[2.0, 10.0, 40.0], SabreConfig::default());
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_anchor().unwrap().timestamp, 2.0);
        assert_eq!(q.next_anchor().unwrap().timestamp, 10.0);
        assert_eq!(q.next_anchor().unwrap().timestamp, 40.0);
        // Re-enqueued shifted anchors follow.
        assert_eq!(q.next_anchor().unwrap().timestamp, 3.0);
        assert_eq!(q.dequeued(), 4);
    }

    #[test]
    fn horizon_limits_requeueing() {
        let config = SabreConfig {
            time_increment: 1.0,
            horizon: 5.0,
            ..Default::default()
        };
        let mut q = SabreQueue::new(&[4.5, 9.0], config);
        // 9.0 exceeds the horizon and is dropped at construction.
        assert_eq!(q.len(), 1);
        let a = q.next_anchor().unwrap();
        assert_eq!(a.timestamp, 4.5);
        // 5.5 > horizon: not re-enqueued.
        assert!(q.is_empty());
    }

    #[test]
    fn plan_for_applies_pruning() {
        let mut q = SabreQueue::new(&[2.0], SabreConfig::default());
        let anchor = q.next_anchor().unwrap();
        let p1 = q.plan_for(&anchor, &[gps(0)]);
        assert!(p1.is_some());
        // The same role-level scenario again: pruned.
        let p2 = q.plan_for(&anchor, &[gps(0)]);
        assert!(p2.is_none());
        // Backup symmetry: failing backup 1 vs backup 1 again.
        assert!(q.plan_for(&anchor, &[gps(1)]).is_some());
        assert!(q.plan_for(&anchor, &[gps(1)]).is_none());
        assert!(q.pruning().symmetry_pruned() >= 2);
    }

    #[test]
    fn found_bug_pruning_applies_to_supersets() {
        let mut q = SabreQueue::new(&[2.0], SabreConfig::default());
        let anchor = q.next_anchor().unwrap();
        let bug_plan = q.plan_for(&anchor, &[gps(0)]).unwrap();
        q.record_bug(&bug_plan);
        assert!(q.plan_for(&anchor, &[gps(0), baro(0)]).is_none());
        assert_eq!(q.pruning().found_bug_pruned(), 1);
    }

    #[test]
    fn ok_results_seed_layered_anchors() {
        let mut q = SabreQueue::new(&[2.0], SabreConfig::default());
        let anchor = q.next_anchor().unwrap();
        let plan = q.plan_for(&anchor, &[gps(0)]).unwrap();
        q.record_ok(&plan, &[2.0, 10.0, 40.0]);
        // The queue now holds: the shifted original anchor plus three new
        // anchors carrying the GPS failure.
        assert_eq!(q.len(), 4);
        let shifted = q.next_anchor().unwrap();
        assert!(shifted.base_plan.is_empty());
        let layered = q.next_anchor().unwrap();
        assert_eq!(layered.base_plan.len(), 1);
        // Layering a barometer failure on top of the inherited GPS failure.
        let combo = q.plan_for(&layered, &[baro(0)]).unwrap();
        assert_eq!(combo.len(), 2);
    }

    #[test]
    fn queue_growth_is_bounded() {
        let config = SabreConfig {
            max_queue: 5,
            ..Default::default()
        };
        let mut q = SabreQueue::new(&[1.0, 2.0, 3.0], config);
        let anchor = q.next_anchor().unwrap();
        let plan = q.plan_for(&anchor, &[gps(0)]).unwrap();
        q.record_ok(&plan, &[1.0; 100]);
        assert!(q.len() <= 5);
    }
}
