//! The checkpoint tree: memory-budgeted, LRU-evicted caching of mid-run
//! snapshots so a scenario can fork from the deepest cached state whose
//! *injection prefix* matches, instead of replaying the shared prefix
//! from `t = 0`.
//!
//! # Why this is sound
//!
//! A test run is a pure function of its [`FaultPlan`]: the simulator, the
//! firmware, the injector and the workload are all deterministic given
//! the experiment seed, and the *only* way the plan influences the run is
//! through `should_fail(instance, time)` queries, whose answers depend
//! solely on the failures scheduled at or before the query time. Two
//! plans whose failures scheduled before time `T` are identical therefore
//! drive bit-identical executions up to `T` — everything before the first
//! divergent injection is shared work.
//!
//! The cache exploits exactly that: while a run executes, the runner
//! records a [`RunSnapshot`] (simulator + firmware + injector +
//! workload + trace bookkeeping) every [`CheckpointConfig::interval`]
//! simulated seconds, keyed by the quantised injection prefix at the snapshot
//! time. A later run looks up the deepest snapshot whose key matches one
//! of its own prefixes, *verifies the un-quantised prefixes match
//! exactly* (quantisation is a hash key, never a correctness argument)
//! and resumes from there with its own plan swapped in. Runs that fork
//! mid-scenario extend the tree with deeper, prefix-specific branches —
//! hence checkpoint *tree*, not checkpoint list.
//!
//! Snapshots are recorded only for injection runs (`seed_offset == 0`):
//! profiling runs each use a distinct sensor-noise seed and execute once,
//! so caching them would only consume budget.

use crate::trace::StateSample;
use avis_firmware::FirmwareSnapshot;
use avis_hinj::{FaultPlan, FaultSpec, InjectorSnapshot};
use avis_sim::simulator::StepOutput;
use avis_sim::{SensorReading, SimSnapshot};
use avis_workload::{ScriptedWorkload, WorkloadStatus};
use std::collections::BTreeMap;

/// Configuration of the runner's checkpoint cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Whether the runner records and reuses snapshots at all. Disabled,
    /// every run cold-starts from `t = 0` (the pre-checkpoint behaviour).
    pub enabled: bool,
    /// Simulated seconds between snapshots along a run. Smaller intervals
    /// give forks a deeper resume point but cost more recording time and
    /// memory.
    pub interval: f64,
    /// Memory budget for the cache (approximate bytes). When an insert
    /// pushes the total past this, the least-recently-used snapshots are
    /// evicted until it fits again.
    ///
    /// The budget is **per runner**: every engine worker owns its own
    /// lock-free cache, so a campaign at parallelism `N` may hold up to
    /// `N × max_bytes` of snapshots in total. Size the budget against
    /// the worker count on memory-constrained hosts.
    pub max_bytes: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            enabled: true,
            interval: 5.0,
            max_bytes: 64 * 1024 * 1024,
        }
    }
}

impl CheckpointConfig {
    /// A configuration that disables checkpointing entirely.
    pub fn disabled() -> Self {
        CheckpointConfig {
            enabled: false,
            ..CheckpointConfig::default()
        }
    }

    /// A configuration with the given memory budget (bytes).
    pub fn with_max_bytes(max_bytes: usize) -> Self {
        CheckpointConfig {
            max_bytes,
            ..CheckpointConfig::default()
        }
    }
}

/// The failures of `plan` scheduled strictly before `t` — the *injection
/// prefix* that fully determines the run's behaviour on `[0, t)`.
/// (A failure scheduled exactly at `t` first fires at the firmware step
/// at `t`, which happens after a snapshot taken at loop-top time `t`.)
pub(crate) fn injection_prefix(plan: &FaultPlan, t: f64) -> Vec<FaultSpec> {
    plan.specs().filter(|s| s.time < t).collect()
}

/// The millisecond-quantised cache key of an injection prefix. Purely a
/// lookup key: before a snapshot is reused, the exact (`f64`) prefixes
/// are compared, so two plans that collide in quantised space can never
/// contaminate each other's results.
pub(crate) fn prefix_cache_key(prefix: &[FaultSpec]) -> String {
    let mut parts: Vec<String> = prefix
        .iter()
        .map(|s| {
            format!(
                "{}:{}:{}",
                s.instance.kind.name(),
                s.instance.index,
                (s.time * 1000.0).round() as i64
            )
        })
        .collect();
    parts.sort();
    parts.join("|")
}

/// Everything the runner needs to resume a run mid-flight: the three
/// substrate snapshots plus the runner's own loop bookkeeping at the cut
/// point (the top of the lock-step loop, before ground-station traffic
/// for that step is exchanged).
#[derive(Debug, Clone)]
pub struct RunSnapshot {
    /// Simulator state (vehicle, environment, sensor RNG stream, time).
    pub(crate) sim: SimSnapshot,
    /// Firmware state (estimator, navigator, failsafes, mission, modes).
    pub(crate) firmware: FirmwareSnapshot,
    /// Injector state (records + read counters; plan swapped at restore).
    pub(crate) injector: InjectorSnapshot,
    /// Workload runtime state (script progress, seen telemetry).
    pub(crate) workload: ScriptedWorkload,
    /// Trace samples recorded so far.
    pub(crate) samples: Vec<StateSample>,
    /// The step/telemetry output buffer as of the last simulator step.
    pub(crate) output: StepOutput,
    /// Fence-violation count so far.
    pub(crate) fence_violations: usize,
    /// Next trace-sample time.
    pub(crate) next_sample_time: f64,
    /// Workload status at the cut point.
    pub(crate) workload_status: WorkloadStatus,
    /// When the workload reached a terminal state, if it has.
    pub(crate) terminal_since: Option<f64>,
    /// Simulation time of the cut (s); equals the captured simulator's
    /// clock.
    pub(crate) time: f64,
    /// The exact injection prefix of the recording run at `time`.
    pub(crate) prefix: Vec<FaultSpec>,
}

impl RunSnapshot {
    /// Simulation time of the cut (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The exact injection prefix the snapshot was recorded under.
    pub fn prefix(&self) -> &[FaultSpec] {
        &self.prefix
    }

    /// Approximate heap footprint (bytes) for the cache's memory budget.
    pub fn approx_bytes(&self) -> usize {
        self.sim.approx_bytes()
            + self.firmware.approx_bytes()
            + self.injector.approx_bytes()
            + self.samples.len() * std::mem::size_of::<StateSample>()
            + self.output.readings.len() * std::mem::size_of::<SensorReading>()
            + self.prefix.len() * std::mem::size_of::<FaultSpec>()
            // Workload runtime state plus per-snapshot bookkeeping. The
            // script itself (steps, environment) is Arc-shared, not copied.
            + 1024
    }
}

/// Composite cache key: experiment seed offset, quantised injection
/// prefix, quantised snapshot time. Ordered so one prefix's snapshots
/// ("a chain of the checkpoint tree") are contiguous and time-sorted,
/// which makes deepest-first scans a reverse range iteration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SnapshotKey {
    seed_offset: u64,
    prefix: String,
    time_ms: i64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    snapshot: RunSnapshot,
    bytes: usize,
    last_used: u64,
}

/// Counters describing how the checkpoint cache behaved, surfaced through
/// [`crate::runner::ExperimentRunner::checkpoint_stats`] and reported by
/// the campaign-throughput bench.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CheckpointStats {
    /// Injection runs that resumed from a snapshot.
    pub forked_runs: u64,
    /// Injection runs that cold-started from `t = 0`.
    pub cold_runs: u64,
    /// Snapshots currently held.
    pub snapshots_cached: usize,
    /// Approximate bytes currently held.
    pub cached_bytes: usize,
    /// Snapshots recorded over the runner's lifetime.
    pub snapshots_recorded: u64,
    /// Snapshots evicted by the memory budget.
    pub snapshots_evicted: u64,
    /// Total simulated seconds *not* re-executed thanks to forking (the
    /// sum of fork-point times).
    pub simulated_seconds_skipped: f64,
}

/// The memory-budgeted, LRU-evicted snapshot store.
#[derive(Debug, Clone, Default)]
pub struct SnapshotCache {
    entries: BTreeMap<SnapshotKey, CacheEntry>,
    total_bytes: usize,
    max_bytes: usize,
    clock: u64,
    stats: CheckpointStats,
}

impl SnapshotCache {
    /// An empty cache with the given memory budget (bytes).
    pub fn new(max_bytes: usize) -> Self {
        SnapshotCache {
            max_bytes,
            ..SnapshotCache::default()
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CheckpointStats {
        CheckpointStats {
            snapshots_cached: self.entries.len(),
            cached_bytes: self.total_bytes,
            ..self.stats
        }
    }

    /// Notes that a run executed without forking.
    pub(crate) fn note_cold_run(&mut self) {
        self.stats.cold_runs += 1;
    }

    /// Returns (a clone of) the deepest cached snapshot a run of `plan`
    /// may resume from: among every snapshot whose quantised key matches
    /// one of the plan's own injection prefixes *and* whose exact prefix
    /// equals the plan's exact prefix at the snapshot time, the one with
    /// the latest cut time.
    pub(crate) fn deepest_match(
        &mut self,
        seed_offset: u64,
        plan: &FaultPlan,
    ) -> Option<RunSnapshot> {
        // The plan's prefix only changes at its own failure times, so
        // there are at most `plan.len() + 1` distinct prefixes to probe;
        // probe each one's chain from its deepest snapshot down.
        let mut boundaries: Vec<f64> = plan.specs().map(|s| s.time).collect();
        boundaries.sort_by(|a, b| a.partial_cmp(b).expect("fault times are finite"));
        boundaries.dedup();
        // `injection_prefix` is strict (`time < probe`), so probing at
        // boundary `k` selects the prefix *excluding* that boundary's
        // failures — i.e. the failures before it — and f64::INFINITY
        // probes the full-plan prefix. Together the probes enumerate
        // every distinct prefix of the plan.
        let mut best: Option<(f64, SnapshotKey)> = None;
        for k in 0..=boundaries.len() {
            let probe = if k == boundaries.len() {
                f64::INFINITY
            } else {
                boundaries[k]
            };
            let prefix = injection_prefix(plan, probe);
            let key = prefix_cache_key(&prefix);
            let lo = SnapshotKey {
                seed_offset,
                prefix: key.clone(),
                time_ms: i64::MIN,
            };
            let hi = SnapshotKey {
                seed_offset,
                prefix: key,
                time_ms: i64::MAX,
            };
            for (entry_key, entry) in self.entries.range(lo..=hi).rev() {
                let snapshot = &entry.snapshot;
                // Exact validity guard: the plan's exact prefix at the
                // snapshot's cut time must equal the recorded prefix.
                // This rejects both quantisation collisions and
                // snapshots cut *after* one of the plan's failures that
                // the recording run did not inject.
                if injection_prefix(plan, snapshot.time) == snapshot.prefix {
                    if best.as_ref().is_none_or(|(t, _)| snapshot.time > *t) {
                        best = Some((snapshot.time, entry_key.clone()));
                    }
                    break; // deeper entries of this chain are shallower in time
                }
            }
        }
        let (time, key) = best?;
        self.clock += 1;
        let entry = self.entries.get_mut(&key).expect("matched key present");
        entry.last_used = self.clock;
        self.stats.forked_runs += 1;
        self.stats.simulated_seconds_skipped += time;
        Some(entry.snapshot.clone())
    }

    /// Records a snapshot, keeping the earliest recording when the same
    /// `(seed offset, prefix, time)` cell is already occupied, then
    /// evicts least-recently-used snapshots until the memory budget is
    /// respected again.
    pub(crate) fn record(&mut self, seed_offset: u64, snapshot: RunSnapshot) {
        let key = SnapshotKey {
            seed_offset,
            prefix: prefix_cache_key(&snapshot.prefix),
            time_ms: (snapshot.time * 1000.0).round() as i64,
        };
        if self.entries.contains_key(&key) {
            return;
        }
        let bytes = snapshot.approx_bytes();
        self.clock += 1;
        self.entries.insert(
            key,
            CacheEntry {
                snapshot,
                bytes,
                last_used: self.clock,
            },
        );
        self.total_bytes += bytes;
        self.stats.snapshots_recorded += 1;
        while self.total_bytes > self.max_bytes && !self.entries.is_empty() {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty cache has an LRU entry");
            let evicted = self.entries.remove(&lru).expect("LRU key present");
            self.total_bytes -= evicted.bytes;
            self.stats.snapshots_evicted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_sim::{SensorInstance, SensorKind};

    fn spec(kind: SensorKind, index: u8, time: f64) -> FaultSpec {
        FaultSpec::new(SensorInstance::new(kind, index), time)
    }

    #[test]
    fn injection_prefix_is_strictly_before_the_cut() {
        let plan = FaultPlan::from_specs(vec![
            spec(SensorKind::Gps, 0, 10.0),
            spec(SensorKind::Barometer, 0, 20.0),
        ]);
        assert!(injection_prefix(&plan, 5.0).is_empty());
        // A failure scheduled exactly at the cut has not fired yet.
        assert!(injection_prefix(&plan, 10.0).is_empty());
        assert_eq!(injection_prefix(&plan, 10.001).len(), 1);
        assert_eq!(injection_prefix(&plan, 30.0).len(), 2);
    }

    #[test]
    fn prefix_cache_key_is_order_independent_and_quantised() {
        let a = vec![
            spec(SensorKind::Gps, 0, 10.0),
            spec(SensorKind::Barometer, 1, 20.0),
        ];
        let b = vec![
            spec(SensorKind::Barometer, 1, 20.0),
            spec(SensorKind::Gps, 0, 10.0),
        ];
        assert_eq!(prefix_cache_key(&a), prefix_cache_key(&b));
        assert_eq!(prefix_cache_key(&[]), "");
        let c = vec![spec(SensorKind::Gps, 0, 10.0001)];
        let d = vec![spec(SensorKind::Gps, 0, 10.0004)];
        // Sub-millisecond times collide in key space by design…
        assert_eq!(prefix_cache_key(&c), prefix_cache_key(&d));
        // …and differ at millisecond granularity.
        let e = vec![spec(SensorKind::Gps, 0, 10.001)];
        assert_ne!(prefix_cache_key(&c), prefix_cache_key(&e));
    }

    #[test]
    fn checkpoint_config_defaults_and_disabled() {
        let cfg = CheckpointConfig::default();
        assert!(cfg.enabled);
        assert!(cfg.interval > 0.0);
        assert!(cfg.max_bytes > 0);
        assert!(!CheckpointConfig::disabled().enabled);
        assert_eq!(CheckpointConfig::with_max_bytes(123).max_bytes, 123);
    }
}
