//! The checkpoint store: copy-on-write snapshots of mid-run state, held
//! in a per-runner LRU tree plus an optional cross-worker shared tier, so
//! a scenario can fork from the deepest cached state whose *injection
//! prefix* matches instead of replaying the shared prefix from `t = 0`.
//!
//! # Why this is sound
//!
//! A test run is a pure function of its [`FaultPlan`]: the simulator, the
//! firmware, the injector and the workload are all deterministic given
//! the experiment seed, and the *only* way the plan influences the run is
//! through `should_fail(instance, time)` queries, whose answers depend
//! solely on the failures scheduled at or before the query time. Two
//! plans whose failures scheduled before time `T` are identical therefore
//! drive bit-identical executions up to `T` — everything before the first
//! divergent injection is shared work.
//!
//! The store exploits exactly that: while a run executes, the runner
//! records a [`RunSnapshot`] (simulator + firmware + injector +
//! workload + trace bookkeeping) every [`CheckpointConfig::interval`]
//! simulated seconds — and at each configured anchor time (see
//! [`CheckpointConfig::anchors`]) — keyed by the quantised injection
//! prefix at the snapshot time. A later run looks up the deepest snapshot
//! whose key matches one of its own prefixes, *verifies the un-quantised
//! prefixes match exactly* (quantisation is a hash key, never a
//! correctness argument) and resumes from there with its own plan swapped
//! in. Runs that fork mid-scenario extend the tree with deeper,
//! prefix-specific branches — hence checkpoint *tree*, not checkpoint
//! list.
//!
//! # Copy-on-write recording
//!
//! Recording is O(1) in the run length. Every growing history that a
//! snapshot captures — the trace samples (runner), the defect log
//! (firmware), the injection/transition records (injector) — is backed
//! by an [`avis_sim::CowVec`]: at snapshot time the mutable tail is
//! sealed into an immutable `Arc`-shared chunk and the snapshot clones
//! the chunk *list*, not the elements. Snapshots along one run (and forks
//! off it) share the sealed prefix structurally; the memory budget
//! charges each distinct chunk exactly once (a chunk ledger tracks
//! chunk identities), so dense checkpoint intervals no longer multiply
//! the sample history.
//!
//! # Delta-encoded chains
//!
//! Copy-on-write removes the *history* cost of dense checkpointing, but
//! every snapshot still cloned the full fixed-size substrate state
//! (vehicle + sensors + firmware control stack). The per-runner cache
//! therefore stores each chain as **one full keyframe plus per-cut
//! deltas**: every [`CheckpointConfig::keyframe_stride`]-th cut of a run
//! is held whole, and the cuts between are held as the per-layer dynamic
//! slice ([`SimSnapshot::diff`], [`avis_firmware::FirmwareSnapshot::diff`],
//! [`avis_hinj::InjectorSnapshot::diff`]) against the previous cut —
//! static structure (configuration, parameters, environment, seed-time
//! biases, unchanged mission/failsafe/defect state) lives once per
//! keyframe. Restoring a delta cut walks the chain from its keyframe and
//! applies each delta in order (bounded by the stride); eviction is
//! chain-aware (evicting an entry also evicts the deltas diffed against
//! it) and the ledger charges delta bytes exactly like full-snapshot
//! bytes. Encoding never changes a result: re-materialisation is
//! bit-exact, so a fork from a delta cut is bit-identical to a fork from
//! a full snapshot — and memory budgets admit several times more
//! resident cuts per MiB.
//!
//! # The shared tier
//!
//! Checkpoint caches are per runner (lock-free by construction), so
//! without sharing each parallel worker re-records the same fault-free
//! chain. The [`SharedSnapshotTier`] is a read-mostly second tier: an
//! `Arc`-swapped immutable snapshot map that the engine republishes
//! between speculative wavefronts. Workers push newly recorded snapshots
//! into a pending buffer (a brief mutex on the rare record path); lookups
//! clone the current `Arc` and probe the immutable map without taking
//! any lock that a writer can hold — one worker's cold run warms every
//! worker's cache. A [`crate::matrix::ScenarioMatrix`] keys tiers by
//! (firmware, workload), so cells differing only by strategy share one
//! checkpoint tree across campaigns instead of rebuilding it per
//! campaign. Sharing never changes a result: a forked run is
//! bit-identical to a cold one, whichever tier the snapshot came from.
//!
//! Snapshots are recorded only for injection runs (`seed_offset == 0`):
//! profiling runs each use a distinct sensor-noise seed and execute once,
//! so caching them would only consume budget.

use crate::protocol::ProtocolTracker;
use crate::trace::StateSample;
use avis_firmware::{FirmwareDelta, FirmwareSnapshot};
use avis_hinj::{
    FaultPlan, FaultSpec, InjectorDelta, InjectorSnapshot, LinkDelta, LinkFaultSpec, LinkSnapshot,
};
use avis_sim::codec::{ByteReader, ByteWriter, CodecResult};
use avis_sim::cow::{ChunkSink, ChunkSource};
use avis_sim::simulator::StepOutput;
use avis_sim::{CowDelta, CowVec, PackedStepOutput, SensorReading, SimDelta, SimSnapshot};
use avis_workload::{ScriptedWorkload, WorkloadStatus};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the runner's checkpoint store.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Whether the runner records and reuses snapshots at all. Disabled,
    /// every run cold-starts from `t = 0` (the pre-checkpoint behaviour).
    pub enabled: bool,
    /// Simulated seconds between snapshots along a run. Smaller intervals
    /// give forks a deeper resume point but cost more recording time and
    /// memory.
    pub interval: f64,
    /// Memory budget for the per-runner cache (approximate bytes). When
    /// an insert pushes the total past this, the least-recently-used
    /// snapshots are evicted until it fits again. `Arc`-shared history
    /// chunks are charged once per distinct chunk, not once per snapshot.
    ///
    /// The budget is **per runner**: every engine worker owns its own
    /// lock-free cache, so a campaign at parallelism `N` may hold up to
    /// `N × max_bytes` of snapshots in total (plus one shared tier of the
    /// same budget). Size the budget against the worker count on
    /// memory-constrained hosts.
    pub max_bytes: usize,
    /// Extra cut times (simulated seconds), sorted ascending: the runner
    /// snapshots at the *last loop-top at or before* each anchor, in
    /// addition to the fixed interval. Campaigns populate this with the
    /// golden run's mode-transition times (where SABRE actually anchors
    /// injections, see [`CheckpointConfig::anchor_placement`]), which
    /// raises fork depth at equal memory budget: a fork resumes right at
    /// the injection instead of up to one interval before it.
    pub anchors: Vec<f64>,
    /// Whether a campaign should auto-populate [`CheckpointConfig::anchors`]
    /// from the golden trace's mode transitions after profiling (only
    /// when `anchors` was left empty). Placement is purely a speed/memory
    /// trade-off — results are bit-identical either way.
    pub anchor_placement: bool,
    /// Delta-chain keyframe stride: along one recording run, every
    /// `keyframe_stride`-th cut stores a *full* snapshot (a keyframe) and
    /// the cuts between them store per-layer deltas against the previous
    /// cut (see [`RunSnapshot::diff`]). Restoring a delta cut walks the
    /// chain from its keyframe, so larger strides trade a little restore
    /// work for far more resident cuts per MiB of budget. `1` stores only
    /// full snapshots (the pre-delta behaviour). Encoding never changes a
    /// result — a run forked from a re-materialised delta cut is
    /// bit-identical to one forked from a full snapshot.
    pub keyframe_stride: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            enabled: true,
            interval: 5.0,
            max_bytes: 64 * 1024 * 1024,
            anchors: Vec::new(),
            anchor_placement: true,
            keyframe_stride: 8,
        }
    }
}

impl CheckpointConfig {
    /// A configuration that disables checkpointing entirely.
    pub fn disabled() -> Self {
        CheckpointConfig {
            enabled: false,
            ..CheckpointConfig::default()
        }
    }

    /// A configuration with the given memory budget (bytes).
    pub fn with_max_bytes(max_bytes: usize) -> Self {
        CheckpointConfig {
            max_bytes,
            ..CheckpointConfig::default()
        }
    }

    /// A configuration with explicit anchor cut times (disables the
    /// campaign's automatic golden-transition placement).
    pub fn with_anchors(anchors: Vec<f64>) -> Self {
        let mut config = CheckpointConfig {
            anchors,
            anchor_placement: false,
            ..CheckpointConfig::default()
        };
        config.normalize_anchors();
        config
    }

    /// Sorts and de-duplicates the anchor list — the single
    /// normalization chokepoint every anchor-accepting entry point
    /// funnels through, so runners and engine workers always key
    /// snapshots off the identical cut list.
    pub fn normalize_anchors(&mut self) {
        self.anchors.sort_by(f64::total_cmp);
        self.anchors.dedup();
    }

    /// A configuration recording only at anchors (no interval cadence):
    /// the interval is pushed past any realistic run duration, isolating
    /// anchor placement for comparisons at equal memory budget.
    pub fn anchors_only(anchors: Vec<f64>, max_bytes: usize) -> Self {
        CheckpointConfig {
            interval: 1e9,
            max_bytes,
            ..CheckpointConfig::with_anchors(anchors)
        }
    }

    /// A configuration with the given delta-chain keyframe stride
    /// (`1` = full snapshots only, the pre-delta behaviour).
    pub fn with_keyframe_stride(keyframe_stride: usize) -> Self {
        CheckpointConfig {
            keyframe_stride,
            ..CheckpointConfig::default()
        }
    }
}

/// The failures of a plan scheduled strictly before a cut time, across
/// *both* injection surfaces: sensor failures and protocol-level link
/// faults. Two plans with equal prefixes at `t` drive bit-identical
/// executions on `[0, t)` — the link fault shim, like the sensor
/// injector, only consults faults scheduled before the current step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InjectionPrefix {
    pub(crate) sensor: Vec<FaultSpec>,
    pub(crate) link: Vec<LinkFaultSpec>,
}

impl InjectionPrefix {
    /// Whether no failure of either surface precedes the cut.
    pub fn is_empty(&self) -> bool {
        self.sensor.is_empty() && self.link.is_empty()
    }

    /// Total number of failures in the prefix (both surfaces).
    pub fn len(&self) -> usize {
        self.sensor.len() + self.link.len()
    }

    /// Serialise the prefix for the persistent store.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.seq(&self.sensor, |w, s| s.encode(w));
        w.seq(&self.link, |w, s| s.encode(w));
    }

    /// Decode a prefix previously written by [`InjectionPrefix::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<InjectionPrefix> {
        Ok(InjectionPrefix {
            sensor: r.seq(FaultSpec::decode)?,
            link: r.seq(LinkFaultSpec::decode)?,
        })
    }
}

/// The failures of `plan` scheduled strictly before `t` — the *injection
/// prefix* that fully determines the run's behaviour on `[0, t)`.
/// (A failure scheduled exactly at `t` first fires at the firmware step
/// at `t`, which happens after a snapshot taken at loop-top time `t`.)
pub(crate) fn injection_prefix(plan: &FaultPlan, t: f64) -> InjectionPrefix {
    InjectionPrefix {
        sensor: plan.specs().filter(|s| s.time < t).collect(),
        link: plan
            .link_plan()
            .specs()
            .iter()
            .filter(|s| s.time < t)
            .copied()
            .collect(),
    }
}

/// The millisecond-quantised cache key of an injection prefix. Purely a
/// lookup key: before a snapshot is reused, the exact (`f64`) prefixes
/// are compared, so two plans that collide in quantised space can never
/// contaminate each other's results. Link faults contribute their
/// canonical parts, so a link-fault plan's snapshots can never collide
/// with a sensor-only sibling's.
pub(crate) fn prefix_cache_key(prefix: &InjectionPrefix) -> String {
    let mut parts: Vec<String> = prefix
        .sensor
        .iter()
        .map(|s| {
            format!(
                "{}:{}:{}",
                s.instance.kind.name(),
                s.instance.index,
                (s.time * 1000.0).round() as i64
            )
        })
        .collect();
    parts.extend(prefix.link.iter().map(|s| s.canonical_part()));
    parts.sort();
    parts.join("|")
}

/// Everything the runner needs to resume a run mid-flight: the three
/// substrate snapshots plus the runner's own loop bookkeeping at the cut
/// point (the top of the lock-step loop, before ground-station traffic
/// for that step is exchanged).
///
/// Cloning a `RunSnapshot` is O(1) in the run length: every growing
/// history inside it is an `Arc`-chunked [`CowVec`] (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct RunSnapshot {
    /// Simulator state (vehicle, environment, sensor RNG stream, time).
    pub(crate) sim: SimSnapshot,
    /// Firmware state (estimator, navigator, failsafes, mission, modes).
    pub(crate) firmware: FirmwareSnapshot,
    /// Injector state (records + read counters; plan swapped at restore).
    pub(crate) injector: InjectorSnapshot,
    /// Link fault-shim state (queues, seq counters, RNG stream, storm
    /// dedup; link plan swapped at restore exactly like the injector's).
    pub(crate) link: LinkSnapshot,
    /// GCS-side protocol-invariant tracker state.
    pub(crate) tracker: ProtocolTracker,
    /// Workload runtime state (script progress, seen telemetry).
    pub(crate) workload: ScriptedWorkload,
    /// Trace samples recorded so far (chunk-shared with the recording
    /// run and with every other snapshot along the same chain).
    pub(crate) samples: CowVec<StateSample>,
    /// The step/telemetry output buffer as of the last simulator step.
    pub(crate) output: StepOutput,
    /// Fence-violation count so far.
    pub(crate) fence_violations: usize,
    /// Next trace-sample time.
    pub(crate) next_sample_time: f64,
    /// Workload status at the cut point.
    pub(crate) workload_status: WorkloadStatus,
    /// When the workload reached a terminal state, if it has.
    pub(crate) terminal_since: Option<f64>,
    /// Simulation time of the cut (s); equals the captured simulator's
    /// clock.
    pub(crate) time: f64,
    /// The exact injection prefix of the recording run at `time`.
    pub(crate) prefix: InjectionPrefix,
}

impl RunSnapshot {
    /// Simulation time of the cut (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The exact injection prefix the snapshot was recorded under.
    pub fn prefix(&self) -> &InjectionPrefix {
        &self.prefix
    }

    /// Approximate heap bytes *exclusively owned* by this snapshot (the
    /// fixed-size substrate state and unsealed tails). `Arc`-shared
    /// history chunks are visited through [`RunSnapshot::for_each_chunk`]
    /// and charged once per distinct chunk by the stores.
    pub fn approx_bytes(&self) -> usize {
        self.sim.approx_bytes()
            + self.firmware.approx_bytes()
            + self.injector.approx_bytes()
            + self.link.approx_bytes()
            + self.tracker.approx_bytes()
            + self.samples.exclusive_bytes()
            + self.output.readings.len() * std::mem::size_of::<SensorReading>()
            + self.prefix.sensor.len() * std::mem::size_of::<FaultSpec>()
            + self.prefix.link.len() * std::mem::size_of::<LinkFaultSpec>()
            // Workload runtime state plus per-snapshot bookkeeping. The
            // script itself (steps, environment) is Arc-shared, not copied.
            + 1024
    }

    /// Visits every `Arc`-shared block the snapshot references —
    /// sample-history chunks, firmware defect-log chunks, injector
    /// record chunks and the environment — as `(identity, bytes)` pairs.
    pub fn for_each_chunk(&self, f: &mut dyn FnMut(usize, usize)) {
        self.samples.for_each_chunk(f);
        self.firmware.for_each_chunk(f);
        self.injector.for_each_chunk(f);
        self.sim.for_each_chunk(f);
    }

    /// The delta from `prev` (an earlier cut of the same run, or the cut
    /// this run forked from) to this snapshot: each substrate layer
    /// contributes its own delta (see [`SimSnapshot::diff`],
    /// [`FirmwareSnapshot::diff`], [`InjectorSnapshot::diff`]) and the
    /// runner-level bookkeeping rides along — the sample history as an
    /// `Arc`-chunk-shared list, everything else by value. A delta is a
    /// fraction of a full snapshot's exclusive bytes, which is what lets
    /// dense chains stay resident under a fixed memory budget.
    pub fn diff(&self, prev: &RunSnapshot) -> RunDelta {
        RunDelta {
            sim: self.sim.diff(&prev.sim),
            firmware: self.firmware.diff(&prev.firmware),
            injector: self.injector.diff(&prev.injector),
            link: self.link.diff(&prev.link),
            tracker: self.tracker.clone(),
            workload: self.workload.clone(),
            samples: self.samples.delta_from(&prev.samples),
            output: PackedStepOutput::pack(&self.output),
            fence_violations: self.fence_violations,
            next_sample_time: self.next_sample_time,
            workload_status: self.workload_status.clone(),
            terminal_since: self.terminal_since,
            time: self.time,
            prefix: self.prefix.clone(),
        }
    }

    /// Re-materialises the snapshot `delta` was diffed *to*, using `self`
    /// as the base it was diffed *from* — the restore step of a delta
    /// chain walk. Bit-exact: `base.apply(&cut.diff(&base)) == cut` for
    /// every pair of cuts along one run.
    pub fn apply(&self, delta: &RunDelta) -> RunSnapshot {
        RunSnapshot {
            sim: self.sim.apply(&delta.sim),
            firmware: self.firmware.apply(&delta.firmware),
            injector: self.injector.apply(&delta.injector),
            link: self.link.apply(&delta.link),
            tracker: delta.tracker.clone(),
            workload: delta.workload.clone(),
            samples: CowVec::apply_delta(&self.samples, &delta.samples),
            output: delta.output.unpack(),
            fence_violations: delta.fence_violations,
            next_sample_time: delta.next_sample_time,
            workload_status: delta.workload_status.clone(),
            terminal_since: delta.terminal_since,
            time: delta.time,
            prefix: delta.prefix.clone(),
        }
    }
}

/// The delta-encoded form of a [`RunSnapshot`]: the dynamic slice of
/// every substrate layer relative to the previous cut of the same chain
/// (see [`RunSnapshot::diff`]). The static structure — configuration,
/// parameters, environment, seed-time biases — lives once in the chain's
/// base keyframe.
#[derive(Debug, Clone)]
pub struct RunDelta {
    sim: SimDelta,
    firmware: FirmwareDelta,
    injector: InjectorDelta,
    link: LinkDelta,
    tracker: ProtocolTracker,
    workload: ScriptedWorkload,
    samples: CowDelta<StateSample>,
    output: PackedStepOutput,
    fence_violations: usize,
    next_sample_time: f64,
    workload_status: WorkloadStatus,
    terminal_since: Option<f64>,
    time: f64,
    prefix: InjectionPrefix,
}

impl RunDelta {
    /// Simulation time of the encoded cut (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Approximate heap + inline bytes *exclusively owned* by the delta.
    /// `Arc`-shared history chunks are visited through
    /// [`RunDelta::for_each_chunk`] and charged once per distinct chunk
    /// by the stores.
    pub fn approx_bytes(&self) -> usize {
        self.sim.approx_bytes()
            + self.firmware.approx_bytes()
            + self.injector.approx_bytes()
            + self.link.approx_bytes()
            + self.tracker.approx_bytes()
            + self.samples.exclusive_bytes()
            + self.output.approx_bytes()
            + self.prefix.sensor.len() * std::mem::size_of::<FaultSpec>()
            + self.prefix.link.len() * std::mem::size_of::<LinkFaultSpec>()
            // Workload runtime state plus per-delta bookkeeping (the
            // script itself is Arc-shared, not copied).
            + 256
    }

    /// Visits every `Arc`-shared block the delta references as
    /// `(identity, bytes)` pairs (see [`RunSnapshot::for_each_chunk`]).
    pub fn for_each_chunk(&self, f: &mut dyn FnMut(usize, usize)) {
        self.samples.for_each_chunk(f);
        self.firmware.for_each_chunk(f);
        self.injector.for_each_chunk(f);
    }

    /// Serialises the delta for the persistent store. History chunks
    /// (trace samples, firmware defect log, injector records) go to
    /// `sink` content-addressed; everything else is written inline.
    pub fn encode(&self, w: &mut ByteWriter, sink: &mut dyn ChunkSink) {
        self.sim.encode(w);
        self.firmware.encode(w, sink);
        self.injector.encode(w, sink);
        self.link.encode(w);
        self.tracker.encode(w);
        self.workload.encode_runtime(w);
        self.samples
            .encode_chunked(w, sink, &mut |w, s: &StateSample| s.encode(w));
        self.output.encode(w);
        w.usize(self.fence_violations);
        w.f64(self.next_sample_time);
        self.workload_status.encode(w);
        w.option(self.terminal_since.as_ref(), |w, t| w.f64(*t));
        w.f64(self.time);
        self.prefix.encode(w);
    }

    /// Restores a delta serialised by [`RunDelta::encode`].
    ///
    /// `workload_template` supplies the static script structure (steps,
    /// name, environment, timeout), which is derived from the experiment
    /// configuration and never persisted — only the runtime progress is
    /// read from the byte stream (see
    /// [`ScriptedWorkload::decode_runtime`]).
    pub fn decode(
        r: &mut ByteReader<'_>,
        source: &mut dyn ChunkSource,
        workload_template: &ScriptedWorkload,
    ) -> CodecResult<RunDelta> {
        Ok(RunDelta {
            sim: SimDelta::decode(r)?,
            firmware: FirmwareDelta::decode(r, source)?,
            injector: InjectorDelta::decode(r, source)?,
            link: LinkDelta::decode(r)?,
            tracker: ProtocolTracker::decode(r)?,
            workload: workload_template.decode_runtime(r)?,
            samples: CowDelta::decode_chunked(r, source, &mut StateSample::decode)?,
            output: PackedStepOutput::decode(r)?,
            fence_violations: r.usize()?,
            next_sample_time: r.f64()?,
            workload_status: WorkloadStatus::decode(r)?,
            terminal_since: r.option(|r| r.f64())?,
            time: r.f64()?,
            prefix: InjectionPrefix::decode(r)?,
        })
    }
}

/// Composite cache key: experiment seed offset, quantised injection
/// prefix, quantised snapshot time. Ordered so one prefix's snapshots
/// ("a chain of the checkpoint tree") are contiguous and time-sorted,
/// which makes deepest-first scans a reverse range iteration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct SnapshotKey {
    seed_offset: u64,
    prefix: String,
    time_ms: i64,
}

impl SnapshotKey {
    pub(crate) fn for_snapshot(seed_offset: u64, snapshot: &RunSnapshot) -> Self {
        SnapshotKey {
            seed_offset,
            prefix: prefix_cache_key(&snapshot.prefix),
            time_ms: (snapshot.time * 1000.0).round() as i64,
        }
    }
}

/// Reference-counted accounting of the distinct `Arc`-shared chunks a
/// store's snapshots reference, so the memory budget charges each chunk's
/// bytes exactly once however many snapshots share it — the accounting
/// side of copy-on-write.
#[derive(Debug, Clone, Default)]
struct ChunkLedger {
    chunks: BTreeMap<usize, (usize, usize)>, // identity -> (bytes, refs)
    bytes: usize,
}

impl ChunkLedger {
    /// References one chunk, charging its bytes on the first reference.
    fn add_chunk(&mut self, id: usize, bytes: usize) {
        let entry = self.chunks.entry(id).or_insert((bytes, 0));
        if entry.1 == 0 {
            self.bytes += bytes;
        }
        entry.1 += 1;
    }

    /// Releases one reference to a chunk, refunding its bytes when the
    /// last referent goes away.
    fn remove_chunk(&mut self, id: usize) {
        if let Some(entry) = self.chunks.get_mut(&id) {
            entry.1 -= 1;
            if entry.1 == 0 {
                self.bytes -= entry.0;
                self.chunks.remove(&id);
            }
        }
    }

    fn add(&mut self, snapshot: &RunSnapshot) {
        snapshot.for_each_chunk(&mut |id, bytes| self.add_chunk(id, bytes));
    }

    fn remove(&mut self, snapshot: &RunSnapshot) {
        snapshot.for_each_chunk(&mut |id, _| self.remove_chunk(id));
    }
}

/// Probes for the deepest snapshot in `entries` a run of `plan` may
/// resume from: among every snapshot whose quantised key matches one of
/// the plan's own injection prefixes *and* whose exact prefix equals the
/// plan's exact prefix at the snapshot time, the one with the latest cut
/// time. Shared by the per-runner cache and the shared tier; the
/// `meta_of` accessor yields `(cut time, exact prefix)` without
/// materialising delta-encoded entries.
/// `cap` bounds the cut time a caller can accept (`f64::INFINITY` for
/// unbounded): the batch leader may only resume from cuts at or before
/// its earliest lane-fork time, since forks are taken from the live
/// leader at loop-tops — a deeper cut would skip past them.
fn deepest_entry<'a, V>(
    entries: &'a BTreeMap<SnapshotKey, V>,
    meta_of: impl for<'v> Fn(&'v V) -> (f64, &'v InjectionPrefix),
    seed_offset: u64,
    plan: &FaultPlan,
    cap: f64,
) -> Option<(f64, &'a SnapshotKey)> {
    // The plan's prefix only changes at its own failure times — sensor
    // *or* link — so there are at most `plan.len() + 1` distinct prefixes
    // to probe; probe each one's chain from its deepest snapshot down.
    let mut boundaries: Vec<f64> = plan
        .specs()
        .map(|s| s.time)
        .chain(plan.link_plan().fault_times())
        .collect();
    boundaries.sort_by(f64::total_cmp);
    boundaries.dedup();
    // `injection_prefix` is strict (`time < probe`), so probing at
    // boundary `k` selects the prefix *excluding* that boundary's
    // failures — i.e. the failures before it — and f64::INFINITY probes
    // the full-plan prefix. Together the probes enumerate every distinct
    // prefix of the plan.
    let mut best: Option<(f64, &SnapshotKey)> = None;
    for k in 0..=boundaries.len() {
        let probe = if k == boundaries.len() {
            f64::INFINITY
        } else {
            boundaries[k]
        };
        let prefix = injection_prefix(plan, probe);
        let key = prefix_cache_key(&prefix);
        let lo = SnapshotKey {
            seed_offset,
            prefix: key.clone(),
            time_ms: i64::MIN,
        };
        let hi = SnapshotKey {
            seed_offset,
            prefix: key,
            time_ms: i64::MAX,
        };
        for (entry_key, entry) in entries.range(lo..=hi).rev() {
            let (time, recorded_prefix) = meta_of(entry);
            if time > cap {
                continue; // too deep for the caller; shallower cuts may fit
            }
            // Exact validity guard: the plan's exact prefix at the
            // snapshot's cut time must equal the recorded prefix. This
            // rejects both quantisation collisions and snapshots cut
            // *after* one of the plan's failures that the recording run
            // did not inject.
            if injection_prefix(plan, time) == *recorded_prefix {
                if best.is_none_or(|(t, _)| time > t) {
                    best = Some((time, entry_key));
                }
                break; // deeper entries of this chain are shallower in time
            }
        }
    }
    best
}

/// How one cut is physically held by the per-runner cache: a full
/// snapshot (a chain keyframe) or a delta against its parent cut.
#[derive(Debug, Clone)]
enum StoredRun {
    Full(Box<RunSnapshot>),
    Delta {
        /// The cut this delta was diffed against. Materialising walks
        /// parent links until it reaches a [`StoredRun::Full`] keyframe;
        /// the walk is bounded by [`CheckpointConfig::keyframe_stride`].
        parent: SnapshotKey,
        delta: Box<RunDelta>,
    },
}

impl StoredRun {
    fn approx_bytes(&self) -> usize {
        match self {
            StoredRun::Full(snapshot) => snapshot.approx_bytes(),
            StoredRun::Delta { delta, .. } => delta.approx_bytes(),
        }
    }

    fn for_each_chunk(&self, f: &mut dyn FnMut(usize, usize)) {
        match self {
            StoredRun::Full(snapshot) => snapshot.for_each_chunk(f),
            StoredRun::Delta { delta, .. } => delta.for_each_chunk(f),
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    payload: StoredRun,
    /// Cut time (s) — duplicated out of the payload so probes never
    /// materialise a delta chain.
    time: f64,
    /// Exact injection prefix at the cut — the probe's validity guard.
    prefix: InjectionPrefix,
    /// Chain depth: 0 for a keyframe, parent depth + 1 for a delta.
    depth: usize,
    bytes: usize,
    /// Record-time checksum over the entry's identity and payload shape
    /// (see [`entry_checksum`]), re-validated on every materialisation.
    /// A mismatch quarantines the whole chain instead of serving it.
    checksum: u64,
    last_used: u64,
}

/// FNV-1a over `bytes`, continuing from `hash` (seed with
/// [`FNV_OFFSET_BASIS`]).
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The record-time checksum of one cache entry: cut time, quantised
/// prefix key, payload form (keyframe vs delta, and the delta's parent
/// key) and the payload's approximate exclusive size. Computed when the
/// entry is stored and re-validated link by link when a chain is
/// materialised, so silent store corruption — a flipped byte in the
/// bookkeeping a chain walk depends on — is detected and quarantined
/// instead of resuming a wrong state.
fn entry_checksum(time: f64, prefix: &InjectionPrefix, payload: &StoredRun) -> u64 {
    let mut hash = fnv1a(FNV_OFFSET_BASIS, &time.to_bits().to_le_bytes());
    hash = fnv1a(hash, prefix_cache_key(prefix).as_bytes());
    match payload {
        StoredRun::Full(snapshot) => {
            hash = fnv1a(hash, &[1]);
            hash = fnv1a(hash, &snapshot.time.to_bits().to_le_bytes());
        }
        StoredRun::Delta { parent, delta } => {
            hash = fnv1a(hash, &[2]);
            hash = fnv1a(hash, parent.prefix.as_bytes());
            hash = fnv1a(hash, &parent.time_ms.to_le_bytes());
            hash = fnv1a(hash, &delta.time.to_bits().to_le_bytes());
        }
    }
    fnv1a(hash, &(payload.approx_bytes() as u64).to_le_bytes())
}

/// Counters describing how the checkpoint store behaved, surfaced through
/// [`crate::runner::ExperimentRunner::checkpoint_stats`] and reported by
/// the campaign-throughput bench.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CheckpointStats {
    /// Injection runs that resumed from a snapshot (either tier).
    pub forked_runs: u64,
    /// Injection runs that cold-started from `t = 0`.
    pub cold_runs: u64,
    /// Forks served by the cross-worker [`SharedSnapshotTier`] (a subset
    /// of [`CheckpointStats::forked_runs`]).
    pub shared_hits: u64,
    /// Snapshots currently held in the per-runner cache.
    pub snapshots_cached: usize,
    /// Approximate bytes currently held (exclusive state plus each
    /// distinct shared chunk counted once).
    pub cached_bytes: usize,
    /// Of [`CheckpointStats::cached_bytes`], the bytes in `Arc`-shared
    /// history chunks — the part copy-on-write de-duplicates across the
    /// snapshots of a chain.
    pub chunk_bytes: usize,
    /// Of [`CheckpointStats::snapshots_cached`], the cuts held as
    /// per-layer deltas against their chain parent rather than as full
    /// keyframes (see [`CheckpointConfig::keyframe_stride`]).
    pub delta_snapshots: usize,
    /// Exclusive bytes held by the delta-encoded cuts alone — the part of
    /// [`CheckpointStats::cached_bytes`] that delta encoding shrinks.
    pub delta_bytes: usize,
    /// Snapshots recorded over the runner's lifetime.
    pub snapshots_recorded: u64,
    /// Snapshots evicted by the memory budget.
    pub snapshots_evicted: u64,
    /// Snapshots removed by quarantine: chain links whose record-time
    /// checksum no longer matched at materialisation, plus entries
    /// recorded by a run that later panicked (the panic-tainted chain).
    /// Quarantined entries are never served again; the affected runs
    /// transparently cold-start instead.
    pub quarantined: u64,
    /// Checksum-validation failures observed while materialising chains
    /// (one per failed fork attempt, however many links the quarantine
    /// then removed). Reaching the breaker threshold disables
    /// checkpointing for the rest of the runner's life — the campaign is
    /// notified through `CampaignEvent::DegradedMode`. Panic-taint
    /// quarantines do *not* count here: a seeded crash is deterministic
    /// and expected, not evidence of store corruption.
    pub checksum_failures: u64,
    /// Total simulated seconds *not* re-executed thanks to forking (the
    /// sum of fork-point times).
    pub simulated_seconds_skipped: f64,
    /// Chains hydrated from the persistent snapshot store at campaign
    /// start (see [`crate::store`]); `0` when no store was attached.
    pub loaded_chains: u64,
    /// Chains the campaign flushed to the persistent store.
    pub persisted_chains: u64,
    /// Bytes held by the persistent store (blobs plus manifest) after
    /// the campaign's final flush and GC pass.
    pub store_bytes: u64,
    /// Blob writes the persistent store skipped because an identical
    /// content-addressed blob was already on disk — cross-cut and
    /// cross-campaign dedup hits.
    pub dedup_hits: u64,
}

/// The chain context a runner carries between cuts: the key of the last
/// cut it stored (or forked from) plus that cut's exact snapshot, which
/// the next cut's delta is diffed against.
#[derive(Debug, Clone)]
pub(crate) struct ChainParent {
    pub(crate) key: SnapshotKey,
    pub(crate) snapshot: RunSnapshot,
}

/// The per-runner, memory-budgeted, LRU-evicted snapshot store. Cuts
/// along one run are held as delta chains — one full keyframe every
/// [`CheckpointConfig::keyframe_stride`] cuts, per-layer deltas in
/// between — so a fixed budget keeps several times more cuts resident
/// (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct SnapshotCache {
    entries: BTreeMap<SnapshotKey, CacheEntry>,
    /// Reverse dependency index: keyframe/delta key -> the delta entries
    /// diffed directly against it. Evicting an entry must also evict its
    /// transitive dependents (their chains can no longer materialise).
    dependents: BTreeMap<SnapshotKey, Vec<SnapshotKey>>,
    exclusive_bytes: usize,
    ledger: ChunkLedger,
    max_bytes: usize,
    keyframe_stride: usize,
    clock: u64,
    stats: CheckpointStats,
    /// The checksum breaker: set once
    /// [`CheckpointStats::checksum_failures`] reaches
    /// [`CHECKSUM_BREAKER_THRESHOLD`]. A tripped breaker disables
    /// checkpointing for the rest of the runner's life (every run
    /// cold-starts) — repeated validation failures mean the store cannot
    /// be trusted, and correctness must not depend on it.
    disabled: bool,
}

/// Checksum failures tolerated before the breaker disables checkpointing
/// (see [`SnapshotCache::degraded`]).
const CHECKSUM_BREAKER_THRESHOLD: u64 = 3;

impl SnapshotCache {
    /// An empty cache with the given memory budget (bytes) holding only
    /// full snapshots (keyframe stride 1).
    pub fn new(max_bytes: usize) -> Self {
        SnapshotCache {
            max_bytes,
            keyframe_stride: 1,
            ..SnapshotCache::default()
        }
    }

    /// Sets the delta-chain keyframe stride (clamped to at least 1).
    pub(crate) fn set_keyframe_stride(&mut self, keyframe_stride: usize) {
        self.keyframe_stride = keyframe_stride.max(1);
    }

    fn total_bytes(&self) -> usize {
        self.exclusive_bytes + self.ledger.bytes
    }

    /// Current statistics.
    pub fn stats(&self) -> CheckpointStats {
        let (delta_snapshots, delta_bytes) = self
            .entries
            .values()
            .filter(|e| matches!(e.payload, StoredRun::Delta { .. }))
            .fold((0usize, 0usize), |(n, b), e| (n + 1, b + e.bytes));
        CheckpointStats {
            snapshots_cached: self.entries.len(),
            cached_bytes: self.total_bytes(),
            chunk_bytes: self.ledger.bytes,
            delta_snapshots,
            delta_bytes,
            ..self.stats
        }
    }

    /// Notes that a run executed without forking.
    pub(crate) fn note_cold_run(&mut self) {
        self.stats.cold_runs += 1;
    }

    /// Notes a fork served by the shared tier at depth `time`.
    pub(crate) fn note_shared_fork(&mut self, time: f64) {
        self.stats.forked_runs += 1;
        self.stats.shared_hits += 1;
        self.stats.simulated_seconds_skipped += time;
    }

    /// The deepest local snapshot a run of `plan` may resume from, as
    /// `(cut time, key)` — a probe only, touching neither LRU state nor
    /// statistics, so the runner can compare depths across tiers before
    /// committing to (and materialising) either.
    pub(crate) fn peek_deepest(
        &self,
        seed_offset: u64,
        plan: &FaultPlan,
        cap: f64,
    ) -> Option<(f64, SnapshotKey)> {
        deepest_entry(
            &self.entries,
            |e| (e.time, &e.prefix),
            seed_offset,
            plan,
            cap,
        )
        .map(|(t, k)| (t, k.clone()))
    }

    /// The chain of keys from `key` down to (and including) its keyframe.
    fn chain_of(&self, key: &SnapshotKey) -> Vec<SnapshotKey> {
        let mut chain = vec![key.clone()];
        loop {
            let entry = self
                .entries
                // avis-lint: allow(p1, reason = "chain starts as vec![key], never empty")
                .get(chain.last().expect("chain is non-empty"))
                // avis-lint: allow(p1, reason = "cascade eviction (evict_with_dependents) keeps every chain link resident; a miss is cache corruption, not a recoverable state")
                .expect("chain links are kept resident by cascade eviction");
            match &entry.payload {
                StoredRun::Full(_) => break,
                StoredRun::Delta { parent, .. } => chain.push(parent.clone()),
            }
        }
        chain
    }

    /// Whether the checksum breaker has tripped (see
    /// [`CheckpointStats::checksum_failures`]).
    pub(crate) fn degraded(&self) -> bool {
        self.disabled
    }

    /// Quarantines the entries at `keys` (plus their dependent delta
    /// cuts): the panic-taint path, called by the runner after a
    /// contained crash for every snapshot the panicked run recorded.
    /// Counts [`CheckpointStats::quarantined`] but *not*
    /// [`CheckpointStats::checksum_failures`] — a deterministic seeded
    /// crash is an expected outcome, not store corruption, so it must
    /// never trip the breaker.
    pub(crate) fn quarantine(&mut self, keys: &[SnapshotKey]) {
        for key in keys {
            let removed = self.remove_with_dependents(key);
            self.stats.quarantined += removed as u64;
        }
    }

    /// Validates every link of `key`'s chain against its record-time
    /// checksum. On the first mismatch the whole chain is quarantined
    /// (counted in [`CheckpointStats::quarantined`]), one
    /// [`CheckpointStats::checksum_failures`] is charged, the breaker is
    /// advanced, and `false` comes back — the caller falls back to cold
    /// execution.
    fn validate_chain(&mut self, key: &SnapshotKey) -> bool {
        let chain = self.chain_of(key);
        let corrupt = chain.iter().any(|link| {
            let entry = &self.entries[link];
            entry_checksum(entry.time, &entry.prefix, &entry.payload) != entry.checksum
        });
        if corrupt {
            // Quarantine from the chain's root (the keyframe) so every
            // dependent delta — including `key` itself — goes with it.
            // avis-lint: allow(p1, reason = "chain_of starts from `key`, never empty")
            let root = chain.last().expect("chain is non-empty").clone();
            let removed = self.remove_with_dependents(&root);
            self.stats.quarantined += removed as u64;
            self.stats.checksum_failures += 1;
            if self.stats.checksum_failures >= CHECKSUM_BREAKER_THRESHOLD {
                self.disabled = true;
            }
        }
        !corrupt
    }

    /// Takes (a re-materialised copy of) the snapshot a
    /// [`SnapshotCache::peek_deepest`] probe selected, updating LRU state
    /// and fork statistics. A keyframe is a plain clone; a delta cut is
    /// rebuilt by walking its chain from the keyframe and applying each
    /// delta in order. The whole chain's LRU stamps are refreshed —
    /// materialisation *uses* every link, so a hot cut keeps its keyframe
    /// alive. Every link is checksum-validated first: a corrupt chain is
    /// quarantined and `None` comes back, and the caller cold-starts.
    pub(crate) fn take(&mut self, key: &SnapshotKey, time: f64) -> Option<RunSnapshot> {
        if !self.validate_chain(key) {
            return None;
        }
        self.clock += 1;
        let chain = self.chain_of(key);
        for link in &chain {
            self.entries
                .get_mut(link)
                // avis-lint: allow(p1, reason = "chain_of only returns resident keys; a miss is cache corruption")
                .expect("chain link present")
                .last_used = self.clock;
        }
        let mut snapshot = match &self
            .entries
            // avis-lint: allow(p1, reason = "chain starts as vec![key], never empty")
            .get(chain.last().expect("chain is non-empty"))
            // avis-lint: allow(p1, reason = "chain_of only returns resident keys; a miss is cache corruption")
            .expect("chain link present")
            .payload
        {
            StoredRun::Full(keyframe) => (**keyframe).clone(),
            StoredRun::Delta { .. } => unreachable!("chain_of terminates at a keyframe"),
        };
        for link in chain.iter().rev().skip(1) {
            let StoredRun::Delta { delta, .. } =
                // avis-lint: allow(p1, reason = "chain_of only returns resident keys; a miss is cache corruption")
                &self.entries.get(link).expect("chain link present").payload
            else {
                unreachable!("inner chain links are deltas")
            };
            snapshot = snapshot.apply(delta);
        }
        self.stats.forked_runs += 1;
        self.stats.simulated_seconds_skipped += time;
        Some(snapshot)
    }

    /// Records a snapshot, keeping the earliest recording when the same
    /// `(seed offset, prefix, time)` cell is already occupied, then
    /// evicts least-recently-used chains until the memory budget is
    /// respected again.
    ///
    /// When `chain_parent` names a still-resident entry whose chain depth
    /// leaves room under the keyframe stride, the cut is stored as a
    /// delta against it; otherwise it is stored as a full keyframe.
    /// Returns the stored key, or `None` when the cell was already
    /// occupied (the runner then keeps its previous chain context).
    pub(crate) fn record(
        &mut self,
        seed_offset: u64,
        snapshot: RunSnapshot,
        chain_parent: Option<&ChainParent>,
    ) -> Option<SnapshotKey> {
        let key = SnapshotKey::for_snapshot(seed_offset, &snapshot);
        if self.entries.contains_key(&key) {
            return None;
        }
        let time = snapshot.time;
        let prefix = snapshot.prefix.clone();
        let delta_parent = chain_parent.and_then(|parent| {
            let entry = self.entries.get(&parent.key)?;
            (entry.depth + 1 < self.keyframe_stride).then_some((parent, entry.depth + 1))
        });
        let (payload, depth) = match delta_parent {
            Some((parent, depth)) => (
                StoredRun::Delta {
                    parent: parent.key.clone(),
                    delta: Box::new(snapshot.diff(&parent.snapshot)),
                },
                depth,
            ),
            None => (StoredRun::Full(Box::new(snapshot)), 0),
        };
        if let StoredRun::Delta { parent, .. } = &payload {
            self.dependents
                .entry(parent.clone())
                .or_default()
                .push(key.clone());
        }
        let bytes = payload.approx_bytes();
        self.clock += 1;
        let ledger = &mut self.ledger;
        payload.for_each_chunk(&mut |id, chunk_bytes| ledger.add_chunk(id, chunk_bytes));
        let checksum = entry_checksum(time, &prefix, &payload);
        self.entries.insert(
            key.clone(),
            CacheEntry {
                payload,
                time,
                prefix,
                depth,
                bytes,
                checksum,
                last_used: self.clock,
            },
        );
        self.exclusive_bytes += bytes;
        self.stats.snapshots_recorded += 1;
        while self.total_bytes() > self.max_bytes {
            let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break; // empty cache: only the fixed overhead remains
            };
            self.evict_with_dependents(&lru);
        }
        // The memory budget is enforced unconditionally: with a budget too
        // small for even one chain, the freshly inserted entry itself is
        // evicted above, so the key may already be gone again.
        self.entries.contains_key(&key).then_some(key)
    }

    /// Evicts `key` together with every transitive dependent (delta cuts
    /// diffed against it — their chains could no longer materialise).
    fn evict_with_dependents(&mut self, key: &SnapshotKey) {
        let removed = self.remove_with_dependents(key);
        self.stats.snapshots_evicted += removed as u64;
    }

    /// Removes `key` and every transitive dependent from the store,
    /// returning how many entries went. The statistics-neutral core
    /// shared by budget eviction ([`CheckpointStats::snapshots_evicted`])
    /// and quarantine ([`CheckpointStats::quarantined`]).
    fn remove_with_dependents(&mut self, key: &SnapshotKey) -> usize {
        let mut removed = 0usize;
        let mut pending = vec![key.clone()];
        while let Some(victim) = pending.pop() {
            if let Some(children) = self.dependents.remove(&victim) {
                pending.extend(children);
            }
            let Some(evicted) = self.entries.remove(&victim) else {
                continue;
            };
            self.exclusive_bytes -= evicted.bytes;
            let ledger = &mut self.ledger;
            evicted
                .payload
                .for_each_chunk(&mut |id, _| ledger.remove_chunk(id));
            // Unlink from the parent's dependent list so the reverse
            // index cannot accumulate stale keys.
            if let StoredRun::Delta { parent, .. } = &evicted.payload {
                if let Some(children) = self.dependents.get_mut(parent) {
                    children.retain(|k| k != &victim);
                    if children.is_empty() {
                        self.dependents.remove(parent);
                    }
                }
            }
            removed += 1;
        }
        removed
    }

    /// Test hook: flips the stored cut time of every entry (a silent
    /// single-byte store corruption), leaving the record-time checksums
    /// untouched — the next materialisation must detect the mismatch.
    #[doc(hidden)]
    pub(crate) fn corrupt_entries_for_test(&mut self) {
        for entry in self.entries.values_mut() {
            entry.time = f64::from_bits(entry.time.to_bits() ^ 1);
        }
    }
}

/// Aggregate statistics of a [`SharedSnapshotTier`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SharedTierStats {
    /// Snapshots currently published (visible to lock-free readers).
    pub published_snapshots: usize,
    /// Approximate bytes currently published (exclusive state plus each
    /// distinct shared chunk counted once).
    pub published_bytes: usize,
    /// Times the engine republished the map.
    pub publishes: u64,
    /// Snapshots accepted into the tier over its lifetime.
    pub recorded: u64,
    /// Snapshots evicted by the tier's memory budget.
    pub evicted: u64,
    /// Forks served to runners from this tier.
    pub hits: u64,
}

/// One published tier entry: the snapshot plus its lock-free hit counter
/// (bumped by readers on every served fork) and its insertion sequence
/// number (the eviction tie-break). The `Arc` is shared between the
/// writer-side map and every published map generation, so hits survive
/// republishing.
#[derive(Debug)]
struct TierEntry {
    snapshot: RunSnapshot,
    hits: AtomicU64,
    seq: u64,
}

/// The canonical (writer-side) state of a shared tier, behind one mutex
/// that only the rare record/republish paths touch.
#[derive(Debug, Default)]
struct TierState {
    pending: Vec<(SnapshotKey, Arc<TierEntry>)>,
    map: BTreeMap<SnapshotKey, Arc<TierEntry>>,
    exclusive: BTreeMap<SnapshotKey, usize>,
    ledger: ChunkLedger,
    exclusive_bytes: usize,
    next_seq: u64,
    publishes: u64,
    recorded: u64,
    evicted: u64,
}

/// The read-mostly cross-worker (and cross-campaign) snapshot tier: an
/// `Arc`-swapped immutable snapshot map (see the [module docs](self)).
///
/// *Reads* (`peek_deepest`) clone the published `Arc` and probe the
/// immutable map — no lock a writer can hold. *Writes* (`offer`) append
/// to a pending buffer under a brief mutex; nothing becomes visible until
/// the engine calls [`SharedSnapshotTier::republish`] between speculative
/// wavefronts, which merges the pending snapshots into a fresh map,
/// enforces the memory budget (hit-weighted eviction, chunk-aware
/// accounting) and swaps the `Arc`.
///
/// # Hit-weighted eviction
///
/// Readers bump a per-entry atomic on every fork the entry serves; when
/// the budget forces eviction at republish time, the *least-hit* entry
/// goes first (ties broken oldest-first, which degrades to FIFO while no
/// hits have accrued). Under a tight budget this keeps the hot fault-free
/// chain — the snapshots every sibling forks from — alive while one-off
/// deep branches cycle out.
#[derive(Debug)]
pub struct SharedSnapshotTier {
    max_bytes: usize,
    /// Fingerprint of the experiment whose snapshots this tier holds,
    /// claimed by the first runner that attaches. Snapshot keys encode
    /// only the injection prefix — state equivalence additionally needs
    /// the *same experiment* (firmware, bugs, workload, simulation
    /// parameters, seed) — so a runner whose experiment fingerprint
    /// differs from the claim refuses to attach.
    fingerprint: parking_lot::Mutex<Option<String>>,
    state: parking_lot::Mutex<TierState>,
    published: std::sync::RwLock<Arc<BTreeMap<SnapshotKey, Arc<TierEntry>>>>,
    hits: AtomicU64,
}

impl SharedSnapshotTier {
    /// An empty tier with the given memory budget (bytes).
    pub fn new(max_bytes: usize) -> Self {
        SharedSnapshotTier {
            max_bytes,
            fingerprint: parking_lot::Mutex::new(None),
            state: parking_lot::Mutex::new(TierState::default()),
            published: std::sync::RwLock::new(Arc::new(BTreeMap::new())),
            hits: AtomicU64::new(0),
        }
    }

    /// Claims the tier for an experiment: the first caller's fingerprint
    /// sticks, later callers get `true` only when theirs matches. A
    /// mismatch means the caller must not attach (its runs would fork
    /// from another experiment's state).
    pub(crate) fn claim(&self, fingerprint: &str) -> bool {
        let mut claimed = self.fingerprint.lock();
        match claimed.as_deref() {
            Some(existing) => existing == fingerprint,
            None => {
                *claimed = Some(fingerprint.to_string());
                true
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> SharedTierStats {
        let state = self.state.lock();
        SharedTierStats {
            published_snapshots: state.map.len(),
            published_bytes: state.exclusive_bytes + state.ledger.bytes,
            publishes: state.publishes,
            recorded: state.recorded,
            evicted: state.evicted,
            hits: self.hits.load(Ordering::Relaxed),
        }
    }

    /// The published `Arc` (cheap clone; the read path's only shared
    /// access).
    fn current(&self) -> Arc<BTreeMap<SnapshotKey, Arc<TierEntry>>> {
        Arc::clone(&self.published.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The cut time of the deepest published snapshot a run of `plan`
    /// may resume from — a probe only (no clone, no hit counted), so the
    /// runner can compare against its local cache first.
    pub(crate) fn peek_depth(&self, seed_offset: u64, plan: &FaultPlan, cap: f64) -> Option<f64> {
        let map = self.current();
        deepest_entry(
            &map,
            |e| (e.snapshot.time, &e.snapshot.prefix),
            seed_offset,
            plan,
            cap,
        )
        .map(|(t, _)| t)
    }

    /// Takes (a clone of) the deepest published snapshot for `plan`,
    /// counting a served fork — globally and on the entry itself, which
    /// is what hit-weighted eviction ranks by. Re-probes the current map
    /// — a concurrent republish between probe and take can only yield an
    /// equal or deeper snapshot, never an invalid one.
    pub(crate) fn take_deepest(
        &self,
        seed_offset: u64,
        plan: &FaultPlan,
        cap: f64,
    ) -> Option<(f64, RunSnapshot)> {
        let map = self.current();
        let (time, key) = deepest_entry(
            &map,
            |e| (e.snapshot.time, &e.snapshot.prefix),
            seed_offset,
            plan,
            cap,
        )?;
        // `deepest_entry` returned the key by reference out of `map`, so
        // the lookup cannot miss; `?` keeps the no-hit shape regardless.
        let entry = map.get(key)?;
        entry.hits.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some((time, entry.snapshot.clone()))
    }

    /// Offers a freshly recorded snapshot to the tier. Cheap: an `Arc`
    /// bump plus a short mutex on the pending buffer; duplicates of
    /// already-published or already-pending cells are dropped here.
    pub(crate) fn offer(&self, seed_offset: u64, snapshot: &RunSnapshot) {
        let key = SnapshotKey::for_snapshot(seed_offset, snapshot);
        if self.current().contains_key(&key) {
            return;
        }
        let mut state = self.state.lock();
        if state.map.contains_key(&key) || state.pending.iter().any(|(k, _)| *k == key) {
            return;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.pending.push((
            key,
            Arc::new(TierEntry {
                snapshot: snapshot.clone(),
                hits: AtomicU64::new(0),
                seq,
            }),
        ));
    }

    /// Withdraws still-pending offers whose keys are in `keys` — the
    /// panic-taint path: a contained crash retracts everything the
    /// panicked run offered before the engine's next republish could
    /// make it visible to other workers. (Offers become visible only at
    /// [`SharedSnapshotTier::republish`], which the engine calls between
    /// wavefronts — after every contained crash of the wavefront has
    /// already retracted its offers — so a tainted chain never crosses a
    /// worker boundary.)
    pub(crate) fn retract(&self, keys: &[SnapshotKey]) {
        if keys.is_empty() {
            return;
        }
        let mut state = self.state.lock();
        state.pending.retain(|(k, _)| !keys.contains(k));
    }

    /// Merges every pending snapshot into the published map, evicts
    /// lowest-hit-first (ties oldest-first) past the memory budget and
    /// swaps the `Arc` readers see. Called by the engine between
    /// speculative wavefronts and at campaign end; a no-op when nothing
    /// is pending.
    pub fn republish(&self) {
        let mut state = self.state.lock();
        if state.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut state.pending);
        for (key, entry) in pending {
            if state.map.contains_key(&key) {
                continue;
            }
            let bytes = entry.snapshot.approx_bytes();
            state.ledger.add(&entry.snapshot);
            state.exclusive_bytes += bytes;
            state.exclusive.insert(key.clone(), bytes);
            state.map.insert(key, entry);
            state.recorded += 1;
        }
        while state.exclusive_bytes + state.ledger.bytes > self.max_bytes {
            // Hit-weighted victim: the entry that served the fewest forks,
            // oldest first among equals. Fresh fault-free-chain entries
            // accumulate hits quickly, so under pressure the tier sheds
            // one-off deep branches instead of the chain everyone shares.
            let Some(victim) = state
                .map
                .iter()
                .min_by_key(|(_, e)| (e.hits.load(Ordering::Relaxed), e.seq))
                .map(|(k, _)| k.clone())
            else {
                break; // empty tier: only the shared-ledger overhead remains
            };
            if let Some(evicted) = state.map.remove(&victim) {
                let bytes = state.exclusive.remove(&victim).unwrap_or(0);
                state.exclusive_bytes -= bytes;
                state.ledger.remove(&evicted.snapshot);
                state.evicted += 1;
            }
        }
        state.publishes += 1;
        let next = Arc::new(state.map.clone());
        *self.published.write().unwrap_or_else(|e| e.into_inner()) = next;
    }

    /// Exports every *published* snapshot — key parts, snapshot clone and
    /// accrued hit count — for the persistent store's flush path. Pending
    /// (not yet republished) offers are deliberately excluded: they have
    /// not passed the engine's wavefront boundary yet, and the campaign's
    /// final [`SharedSnapshotTier::republish`] runs before the final
    /// flush.
    pub(crate) fn export_published(&self) -> Vec<TierExport> {
        self.current()
            .iter()
            .map(|(key, entry)| TierExport {
                seed_offset: key.seed_offset,
                prefix_key: key.prefix.clone(),
                time_ms: key.time_ms,
                snapshot: entry.snapshot.clone(),
                hits: entry.hits.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// One published tier entry, exported for the persistent store (see
/// [`SharedSnapshotTier::export_published`]).
#[derive(Debug, Clone)]
pub(crate) struct TierExport {
    pub(crate) seed_offset: u64,
    pub(crate) prefix_key: String,
    pub(crate) time_ms: i64,
    pub(crate) snapshot: RunSnapshot,
    pub(crate) hits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_sim::{SensorInstance, SensorKind};

    fn spec(kind: SensorKind, index: u8, time: f64) -> FaultSpec {
        FaultSpec::new(SensorInstance::new(kind, index), time)
    }

    fn sensor_prefix(sensor: Vec<FaultSpec>) -> InjectionPrefix {
        InjectionPrefix {
            sensor,
            link: Vec::new(),
        }
    }

    #[test]
    fn injection_prefix_is_strictly_before_the_cut() {
        let plan = FaultPlan::from_specs(vec![
            spec(SensorKind::Gps, 0, 10.0),
            spec(SensorKind::Barometer, 0, 20.0),
        ]);
        assert!(injection_prefix(&plan, 5.0).is_empty());
        // A failure scheduled exactly at the cut has not fired yet.
        assert!(injection_prefix(&plan, 10.0).is_empty());
        assert_eq!(injection_prefix(&plan, 10.001).len(), 1);
        assert_eq!(injection_prefix(&plan, 30.0).len(), 2);
    }

    #[test]
    fn injection_prefix_covers_link_faults() {
        use avis_hinj::{LinkDirection, LinkFaultKind, LinkFaultSpec};
        let plan = FaultPlan::from_specs(vec![spec(SensorKind::Gps, 0, 25.0)]).with_link(
            LinkFaultSpec::new(
                LinkFaultKind::Drop {
                    duration: 2.0,
                    probability: 1.0,
                },
                LinkDirection::ToVehicle,
                15.0,
            ),
        );
        assert!(injection_prefix(&plan, 10.0).is_empty());
        // The link fault at 15 s enters the prefix before the sensor one.
        assert_eq!(injection_prefix(&plan, 15.0).len(), 0);
        assert_eq!(injection_prefix(&plan, 20.0).len(), 1);
        assert_eq!(injection_prefix(&plan, 30.0).len(), 2);
        // Link faults change the cache key: a link-fault plan's snapshots
        // can never be served to a sensor-only sibling.
        let with_link = injection_prefix(&plan, 20.0);
        let without = sensor_prefix(Vec::new());
        assert_ne!(prefix_cache_key(&with_link), prefix_cache_key(&without));
        assert!(prefix_cache_key(&with_link).contains("link:drop:tv"));
    }

    #[test]
    fn prefix_cache_key_is_order_independent_and_quantised() {
        let a = sensor_prefix(vec![
            spec(SensorKind::Gps, 0, 10.0),
            spec(SensorKind::Barometer, 1, 20.0),
        ]);
        let b = sensor_prefix(vec![
            spec(SensorKind::Barometer, 1, 20.0),
            spec(SensorKind::Gps, 0, 10.0),
        ]);
        assert_eq!(prefix_cache_key(&a), prefix_cache_key(&b));
        assert_eq!(prefix_cache_key(&InjectionPrefix::default()), "");
        let c = sensor_prefix(vec![spec(SensorKind::Gps, 0, 10.0001)]);
        let d = sensor_prefix(vec![spec(SensorKind::Gps, 0, 10.0004)]);
        // Sub-millisecond times collide in key space by design…
        assert_eq!(prefix_cache_key(&c), prefix_cache_key(&d));
        // …and differ at millisecond granularity.
        let e = sensor_prefix(vec![spec(SensorKind::Gps, 0, 10.001)]);
        assert_ne!(prefix_cache_key(&c), prefix_cache_key(&e));
    }

    #[test]
    fn checkpoint_config_defaults_and_constructors() {
        let cfg = CheckpointConfig::default();
        assert!(cfg.enabled);
        assert!(cfg.interval > 0.0);
        assert!(cfg.max_bytes > 0);
        assert!(cfg.anchors.is_empty());
        assert!(cfg.anchor_placement);
        assert!(!CheckpointConfig::disabled().enabled);
        assert_eq!(CheckpointConfig::with_max_bytes(123).max_bytes, 123);
        let anchored = CheckpointConfig::with_anchors(vec![8.0, 2.0, 8.0]);
        assert_eq!(anchored.anchors, vec![2.0, 8.0]);
        assert!(!anchored.anchor_placement);
        let only = CheckpointConfig::anchors_only(vec![5.0], 1024);
        assert!(only.interval > 1e8);
        assert_eq!(only.max_bytes, 1024);
    }

    #[test]
    fn hit_weighted_tier_eviction_keeps_hot_entries_alive() {
        use crate::runner::{ExperimentConfig, ExperimentRunner};
        use avis_firmware::{BugSet, FirmwareProfile};
        use avis_workload::auto_box_mission;

        let mut experiment = ExperimentConfig::new(
            FirmwareProfile::ArduPilotLike,
            BugSet::none(),
            auto_box_mission(),
        );
        experiment.noise = Some(avis_sim::SensorNoise::noiseless());
        experiment.max_duration = 40.0;
        experiment.checkpoints = CheckpointConfig {
            anchor_placement: false,
            ..CheckpointConfig::default()
        };

        // A tier sized to hold the first run's full chain but only part
        // of what the later runs offer, so the final republish must
        // evict.
        let tier = Arc::new(SharedSnapshotTier::new(96 * 1024));
        let gps = avis_sim::SensorInstance::new(avis_sim::SensorKind::Gps, 1);
        let plan = |t: f64| FaultPlan::from_specs(vec![FaultSpec::new(gps, t)]);

        // Populate: one run's fault-free chain (cuts at 5, 10, …).
        let mut warmer = ExperimentRunner::new(experiment.clone());
        warmer.set_shared_tier(Arc::clone(&tier));
        let _ = warmer.run_with_plan(plan(35.0));
        tier.republish();

        // Make the *oldest-but-one* entry hot: two fresh runners (cold
        // local caches) fork from the deepest published cut at or before
        // their injection, bumping the t = 10 entry's hit counter. Under
        // the previous FIFO policy its age would make it an early victim.
        for probe in [12.0, 11.0] {
            let mut reader = ExperimentRunner::new(experiment.clone());
            reader.set_shared_tier(Arc::clone(&tier));
            let _ = reader.run_with_plan(plan(probe));
        }
        assert!(
            tier.stats().hits >= 2,
            "tier forks served: {:?}",
            tier.stats()
        );

        // Flood the tier with fresh zero-hit branch entries (plans that
        // diverge mid-chain record whole new prefix branches) until the
        // budget forces eviction.
        for t in [17.0, 18.0] {
            let mut flooder = ExperimentRunner::new(experiment.clone());
            flooder.set_shared_tier(Arc::clone(&tier));
            let _ = flooder.run_with_plan(plan(t));
        }
        tier.republish();

        let stats = tier.stats();
        assert!(stats.evicted > 0, "the tiny tier should evict: {stats:?}");
        assert!(stats.published_bytes <= 96 * 1024);
        // The hot entry survived the squeeze…
        let hot_depth = tier.peek_depth(0, &plan(10.5), f64::INFINITY);
        assert!(
            hot_depth.is_some_and(|t| t >= 9.9),
            "the twice-hit t = 10 entry should survive hit-weighted \
             eviction: {hot_depth:?} ({stats:?})"
        );
        // …while the zero-hit t = 5 entry (the oldest) was shed first.
        assert_eq!(
            tier.peek_depth(0, &plan(6.0), f64::INFINITY),
            None,
            "the cold t = 5 entry should be the first victim ({stats:?})"
        );
    }

    #[test]
    fn chunk_ledger_counts_each_chunk_once() {
        // Two "snapshots" sharing chunk 1: its bytes are charged once,
        // stay charged while either referent lives, and are refunded
        // only when the last referent is removed.
        let mut ledger = ChunkLedger::default();
        for &(id, bytes) in &[(1, 100), (2, 50)] {
            ledger.add_chunk(id, bytes);
        }
        for &(id, bytes) in &[(1, 100), (3, 25)] {
            ledger.add_chunk(id, bytes);
        }
        assert_eq!(ledger.bytes, 175);
        // Removing one referent of chunk 1 keeps its bytes charged…
        ledger.remove_chunk(1);
        assert_eq!(ledger.bytes, 175);
        // …and removing the last one refunds exactly its bytes.
        ledger.remove_chunk(1);
        assert_eq!(ledger.bytes, 75);
        // Unknown ids are ignored (snapshots evicted twice cannot
        // corrupt the accounting).
        ledger.remove_chunk(99);
        assert_eq!(ledger.bytes, 75);
        ledger.remove_chunk(2);
        ledger.remove_chunk(3);
        assert_eq!(ledger.bytes, 0);
        assert!(ledger.chunks.is_empty());
    }
}
