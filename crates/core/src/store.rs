//! The persistent snapshot store: a disk-backed, content-addressed
//! serialisation of the [`SharedSnapshotTier`]'s keyframe + delta
//! chains, so a campaign can *warm-start* from the checkpoint tree a
//! previous process recorded instead of re-flying the shared prefix
//! from `t = 0`.
//!
//! # Layout
//!
//! Everything lives under one store root, keyed by experiment
//! fingerprint so unrelated experiments can share a directory without
//! any risk of cross-experiment snapshot reuse:
//!
//! ```text
//! <root>/<fnv1a(fingerprint) as hex>/
//!     manifest.json        chain manifests (avis::json, atomic rename)
//!     blobs/<hex>.blob     content-addressed blobs (FNV-1a of payload)
//!     quarantine/          corrupt blobs, moved aside on load failure
//! ```
//!
//! Two blob kinds share the `blobs/` namespace, both written in the
//! same length-prefixed binary envelope (see [`encode_blob`]):
//!
//! - **chunk blobs** — the `Arc`-shared history chunks ([`avis_sim::CowVec`]
//!   sample history, firmware defect log, injector record logs), stored
//!   once per distinct content hash however many cuts, chains or
//!   campaigns reference them — the on-disk mirror of the in-memory
//!   chunk ledger;
//! - **cut blobs** — one serialised [`RunDelta`] per cut. The first cut
//!   of a chain (its *keyframe*) is encoded as the delta from the
//!   deterministic **genesis** state (the `t = 0` snapshot rebuilt from
//!   the [`ExperimentConfig`] alone, see
//!   `ExperimentRunner::genesis_snapshot`); every later cut is the delta
//!   from the previous cut of the same chain. Static structure —
//!   configuration, parameters, environment — is never written to disk
//!   at all: it is reconstructed from the experiment config, which the
//!   fingerprint pins exactly.
//!
//! # Soundness
//!
//! The store can make a campaign *slower* (a cold start) but never
//! *wrong*:
//!
//! - the store directory is keyed by experiment fingerprint **and** the
//!   manifest records the full fingerprint string, which is compared
//!   exactly before hydration — the same claim guard the in-memory tier
//!   enforces (`SharedSnapshotTier::claim`);
//! - every blob carries its payload length and FNV-1a checksum, and its
//!   file name *is* its content hash; all three are re-verified on
//!   load. A mismatch quarantines the blob (moved to `quarantine/`) and
//!   drops the rest of that chain — the affected scenarios transparently
//!   cold-start, exactly like an in-memory checksum failure;
//! - writes are write-behind and crash-safe: blobs and the manifest are
//!   written to a temporary file and atomically renamed into place, so
//!   a torn write leaves at worst a stale store, never a corrupt entry
//!   that parses;
//! - hydrated snapshots re-enter the engine through the normal
//!   [`SharedSnapshotTier::offer`] / `republish` path, so every
//!   existing guard (exact un-quantised prefix comparison before reuse,
//!   the checksum breaker, panic-taint retraction) applies unchanged.
//!
//! # GC
//!
//! The store enforces a byte budget at flush time with the same
//! hit-weighted policy as the in-memory tier: chains are ranked by
//! `(accrued fork hits, insertion sequence)` and the least-hit, oldest
//! chains are dropped first until the budget fits; blobs no longer
//! referenced by any surviving chain are deleted.

use crate::json::Json;
use crate::runner::{ExperimentConfig, ExperimentRunner};
use crate::snapshot::{RunDelta, RunSnapshot, SharedSnapshotTier, TierExport};
use avis_sim::codec::{fnv1a, ByteReader, ByteWriter};
use avis_sim::cow::{ChunkSink, ChunkSource};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes opening every blob file.
const BLOB_MAGIC: &[u8; 8] = b"AVISBLB1";

/// Manifest format version.
const MANIFEST_VERSION: f64 = 1.0;

/// Default store byte budget: large enough for several campaigns' chains
/// of the reference workloads, small enough to stay polite on CI hosts.
pub const DEFAULT_STORE_BUDGET: u64 = 256 * 1024 * 1024;

/// Counters describing what the persistent store did this session,
/// merged into [`crate::snapshot::CheckpointStats`] by the campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreStats {
    /// Chains hydrated from disk into the shared tier.
    pub loaded_chains: u64,
    /// Chains flushed to disk (new or extended this session).
    pub persisted_chains: u64,
    /// Bytes held on disk (blobs + manifest) after the last flush/GC.
    pub store_bytes: u64,
    /// Blob writes skipped because an identical content-addressed blob
    /// was already on disk.
    pub dedup_hits: u64,
    /// Blobs moved to `quarantine/` after failing verification.
    pub quarantined_blobs: u64,
}

/// What one hydrate or flush pass touched, surfaced to observers through
/// `CampaignEvent::{StoreHydrated, StoreFlushed}`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StoreReport {
    /// Chains loaded (hydrate) or written (flush).
    pub chains: u64,
    /// Individual cuts loaded or written.
    pub snapshots: u64,
    /// Bytes read from (hydrate) or held on (flush) disk.
    pub bytes: u64,
}

/// One cut recorded in the manifest: its quantised time plus the content
/// hash of its [`RunDelta`] blob.
#[derive(Debug, Clone, PartialEq)]
struct ManifestCut {
    time_ms: i64,
    blob: u64,
}

/// One persisted chain: all the cuts of one `(seed offset, quantised
/// injection prefix)` cell, time-ordered, keyframe first.
#[derive(Debug, Clone, PartialEq)]
struct ManifestChain {
    seed_offset: u64,
    prefix_key: String,
    hits: u64,
    seq: u64,
    cuts: Vec<ManifestCut>,
}

impl ManifestChain {
    fn key(&self) -> (u64, String) {
        (self.seed_offset, self.prefix_key.clone())
    }
}

/// The parsed `manifest.json`.
#[derive(Debug, Clone, Default)]
struct Manifest {
    fingerprint: String,
    next_seq: u64,
    chains: Vec<ManifestChain>,
}

impl Manifest {
    fn to_json(&self) -> Json {
        crate::json::object(vec![
            ("version", Json::Number(MANIFEST_VERSION)),
            ("fingerprint", Json::String(self.fingerprint.clone())),
            ("next_seq", Json::Number(self.next_seq as f64)),
            (
                "chains",
                Json::Array(
                    self.chains
                        .iter()
                        .map(|chain| {
                            crate::json::object(vec![
                                ("seed_offset", Json::Number(chain.seed_offset as f64)),
                                ("prefix", Json::String(chain.prefix_key.clone())),
                                ("hits", Json::Number(chain.hits as f64)),
                                ("seq", Json::Number(chain.seq as f64)),
                                (
                                    "cuts",
                                    Json::Array(
                                        chain
                                            .cuts
                                            .iter()
                                            .map(|cut| {
                                                crate::json::object(vec![
                                                    ("time_ms", Json::Number(cut.time_ms as f64)),
                                                    (
                                                        "blob",
                                                        Json::String(format!("{:016x}", cut.blob)),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<Manifest> {
        if json.get("version")?.as_f64()? != MANIFEST_VERSION {
            return None;
        }
        let mut manifest = Manifest {
            fingerprint: json.get("fingerprint")?.as_str()?.to_string(),
            next_seq: json.get("next_seq")?.as_u64()?,
            chains: Vec::new(),
        };
        for chain in json.get("chains")?.as_array()? {
            let mut cuts = Vec::new();
            for cut in chain.get("cuts")?.as_array()? {
                cuts.push(ManifestCut {
                    time_ms: cut.get("time_ms")?.as_f64()? as i64,
                    blob: u64::from_str_radix(cut.get("blob")?.as_str()?, 16).ok()?,
                });
            }
            manifest.chains.push(ManifestChain {
                seed_offset: chain.get("seed_offset")?.as_u64()?,
                prefix_key: chain.get("prefix")?.as_str()?.to_string(),
                hits: chain.get("hits")?.as_u64()?,
                seq: chain.get("seq")?.as_u64()?,
                cuts,
            });
        }
        Some(manifest)
    }
}

/// Wraps `payload` in the store's blob envelope: magic, payload length,
/// payload, FNV-1a checksum.
fn encode_blob(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(payload.len() + 24);
    bytes.extend_from_slice(BLOB_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    bytes
}

/// Unwraps a blob envelope, verifying magic, length, trailing checksum
/// *and* the expected content hash (the file name). Any mismatch returns
/// `None` — the caller quarantines the file.
fn decode_blob(bytes: &[u8], expected_hash: u64) -> Option<Vec<u8>> {
    let rest = bytes.strip_prefix(BLOB_MAGIC)?;
    if rest.len() < 16 {
        return None;
    }
    let len = u64::from_le_bytes(rest[..8].try_into().ok()?) as usize;
    let rest = &rest[8..];
    if rest.len() != len + 8 {
        return None;
    }
    let payload = &rest[..len];
    let stored = u64::from_le_bytes(rest[len..].try_into().ok()?);
    let hash = fnv1a(payload);
    if hash != stored || hash != expected_hash {
        return None;
    }
    Some(payload.to_vec())
}

/// A write-behind tmp-file tag unique per writer: the process id alone
/// is not enough, because two campaigns in one process (threads) racing
/// on one store cell would truncate and rename each other's tmp files
/// mid-write, breaking the atomic-rename guarantee the blob and
/// manifest writers rely on.
fn tmp_tag() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        "{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// The content-addressed blob directory, doubling as the
/// [`ChunkSink`]/[`ChunkSource`] the snapshot codecs stream history
/// chunks through.
#[derive(Debug)]
struct BlobDir {
    dir: PathBuf,
    quarantine: PathBuf,
    /// Hashes known to be on disk (scanned at open, maintained since),
    /// so dedup probes never stat the filesystem.
    known: BTreeSet<u64>,
    dedup_hits: u64,
    quarantined: u64,
    /// Set when a write failed; the flush that observes it withholds the
    /// manifest update, so a full store or permission error degrades to
    /// "nothing persisted", never to a manifest pointing at missing
    /// blobs.
    write_failed: bool,
}

impl BlobDir {
    fn blob_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.blob"))
    }

    /// Writes one blob write-behind: tmp file in the same directory,
    /// then an atomic rename. Content-addressing makes the operation
    /// idempotent across processes — two campaigns racing on the same
    /// hash rename identical bytes over each other.
    fn put(&mut self, payload: &[u8]) -> u64 {
        let hash = fnv1a(payload);
        if self.known.contains(&hash) {
            self.dedup_hits += 1;
            return hash;
        }
        let path = self.blob_path(hash);
        if path.exists() {
            self.known.insert(hash);
            self.dedup_hits += 1;
            return hash;
        }
        let tmp = self.dir.join(format!("{hash:016x}.{}.tmp", tmp_tag()));
        let bytes = encode_blob(payload);
        match std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path)) {
            Ok(()) => {
                self.known.insert(hash);
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                self.write_failed = true;
            }
        }
        hash
    }

    /// Reads and verifies one blob; a corrupt file is moved to
    /// `quarantine/` and `None` is returned (the chain falls back cold).
    fn get(&mut self, hash: u64) -> Option<Vec<u8>> {
        let path = self.blob_path(hash);
        let bytes = std::fs::read(&path).ok()?;
        match decode_blob(&bytes, hash) {
            Some(payload) => Some(payload),
            None => {
                self.quarantined += 1;
                self.known.remove(&hash);
                let target = self.quarantine.join(format!("{hash:016x}.blob"));
                if std::fs::rename(&path, &target).is_err() {
                    let _ = std::fs::remove_file(&path);
                }
                None
            }
        }
    }
}

impl ChunkSink for BlobDir {
    fn put_chunk(&mut self, bytes: Vec<u8>) -> u64 {
        self.put(&bytes)
    }
}

impl ChunkSource for BlobDir {
    fn get_chunk(&mut self, hash: u64) -> Option<Vec<u8>> {
        self.get(hash)
    }
}

/// The disk-backed snapshot store (see the [module docs](self)).
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    fingerprint: String,
    max_bytes: u64,
    blobs: BlobDir,
    /// Cut cells `(seed offset, prefix key, time ms)` already persisted
    /// this session, so repeated flushes (one per engine wavefront)
    /// re-encode only genuinely new cuts.
    persisted: BTreeSet<(u64, String, i64)>,
    stats: StoreStats,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store cell for `experiment` under
    /// `root`. The cell directory is keyed by the experiment fingerprint,
    /// so one root can serve many experiments.
    pub fn open(
        root: impl AsRef<Path>,
        experiment: &ExperimentConfig,
        max_bytes: u64,
    ) -> io::Result<SnapshotStore> {
        let fingerprint = experiment.fingerprint();
        let dir = root
            .as_ref()
            .join(format!("{:016x}", fnv1a(fingerprint.as_bytes())));
        let blob_dir = dir.join("blobs");
        let quarantine = dir.join("quarantine");
        std::fs::create_dir_all(&blob_dir)?;
        std::fs::create_dir_all(&quarantine)?;
        let mut known = BTreeSet::new();
        for entry in std::fs::read_dir(&blob_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_suffix(".blob") {
                if let Ok(hash) = u64::from_str_radix(hex, 16) {
                    known.insert(hash);
                }
            }
        }
        Ok(SnapshotStore {
            dir,
            fingerprint,
            max_bytes,
            blobs: BlobDir {
                dir: blob_dir,
                quarantine,
                known,
                dedup_hits: 0,
                quarantined: 0,
                write_failed: false,
            },
            persisted: BTreeSet::new(),
            stats: StoreStats::default(),
        })
    }

    /// The store cell's directory (fingerprint-keyed).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Session counters, for merging into
    /// [`crate::snapshot::CheckpointStats`].
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.stats;
        stats.dedup_hits = self.blobs.dedup_hits;
        stats.quarantined_blobs = self.blobs.quarantined;
        stats
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Reads and validates the on-disk manifest. A missing, unparsable
    /// or foreign-fingerprint manifest yields `None` — the store then
    /// behaves as empty (cold fallback, never a wrong result).
    fn read_manifest(&self) -> Option<Manifest> {
        let text = std::fs::read_to_string(self.manifest_path()).ok()?;
        let manifest = Manifest::from_json(&Json::parse(&text).ok()?)?;
        (manifest.fingerprint == self.fingerprint).then_some(manifest)
    }

    /// Writes the manifest write-behind (tmp + atomic rename).
    fn write_manifest(&self, manifest: &Manifest) -> io::Result<()> {
        let tmp = self.dir.join(format!("manifest.{}.tmp", tmp_tag()));
        std::fs::write(&tmp, manifest.to_json().to_pretty())?;
        std::fs::rename(&tmp, self.manifest_path())
    }

    /// Total bytes the store holds on disk (blobs + manifest).
    pub fn store_bytes(&self) -> u64 {
        let mut total = std::fs::metadata(self.manifest_path())
            .map(|m| m.len())
            .unwrap_or(0);
        if let Ok(entries) = std::fs::read_dir(&self.blobs.dir) {
            for entry in entries.flatten() {
                if let Ok(meta) = entry.metadata() {
                    total += meta.len();
                }
            }
        }
        total
    }

    /// Hydrates the shared tier from disk: decodes every manifest chain
    /// (keyframe from genesis, then delta by delta), offers each
    /// re-materialised snapshot to the tier and republishes. Claims the
    /// tier for this store's experiment first — the same guard the
    /// runners use — and returns a zero report if another experiment
    /// already holds it. Corrupt or truncated blobs quarantine their
    /// chain's remaining cuts; everything already validated stays
    /// offered (a shorter warm prefix is still sound).
    pub fn hydrate(
        &mut self,
        tier: &SharedSnapshotTier,
        experiment: &ExperimentConfig,
    ) -> StoreReport {
        if !tier.claim(&self.fingerprint) {
            return StoreReport::default();
        }
        let Some(manifest) = self.read_manifest() else {
            return StoreReport::default();
        };
        let mut report = StoreReport::default();
        let mut genesis_cache: BTreeMap<u64, RunSnapshot> = BTreeMap::new();
        for chain in &manifest.chains {
            let genesis = genesis_cache
                .entry(chain.seed_offset)
                .or_insert_with(|| {
                    ExperimentRunner::genesis_snapshot(experiment, chain.seed_offset)
                })
                .clone();
            let mut current = genesis;
            let mut loaded_any = false;
            for cut in &chain.cuts {
                let Some(payload) = self.blobs.get(cut.blob) else {
                    break; // quarantined: the rest of this chain is gone
                };
                report.bytes += payload.len() as u64;
                let mut reader = ByteReader::new(&payload);
                let Ok(delta) =
                    RunDelta::decode(&mut reader, &mut self.blobs, &experiment.workload)
                else {
                    break; // malformed cut: drop the rest of the chain
                };
                if reader.finish().is_err() {
                    break;
                }
                current = current.apply(&delta);
                tier.offer(chain.seed_offset, &current);
                report.snapshots += 1;
                loaded_any = true;
            }
            if loaded_any {
                report.chains += 1;
            }
        }
        tier.republish();
        self.stats.loaded_chains += report.chains;
        report
    }

    /// Flushes the tier's published snapshots to disk: groups them into
    /// `(seed offset, quantised prefix)` chains, encodes each chain as
    /// keyframe-from-genesis plus parent-relative deltas, writes new
    /// blobs write-behind, merges the manifest with whatever is on disk
    /// (concurrent campaigns flush the same store safely — blobs are
    /// content-addressed and the manifest merge is last-writer-wins per
    /// chain, preferring more cuts) and enforces the byte budget with
    /// hit-weighted GC. Incremental: cuts already persisted this session
    /// are skipped, so per-wavefront flushes cost only the new cuts.
    pub fn flush(
        &mut self,
        tier: &SharedSnapshotTier,
        experiment: &ExperimentConfig,
    ) -> StoreReport {
        let mut exports = tier.export_published();
        exports.sort_by(|a, b| {
            (a.seed_offset, &a.prefix_key, a.time_ms).cmp(&(
                b.seed_offset,
                &b.prefix_key,
                b.time_ms,
            ))
        });
        // Group into chains.
        let mut chains: Vec<Vec<TierExport>> = Vec::new();
        for export in exports {
            match chains.last_mut() {
                Some(chain)
                    if chain[0].seed_offset == export.seed_offset
                        && chain[0].prefix_key == export.prefix_key =>
                {
                    chain.push(export);
                }
                _ => chains.push(vec![export]),
            }
        }
        // Anything new to write?
        let dirty = chains.iter().flatten().any(|e| {
            !self
                .persisted
                .contains(&(e.seed_offset, e.prefix_key.clone(), e.time_ms))
        });
        if !dirty {
            return StoreReport {
                bytes: self.stats.store_bytes,
                ..StoreReport::default()
            };
        }

        let mut report = StoreReport::default();
        let mut genesis_cache: BTreeMap<u64, RunSnapshot> = BTreeMap::new();
        let mut new_chains: Vec<ManifestChain> = Vec::new();
        for chain in &chains {
            let seed_offset = chain[0].seed_offset;
            let genesis = genesis_cache
                .entry(seed_offset)
                .or_insert_with(|| ExperimentRunner::genesis_snapshot(experiment, seed_offset))
                .clone();
            let mut prev = genesis;
            let mut cuts = Vec::with_capacity(chain.len());
            let mut hits = 0;
            for export in chain {
                hits = hits.max(export.hits);
                let delta = export.snapshot.diff(&prev);
                let mut writer = ByteWriter::with_capacity(4096);
                delta.encode(&mut writer, &mut self.blobs);
                let payload = writer.into_bytes();
                let blob = self.blobs.put(&payload);
                report.snapshots += 1;
                cuts.push(ManifestCut {
                    time_ms: export.time_ms,
                    blob,
                });
                self.persisted
                    .insert((seed_offset, export.prefix_key.clone(), export.time_ms));
                prev = export.snapshot.clone();
            }
            new_chains.push(ManifestChain {
                seed_offset,
                prefix_key: chain[0].prefix_key.clone(),
                hits,
                seq: 0, // assigned at merge below
                cuts,
            });
            report.chains += 1;
        }
        if self.blobs.write_failed {
            // A blob failed to reach disk (full disk, permissions): do
            // not publish a manifest that references it. The store stays
            // at its previous state; warm-starting degrades, correctness
            // does not.
            self.blobs.write_failed = false;
            return StoreReport::default();
        }

        // Merge with the on-disk manifest (another campaign may have
        // flushed since we last looked).
        let mut manifest = self.read_manifest().unwrap_or_else(|| Manifest {
            fingerprint: self.fingerprint.clone(),
            next_seq: 0,
            chains: Vec::new(),
        });
        for mut chain in new_chains {
            match manifest.chains.iter_mut().find(|c| c.key() == chain.key()) {
                Some(existing) => {
                    // Prefer the longer record of the same chain; keep
                    // the maximum hit count and the original insertion
                    // sequence either way.
                    chain.hits = chain.hits.max(existing.hits);
                    chain.seq = existing.seq;
                    if chain.cuts.len() >= existing.cuts.len() {
                        *existing = chain;
                    } else {
                        existing.hits = chain.hits;
                    }
                }
                None => {
                    chain.seq = manifest.next_seq;
                    manifest.next_seq += 1;
                    manifest.chains.push(chain);
                }
            }
        }

        self.gc(&mut manifest, experiment);
        if self.write_manifest(&manifest).is_err() {
            return StoreReport::default();
        }
        self.stats.persisted_chains = manifest.chains.len() as u64;
        self.stats.store_bytes = self.store_bytes();
        report.bytes = self.stats.store_bytes;
        report
    }

    /// Enforces the byte budget: drops whole chains lowest-`(hits, seq)`
    /// first — the in-memory tier's hit-weighted eviction, persisted —
    /// then deletes blobs no surviving chain references.
    fn gc(&mut self, manifest: &mut Manifest, experiment: &ExperimentConfig) {
        let blob_size = |hash: u64| -> u64 {
            std::fs::metadata(self.blobs.blob_path(hash))
                .map(|m| m.len())
                .unwrap_or(0)
        };
        loop {
            let referenced: BTreeSet<u64> = manifest
                .chains
                .iter()
                .flat_map(|c| c.cuts.iter().map(|cut| cut.blob))
                .collect();
            let total: u64 = referenced.iter().map(|&h| blob_size(h)).sum();
            if total <= self.max_bytes || manifest.chains.is_empty() {
                break;
            }
            let Some(victim_idx) = manifest
                .chains
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| (c.hits, c.seq))
                .map(|(i, _)| i)
            else {
                break;
            };
            manifest.chains.remove(victim_idx);
        }
        // Delete orphaned blobs (chunk blobs referenced from inside cut
        // payloads are found by decoding nothing: chunk hashes appear in
        // cut blobs, so sweep conservatively — only blobs that are
        // neither a referenced cut nor a chunk referenced by a surviving
        // cut payload are removed).
        let mut live: BTreeSet<u64> = manifest
            .chains
            .iter()
            .flat_map(|c| c.cuts.iter().map(|cut| cut.blob))
            .collect();
        // Chunk blobs are referenced by hash from inside cut payloads;
        // collect them by scanning each surviving cut blob for its chunk
        // references (the codec writes chunk hashes as u64s the sink
        // returned, so re-reading the payload through a collecting
        // source would be circular — instead, decode each cut's delta
        // and record which chunks the source was asked for).
        let cut_hashes: Vec<u64> = live.iter().copied().collect();
        let mut reachability_complete = true;
        for hash in cut_hashes {
            match self.blobs.get(hash) {
                Some(payload) => {
                    let mut collector = ChunkRefCollector {
                        inner: &mut self.blobs,
                        seen: BTreeSet::new(),
                    };
                    let mut reader = ByteReader::new(&payload);
                    let seen = {
                        let decoded =
                            RunDelta::decode(&mut reader, &mut collector, &experiment.workload);
                        if decoded.is_err() {
                            reachability_complete = false;
                        }
                        collector.seen
                    };
                    live.extend(seen);
                }
                None => reachability_complete = false,
            }
        }
        // Sweep only with a *complete* live set: if any cut failed to
        // decode, its chunk references are unknown, and deleting
        // "orphans" on partial knowledge could break chains a concurrent
        // campaign is still publishing. Skipping a sweep costs bytes
        // until the next clean flush, never correctness.
        if !reachability_complete {
            return;
        }
        let on_disk: Vec<u64> = self.blobs.known.iter().copied().collect();
        for hash in on_disk {
            if !live.contains(&hash) {
                let _ = std::fs::remove_file(self.blobs.blob_path(hash));
                self.blobs.known.remove(&hash);
            }
        }
    }
}

/// A [`ChunkSource`] wrapper that records which chunk hashes a decode
/// touched — the GC's reachability probe.
struct ChunkRefCollector<'a> {
    inner: &'a mut BlobDir,
    seen: BTreeSet<u64>,
}

impl ChunkSource for ChunkRefCollector<'_> {
    fn get_chunk(&mut self, hash: u64) -> Option<Vec<u8>> {
        self.seen.insert(hash);
        self.inner.get(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::CheckpointConfig;
    use avis_firmware::{BugSet, FirmwareProfile};
    use avis_sim::SensorNoise;
    use avis_workload::auto_box_mission;
    use std::sync::Arc;

    fn experiment() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(
            FirmwareProfile::ArduPilotLike,
            BugSet::none(),
            auto_box_mission(),
        );
        cfg.noise = Some(SensorNoise::noiseless());
        cfg.max_duration = 60.0;
        cfg
    }

    /// A tier holding the chains one fault-free injection run records
    /// (profiling runs bypass the checkpoint tree, so the fault-free
    /// *plan* run is the cheapest way to a populated tier).
    fn populated_tier(cfg: &ExperimentConfig) -> Arc<SharedSnapshotTier> {
        let tier = Arc::new(SharedSnapshotTier::new(
            CheckpointConfig::default().max_bytes,
        ));
        let mut runner = ExperimentRunner::new(cfg.clone());
        runner.set_shared_tier(Arc::clone(&tier));
        runner.run_with_plan(avis_hinj::FaultPlan::empty());
        tier.republish();
        assert!(
            !tier.export_published().is_empty(),
            "the profiling run records shared snapshots"
        );
        tier
    }

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("avis-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn blob_names(store: &SnapshotStore) -> BTreeSet<String> {
        std::fs::read_dir(store.dir().join("blobs"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect()
    }

    #[test]
    fn blob_envelope_rejects_any_tampering() {
        let payload = b"snapshot payload".to_vec();
        let blob = encode_blob(&payload);
        let hash = fnv1a(&payload);
        assert_eq!(decode_blob(&blob, hash), Some(payload.clone()));
        // Wrong expected hash (file renamed / cross-wired manifest).
        assert_eq!(decode_blob(&blob, hash ^ 1), None);
        // Truncation.
        assert_eq!(decode_blob(&blob[..blob.len() - 1], hash), None);
        // A single flipped payload bit.
        let mut flipped = blob.clone();
        flipped[BLOB_MAGIC.len() + 8] ^= 0x40;
        assert_eq!(decode_blob(&flipped, hash), None);
        // Foreign magic.
        let mut foreign = blob;
        foreign[0] ^= 0xff;
        assert_eq!(decode_blob(&foreign, hash), None);
    }

    #[test]
    fn flush_then_hydrate_round_trips_bit_identically() {
        let cfg = experiment();
        let tier = populated_tier(&cfg);
        let root = temp_store("round-trip");

        let mut store = SnapshotStore::open(&root, &cfg, DEFAULT_STORE_BUDGET).unwrap();
        let flushed = store.flush(&tier, &cfg);
        assert!(flushed.chains >= 1, "the fault-free chain is persisted");
        assert!(flushed.snapshots >= 1);
        assert!(store.stats().persisted_chains >= 1);
        let first_blobs = blob_names(&store);
        drop(store);

        // A fresh process hydrates a fresh tier from the same root.
        let tier2 = Arc::new(SharedSnapshotTier::new(
            CheckpointConfig::default().max_bytes,
        ));
        let mut store = SnapshotStore::open(&root, &cfg, DEFAULT_STORE_BUDGET).unwrap();
        let hydrated = store.hydrate(&tier2, &cfg);
        assert_eq!(hydrated.chains, flushed.chains);
        assert_eq!(hydrated.snapshots, flushed.snapshots);
        assert_eq!(store.stats().quarantined_blobs, 0);

        // Re-flushing the hydrated tier into a second root produces the
        // exact same content-addressed blob set: the round trip is
        // bit-identical, not merely structurally similar.
        let root2 = temp_store("round-trip-2");
        let mut store2 = SnapshotStore::open(&root2, &cfg, DEFAULT_STORE_BUDGET).unwrap();
        store2.flush(&tier2, &cfg);
        assert_eq!(blob_names(&store2), first_blobs);

        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&root2);
    }

    #[test]
    fn corrupt_blob_is_quarantined_with_cold_fallback() {
        let cfg = experiment();
        let tier = populated_tier(&cfg);
        let root = temp_store("quarantine");
        let mut store = SnapshotStore::open(&root, &cfg, DEFAULT_STORE_BUDGET).unwrap();
        let flushed = store.flush(&tier, &cfg);
        let blobs_dir = store.dir().join("blobs");
        let quarantine_dir = store.dir().join("quarantine");
        drop(store);

        // Flip one payload byte in one blob (first in directory order).
        let victim = std::fs::read_dir(&blobs_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .min()
            .unwrap();
        let mut bytes = std::fs::read(&victim).unwrap();
        let idx = BLOB_MAGIC.len() + 8;
        bytes[idx] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();

        let tier2 = Arc::new(SharedSnapshotTier::new(
            CheckpointConfig::default().max_bytes,
        ));
        let mut store = SnapshotStore::open(&root, &cfg, DEFAULT_STORE_BUDGET).unwrap();
        let hydrated = store.hydrate(&tier2, &cfg);
        // Hydration survives — it loads at most what it can verify.
        assert!(hydrated.snapshots < flushed.snapshots);
        assert_eq!(store.stats().quarantined_blobs, 1);
        assert!(!victim.exists(), "the corrupt blob is moved aside");
        assert_eq!(
            std::fs::read_dir(&quarantine_dir).unwrap().count(),
            1,
            "the corrupt blob lands in quarantine/"
        );

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_blob_is_rejected_not_panicked() {
        let cfg = experiment();
        let tier = populated_tier(&cfg);
        let root = temp_store("truncated");
        let mut store = SnapshotStore::open(&root, &cfg, DEFAULT_STORE_BUDGET).unwrap();
        store.flush(&tier, &cfg);
        let blobs_dir = store.dir().join("blobs");
        drop(store);

        let victim = std::fs::read_dir(&blobs_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .max()
            .unwrap();
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

        let tier2 = Arc::new(SharedSnapshotTier::new(
            CheckpointConfig::default().max_bytes,
        ));
        let mut store = SnapshotStore::open(&root, &cfg, DEFAULT_STORE_BUDGET).unwrap();
        let _ = store.hydrate(&tier2, &cfg);
        assert_eq!(store.stats().quarantined_blobs, 1);

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_enforces_a_zero_budget_by_dropping_everything() {
        let cfg = experiment();
        let tier = populated_tier(&cfg);
        let root = temp_store("gc");
        let mut store = SnapshotStore::open(&root, &cfg, 0).unwrap();
        store.flush(&tier, &cfg);
        assert_eq!(store.stats().persisted_chains, 0);
        assert!(blob_names(&store).is_empty(), "all blobs swept");
        drop(store);

        let tier2 = Arc::new(SharedSnapshotTier::new(
            CheckpointConfig::default().max_bytes,
        ));
        let mut store = SnapshotStore::open(&root, &cfg, 0).unwrap();
        assert_eq!(store.hydrate(&tier2, &cfg), StoreReport::default());

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn hydrate_respects_the_tier_claim_guard() {
        let cfg = experiment();
        let tier = populated_tier(&cfg);
        let root = temp_store("claim");
        let mut store = SnapshotStore::open(&root, &cfg, DEFAULT_STORE_BUDGET).unwrap();
        store.flush(&tier, &cfg);
        drop(store);

        // A tier already claimed by a *different* experiment refuses the
        // hydration wholesale.
        let foreign = Arc::new(SharedSnapshotTier::new(
            CheckpointConfig::default().max_bytes,
        ));
        assert!(foreign.claim("some other experiment"));
        let mut store = SnapshotStore::open(&root, &cfg, DEFAULT_STORE_BUDGET).unwrap();
        assert_eq!(store.hydrate(&foreign, &cfg), StoreReport::default());
        assert!(foreign.export_published().is_empty());

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_json_round_trips() {
        let manifest = Manifest {
            fingerprint: "fp|test".to_string(),
            next_seq: 7,
            chains: vec![ManifestChain {
                seed_offset: 3,
                prefix_key: "s:1@12.5".to_string(),
                hits: 9,
                seq: 2,
                cuts: vec![
                    ManifestCut {
                        time_ms: 1500,
                        blob: 0xdead_beef_0bad_f00d,
                    },
                    ManifestCut {
                        time_ms: 2500,
                        blob: 0x0123_4567_89ab_cdef,
                    },
                ],
            }],
        };
        let text = manifest.to_json().to_pretty();
        let parsed = Manifest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.fingerprint, manifest.fingerprint);
        assert_eq!(parsed.next_seq, manifest.next_seq);
        assert_eq!(parsed.chains, manifest.chains);
    }
}
