//! Vanilla BFI as a [`Strategy`]: depth-first enumeration of individual
//! sensor-read sites, each labelled by the learned model at the measured
//! inference latency.

use super::{Candidate, Decision, Observation, Strategy, StrategyContext};
use crate::baselines::{BfiModel, DfsSiteIterator};
use crate::trace::Trace;
use avis_firmware::ModeCategory;
use avis_hinj::{FaultPlan, FaultSpec};
use avis_sim::SensorInstance;

/// Sites pulled from the depth-first iterator per round. A fixed constant
/// — never derived from the engine's parallelism — so round composition
/// is identical at every worker count (see the determinism contract in
/// the [module docs](super)).
const SITE_BATCH: usize = 32;

/// The vanilla BFI baseline: walk the fault space depth-first (latest
/// sensor reads first), label every site with the model, and inject only
/// the sites predicted unsafe. One round = [`SITE_BATCH`] sites.
#[derive(Debug)]
pub struct BfiStrategy {
    model: BfiModel,
    sites: Option<DfsSiteIterator>,
    golden: Option<Trace>,
    round: Vec<(SensorInstance, f64)>,
}

impl BfiStrategy {
    /// BFI with the default synthetic training corpus and the paper's
    /// ~10 s per-label inference latency.
    pub fn with_default_model() -> Self {
        BfiStrategy::with_model(BfiModel::with_default_training())
    }

    /// BFI driven by a custom model.
    pub fn with_model(model: BfiModel) -> Self {
        BfiStrategy {
            model,
            sites: None,
            golden: None,
            round: Vec::new(),
        }
    }

    fn site_category(&self, time: f64) -> ModeCategory {
        self.golden
            .as_ref()
            .expect("strategy initialised")
            .mode_before(time)
            .map(|m| m.category())
            .unwrap_or(ModeCategory::Manual)
    }
}

impl Strategy for BfiStrategy {
    fn name(&self) -> &str {
        "BFI"
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        self.sites = Some(DfsSiteIterator::new(
            &ctx.sensors,
            ctx.golden.duration,
            ctx.experiment.dt,
        ));
        self.golden = Some(ctx.golden.clone());
    }

    fn propose(&mut self) -> Vec<Candidate> {
        let sites = self.sites.as_mut().expect("strategy initialised");
        self.round = sites.by_ref().take(SITE_BATCH).collect();
        self.round
            .iter()
            .enumerate()
            .map(|(slot, &(instance, time))| {
                // The model filter is a pure function of the site, so the
                // speculation here makes the same call `decide` will.
                if self
                    .model
                    .predicts_unsafe(instance.kind, self.site_category(time))
                {
                    let plan = FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]);
                    Candidate::speculate(slot as u64, plan)
                } else {
                    Candidate::skip(slot as u64)
                }
            })
            .collect()
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        let (instance, time) = self.round[candidate.token() as usize];
        let decision = Decision::skip().labelled(1, self.model.label_cost_seconds);
        if !self
            .model
            .predicts_unsafe(instance.kind, self.site_category(time))
        {
            return decision;
        }
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]);
        Decision {
            plan: Some(plan),
            ..decision
        }
    }

    fn observe(&mut self, _observation: &Observation<'_>) {
        // BFI's model is trained offline; results do not feed back.
    }
}
