//! Link-fault scenario strategies.
//!
//! Two pieces make protocol faults a first-class campaign dimension:
//!
//! * [`LinkScenarioStrategy`] pins a fixed [`LinkFaultPlan`] under any
//!   inner sensor-fault strategy: every plan the inner strategy proposes
//!   or decides is merged with the scenario's link faults before it
//!   reaches the engine, so one campaign explores the sensor-fault space
//!   *under* a fixed protocol-fault environment. This is the wrapper
//!   [`crate::campaign::CampaignBuilder::link_faults`] installs.
//! * [`LinkProbeStrategy`] searches the link-fault space itself:
//!   drop / duplicate / corrupt / reorder / delay windows and command
//!   storms anchored at the golden trace's mode transitions, the same
//!   anchoring idea SABRE applies to sensor faults.
//!
//! Both preserve the engine's determinism contract. The wrapper merges
//! identically at propose and decide time, so a speculative plan always
//! equals the committed plan and speculative reuse keeps working; round
//! composition of the probe is a pure function of the golden trace.

use super::{Candidate, Decision, Observation, PruningCounters, Strategy, StrategyContext};
use avis_hinj::{
    FaultPlan, LinkDirection, LinkFaultKind, LinkFaultPlan, LinkFaultSpec, StormCommand,
};

/// Wraps an inner strategy so every plan it emits carries a fixed base
/// [`LinkFaultPlan`]. See the [module docs](self).
///
/// Pruning state is unaffected: role signatures are computed from sensor
/// specs only, and every plan in the campaign carries the identical link
/// part, so the inner strategy's symmetry / found-bug pruning behaves
/// exactly as in a link-fault-free campaign.
pub struct LinkScenarioStrategy {
    inner: Box<dyn Strategy>,
    link: LinkFaultPlan,
}

impl LinkScenarioStrategy {
    /// Pins `link` under every plan `inner` produces.
    pub fn new(inner: Box<dyn Strategy>, link: LinkFaultPlan) -> Self {
        LinkScenarioStrategy { inner, link }
    }

    fn merged(&self, mut plan: FaultPlan) -> FaultPlan {
        plan.merge_link(&self.link);
        plan
    }
}

impl std::fmt::Debug for LinkScenarioStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkScenarioStrategy")
            .field("inner", &self.inner.name())
            .field("link", &self.link)
            .finish()
    }
}

impl Strategy for LinkScenarioStrategy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        self.inner.initialize(ctx);
    }

    fn propose(&mut self) -> Vec<Candidate> {
        self.inner
            .propose()
            .into_iter()
            .map(|c| match c.speculative() {
                Some(plan) => Candidate::speculate(c.token(), self.merged(plan.clone())),
                None => c,
            })
            .collect()
    }

    fn revalidate(&self, candidate: &Candidate) -> bool {
        self.inner.revalidate(candidate)
    }

    fn prune_probability(&self, candidate: &Candidate) -> f64 {
        self.inner.prune_probability(candidate)
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        let mut decision = self.inner.decide(candidate);
        decision.plan = decision.plan.take().map(|plan| self.merged(plan));
        decision
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        self.inner.observe(observation);
    }

    fn pruning(&self) -> PruningCounters {
        self.inner.pruning()
    }
}

/// Plans per round. A fixed constant — never derived from the engine's
/// parallelism — so the probe sequence is identical at every worker
/// count.
const PROBE_BATCH: usize = 8;

/// Active-window length for windowed link faults (s): long enough to
/// cover the command/ack exchange around a mode transition.
const PROBE_WINDOW: f64 = 2.0;

/// Copies injected per command storm.
const STORM_COUNT: u32 = 8;

/// Enumerates protocol-fault scenarios anchored at the golden trace's
/// mode transitions: deterministic drop / duplicate / corrupt / reorder /
/// delay windows in both link directions plus arm and return-to-launch
/// command storms, each as its own sensor-fault-free plan.
///
/// The probe space is a pure function of the golden trace, so campaigns
/// are bit-identical at every parallelism and under checkpointed replay.
#[derive(Debug, Default)]
pub struct LinkProbeStrategy {
    probes: Vec<FaultPlan>,
    cursor: usize,
    round: Vec<FaultPlan>,
}

impl LinkProbeStrategy {
    /// A probe strategy; the scenario list is built at initialisation
    /// from the golden trace.
    pub fn new() -> Self {
        LinkProbeStrategy::default()
    }

    fn scenarios_at(time: f64) -> Vec<LinkFaultSpec> {
        use LinkDirection::{ToGcs, ToVehicle};
        vec![
            LinkFaultSpec::new(
                LinkFaultKind::Drop {
                    duration: PROBE_WINDOW,
                    probability: 1.0,
                },
                ToVehicle,
                time,
            ),
            LinkFaultSpec::new(
                LinkFaultKind::Drop {
                    duration: PROBE_WINDOW,
                    probability: 1.0,
                },
                ToGcs,
                time,
            ),
            LinkFaultSpec::new(
                LinkFaultKind::Duplicate {
                    duration: PROBE_WINDOW,
                    probability: 1.0,
                },
                ToVehicle,
                time,
            ),
            LinkFaultSpec::new(
                LinkFaultKind::Corrupt {
                    duration: PROBE_WINDOW,
                    probability: 1.0,
                },
                ToVehicle,
                time,
            ),
            LinkFaultSpec::new(
                LinkFaultKind::Corrupt {
                    duration: PROBE_WINDOW,
                    probability: 1.0,
                },
                ToGcs,
                time,
            ),
            LinkFaultSpec::new(
                LinkFaultKind::Reorder {
                    duration: PROBE_WINDOW,
                    window: 4,
                },
                ToVehicle,
                time,
            ),
            LinkFaultSpec::new(
                LinkFaultKind::Delay {
                    duration: PROBE_WINDOW,
                    seconds: 0.5,
                },
                ToVehicle,
                time,
            ),
            LinkFaultSpec::new(
                LinkFaultKind::Storm {
                    command: StormCommand::Arm,
                    count: STORM_COUNT,
                },
                ToVehicle,
                time,
            ),
            LinkFaultSpec::new(
                LinkFaultKind::Storm {
                    command: StormCommand::ReturnToLaunch,
                    count: STORM_COUNT,
                },
                ToVehicle,
                time,
            ),
        ]
    }
}

impl Strategy for LinkProbeStrategy {
    fn name(&self) -> &str {
        "Link probe"
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        self.probes.clear();
        self.cursor = 0;
        let mut anchors: Vec<f64> = ctx.golden.transition_times();
        if anchors.is_empty() {
            anchors.push(0.0);
        }
        for time in anchors {
            for spec in LinkProbeStrategy::scenarios_at(time) {
                self.probes.push(FaultPlan::empty().with_link(spec));
            }
        }
    }

    fn propose(&mut self) -> Vec<Candidate> {
        let end = (self.cursor + PROBE_BATCH).min(self.probes.len());
        self.round = self.probes[self.cursor..end].to_vec();
        self.cursor = end;
        self.round
            .iter()
            .enumerate()
            .map(|(slot, plan)| Candidate::speculate(slot as u64, plan.clone()))
            .collect()
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        Decision::run(self.round[candidate.token() as usize].clone())
    }

    fn observe(&mut self, _observation: &Observation<'_>) {
        // The probe enumerates a fixed scenario list; results do not
        // steer it.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingInner {
        decided: usize,
    }

    impl Strategy for CountingInner {
        fn name(&self) -> &str {
            "inner"
        }

        fn initialize(&mut self, _ctx: &StrategyContext<'_>) {}

        fn propose(&mut self) -> Vec<Candidate> {
            vec![
                Candidate::speculate(0, FaultPlan::empty()),
                Candidate::skip(1),
            ]
        }

        fn decide(&mut self, candidate: &Candidate) -> Decision {
            self.decided += 1;
            if candidate.token() == 0 {
                Decision::run(FaultPlan::empty())
            } else {
                Decision::skip()
            }
        }

        fn observe(&mut self, _observation: &Observation<'_>) {}
    }

    fn storm_link() -> LinkFaultPlan {
        LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
            LinkFaultKind::Storm {
                command: StormCommand::Arm,
                count: 3,
            },
            LinkDirection::ToVehicle,
            8.0,
        )])
    }

    #[test]
    fn wrapper_merges_link_plan_into_propose_and_decide() {
        let mut wrapped =
            LinkScenarioStrategy::new(Box::new(CountingInner { decided: 0 }), storm_link());
        assert_eq!(wrapped.name(), "inner");

        let round = wrapped.propose();
        assert_eq!(round.len(), 2);
        let speculative = round[0].speculative().expect("speculated");
        assert_eq!(speculative.link_plan(), &storm_link());
        assert!(round[1].speculative().is_none());

        let decision = wrapped.decide(&round[0]);
        let plan = decision.plan.expect("ran");
        assert_eq!(plan.link_plan(), &storm_link());
        // Speculative plan must equal the decided plan, or the parallel
        // engine would discard every speculative run.
        assert_eq!(speculative, &plan);

        let skipped = wrapped.decide(&round[1]);
        assert!(skipped.plan.is_none());
    }

    #[test]
    fn probe_rounds_are_a_fixed_walk_over_the_scenario_list() {
        let mut probe = LinkProbeStrategy::new();
        probe.probes = LinkProbeStrategy::scenarios_at(10.0)
            .into_iter()
            .chain(LinkProbeStrategy::scenarios_at(40.0))
            .map(|spec| FaultPlan::empty().with_link(spec))
            .collect();
        assert_eq!(probe.probes.len(), 18);

        let first = probe.propose();
        assert_eq!(first.len(), PROBE_BATCH);
        let plan = first[0].speculative().expect("speculated");
        assert!(plan.specs().next().is_none(), "probes are sensor-free");
        assert_eq!(plan.link_plan().len(), 1);
        assert_eq!(
            probe.decide(&first[0]).plan.as_ref(),
            first[0].speculative()
        );

        let second = probe.propose();
        let third = probe.propose();
        assert_eq!(second.len(), PROBE_BATCH);
        assert_eq!(third.len(), 18 - 2 * PROBE_BATCH);
        assert!(probe.propose().is_empty(), "exhausted probe ends campaign");
    }
}
