//! The pluggable search-strategy interface.
//!
//! The paper's core contribution is an *extensible* search-order idea
//! (SABRE) compared against swappable baselines. This module makes that
//! extensibility first-class: every injection strategy — the four the
//! paper evaluates plus any user-defined one — implements the
//! [`Strategy`] trait, and the campaign engine (serial *and* parallel)
//! drives them through one common lifecycle:
//!
//! 1. **[`Strategy::initialize`]** — once per campaign, after the
//!    profiling runs: the strategy receives the golden trace, the
//!    experiment configuration, the vehicle's sensor complement and the
//!    deterministic campaign seed, and builds whatever internal state it
//!    needs (a SABRE transition queue, a site iterator, a seeded RNG).
//! 2. **[`Strategy::propose`]** — the strategy emits one *round* of
//!    [`Candidate`]s: the natural unit of work it would explore next (a
//!    SABRE anchor's candidate failure sets, a batch of BFI sites, a
//!    batch of random draws). Each candidate may carry a *speculative*
//!    fault plan, which the parallel engine pre-executes on its worker
//!    pool while the serial commit catches up.
//! 3. **[`Strategy::decide`]** — for each candidate, in round order, the
//!    strategy makes the *authoritative* call: what to charge against the
//!    budget (model-labelling latency), and which plan — if any — to
//!    execute. This is where pruning state mutates.
//! 4. **[`Strategy::observe`]** — the completed run is fed back, still in
//!    round order, so the strategy can react (SABRE enqueues the run's
//!    mode transitions; found-bug pruning learns the plan).
//!
//! # The determinism contract
//!
//! A campaign must produce a bit-identical
//! [`crate::checker::CampaignResult`] whatever the engine's parallelism.
//! The lifecycle guarantees this as long as a strategy follows two rules:
//!
//! * **Round composition must not depend on engine parameters.** The
//!   engine calls `propose` identically at every parallelism; a round's
//!   candidates may depend only on the strategy's own state, which
//!   evolves through the same `decide`/`observe` sequence everywhere.
//! * **Speculation must under-approximate, never contradict.** A
//!   candidate's speculative plan is a *hint*: the engine executes the
//!   plan returned by `decide`, falling back to inline execution when the
//!   hint was absent or wrong. Runs are pure functions of their plan, so
//!   a wrong hint costs time, not correctness.

mod bfi;
mod link;
mod random;
mod round_robin;
mod sabre_strategy;

pub use bfi::BfiStrategy;
pub use link::{LinkProbeStrategy, LinkScenarioStrategy};
pub use random::RandomStrategy;
pub use round_robin::RoundRobinMode;
pub use sabre_strategy::SabreStrategy;

use crate::runner::{ExperimentConfig, RunResult};
use crate::sabre::SabreConfig;
use crate::trace::Trace;
use avis_hinj::FaultPlan;
use avis_sim::SensorSuiteConfig;

/// Everything a strategy may consult when it initialises: the calibrated
/// golden trace, the experiment under test, the SABRE scheduling
/// parameters, the campaign seed and the vehicle's sensor complement.
///
/// Strategies clone what they need out of the context; it is not retained
/// past [`Strategy::initialize`].
#[derive(Debug)]
pub struct StrategyContext<'a> {
    /// The first profiling run's trace — the reference flight whose mode
    /// transitions anchor transition-targeted strategies.
    pub golden: &'a Trace,
    /// The experiment configuration (firmware, defects, workload, dt).
    pub experiment: &'a ExperimentConfig,
    /// SABRE scheduler configuration (horizon already clamped to the
    /// golden trace's duration by the engine).
    pub sabre: SabreConfig,
    /// The deterministic campaign seed (drives e.g. the random baseline).
    pub seed: u64,
    /// The vehicle's sensor complement.
    pub sensors: SensorSuiteConfig,
}

/// One unit of work within a round: an opaque token the strategy uses to
/// recognise the candidate at [`Strategy::decide`] /
/// [`Strategy::observe`] time, plus an optional speculative fault plan
/// for the parallel engine to pre-execute.
#[derive(Debug, Clone)]
pub struct Candidate {
    token: u64,
    speculative: Option<FaultPlan>,
}

impl Candidate {
    /// A candidate the strategy expects to execute: the parallel engine
    /// pre-runs `plan` on the worker pool.
    pub fn speculate(token: u64, plan: FaultPlan) -> Self {
        Candidate {
            token,
            speculative: Some(plan),
        }
    }

    /// A candidate the strategy expects to skip (model-filtered, pruned),
    /// kept in the round because commit-time accounting (label charges)
    /// still applies to it.
    pub fn skip(token: u64) -> Self {
        Candidate {
            token,
            speculative: None,
        }
    }

    /// The strategy-private token identifying this candidate.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The speculative plan, if any.
    pub fn speculative(&self) -> Option<&FaultPlan> {
        self.speculative.as_ref()
    }
}

/// The authoritative commit-time outcome for one candidate: what to
/// charge against the budget and which plan, if any, to execute.
#[derive(Debug, Clone, Default)]
pub struct Decision {
    /// Model labelling calls performed for this candidate.
    pub labels: usize,
    /// Budget cost charged for this candidate before any run (the
    /// modelled labelling latency).
    pub cost_seconds: f64,
    /// The plan to execute, or `None` to skip the candidate.
    pub plan: Option<FaultPlan>,
}

impl Decision {
    /// Skip the candidate, charging nothing.
    pub fn skip() -> Self {
        Decision::default()
    }

    /// Execute `plan`, charging nothing beyond the run itself.
    pub fn run(plan: FaultPlan) -> Self {
        Decision {
            plan: Some(plan),
            ..Decision::default()
        }
    }

    /// Adds a model-labelling charge to the decision.
    pub fn labelled(mut self, labels: usize, cost_seconds: f64) -> Self {
        self.labels += labels;
        self.cost_seconds += cost_seconds;
        self
    }
}

/// A completed run fed back to the strategy, in commit order.
#[derive(Debug)]
pub struct Observation<'a> {
    /// The candidate that produced the run.
    pub candidate: &'a Candidate,
    /// The run's full result (plan, trace, triggered defects).
    pub result: &'a RunResult,
    /// Whether the invariant monitor flagged the run unsafe.
    pub is_unsafe: bool,
}

/// Pruning statistics reported at the end of a campaign
/// ([`crate::checker::CampaignResult::symmetry_pruned`] /
/// [`crate::checker::CampaignResult::found_bug_pruned`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruningCounters {
    /// Scenarios skipped by instance-symmetry / duplicate pruning.
    pub symmetry_pruned: u64,
    /// Scenarios skipped by found-bug pruning.
    pub found_bug_pruned: u64,
}

/// A pluggable injection-search strategy. See the [module
/// documentation](self) for the lifecycle and determinism contract.
///
/// Custom strategies plug into a campaign through
/// [`crate::campaign::CampaignBuilder::strategy`]; no core code needs to
/// change.
pub trait Strategy: Send {
    /// Display name, used in reports and observer events.
    fn name(&self) -> &str;

    /// Called once per campaign, after profiling, before the first round.
    fn initialize(&mut self, ctx: &StrategyContext<'_>);

    /// Emits the next round of candidates. An empty round ends the
    /// campaign (the strategy's search space is exhausted).
    fn propose(&mut self) -> Vec<Candidate>;

    /// Whether a candidate's speculative plan is still worth executing,
    /// given everything the strategy has observed so far. Non-mutating:
    /// the parallel engine calls this right before dispatching a chunk
    /// of speculative work, so a bug committed earlier in the round can
    /// cancel now-pruned siblings before they burn a worker. This is an
    /// optimisation hook only — answering `true` for a plan `decide`
    /// later rejects wastes time, never correctness. The default accepts
    /// everything.
    fn revalidate(&self, _candidate: &Candidate) -> bool {
        true
    }

    /// The strategy's estimate, in `0.0..=1.0`, that its own commit-time
    /// pruning will reject this candidate — `1.0` for a plan it would
    /// prune right now, intermediate values for plans that *tend to
    /// become* pruned as sibling results commit (e.g. supersets forming
    /// at an injection site where bugs are already accumulating). The
    /// parallel engine skips speculating candidates above its admission
    /// ceiling instead of merely shrinking the wavefront around them.
    /// Non-mutating and purely an optimisation hook: wrong estimates
    /// cost time (a skipped run executes inline at commit), never
    /// correctness. The default — `0.0` — admits everything.
    fn prune_probability(&self, _candidate: &Candidate) -> f64 {
        0.0
    }

    /// The authoritative commit-time decision for `candidate`. Called in
    /// round order; this is where the strategy mutates pruning state and
    /// charges model labels.
    fn decide(&mut self, candidate: &Candidate) -> Decision;

    /// Feeds a completed run back to the strategy, in commit order.
    fn observe(&mut self, observation: &Observation<'_>);

    /// Pruning statistics for the campaign result. Strategies that do not
    /// prune report zeros.
    fn pruning(&self) -> PruningCounters {
        PruningCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_hinj::FaultSpec;
    use avis_sim::{SensorInstance, SensorKind};

    fn plan() -> FaultPlan {
        FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Gps, 0),
            5.0,
        )])
    }

    #[test]
    fn candidate_constructors() {
        let c = Candidate::speculate(3, plan());
        assert_eq!(c.token(), 3);
        assert_eq!(c.speculative(), Some(&plan()));
        let s = Candidate::skip(9);
        assert_eq!(s.token(), 9);
        assert!(s.speculative().is_none());
    }

    #[test]
    fn decision_helpers_accumulate_charges() {
        let d = Decision::skip();
        assert!(d.plan.is_none());
        assert_eq!(d.labels, 0);
        let d = Decision::run(plan()).labelled(1, 10.0);
        assert_eq!(d.labels, 1);
        assert_eq!(d.cost_seconds, 10.0);
        assert!(d.plan.is_some());
        let d = Decision::skip().labelled(2, 5.0).labelled(1, 2.5);
        assert_eq!(d.labels, 3);
        assert_eq!(d.cost_seconds, 7.5);
    }
}
