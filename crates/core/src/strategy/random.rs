//! The uniformly random baseline as a [`Strategy`].

use super::{Candidate, Decision, Observation, Strategy, StrategyContext};
use crate::baselines::RandomInjection;
use avis_hinj::FaultPlan;

/// Plans drawn per round. A fixed constant — never derived from the
/// engine's parallelism — so the draw sequence consumed by the campaign
/// is identical at every worker count. Draws left over when the budget
/// runs out only advance the RNG, which is not part of the result.
const DRAW_BATCH: usize = 16;

/// Uniformly random fault injection: uniformly random instances at
/// uniformly random times, one or (with probability 0.3) two simultaneous
/// failures per plan, as the paper's "Rnd" baseline.
#[derive(Debug, Default)]
pub struct RandomStrategy {
    random: Option<RandomInjection>,
    draws: Vec<FaultPlan>,
}

impl RandomStrategy {
    /// A random strategy seeded by the campaign seed at initialisation.
    pub fn new() -> Self {
        RandomStrategy::default()
    }
}

impl Strategy for RandomStrategy {
    fn name(&self) -> &str {
        "Random"
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        self.random = Some(RandomInjection::new(
            &ctx.sensors,
            ctx.golden.duration,
            ctx.seed,
        ));
    }

    fn propose(&mut self) -> Vec<Candidate> {
        let random = self.random.as_mut().expect("strategy initialised");
        self.draws = (0..DRAW_BATCH).map(|_| random.next_plan()).collect();
        self.draws
            .iter()
            .enumerate()
            .map(|(slot, plan)| Candidate::speculate(slot as u64, plan.clone()))
            .collect()
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        Decision::run(self.draws[candidate.token() as usize].clone())
    }

    fn observe(&mut self, _observation: &Observation<'_>) {
        // Random injection ignores results.
    }
}
