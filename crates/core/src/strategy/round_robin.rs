//! A fifth built-in strategy — proof that the [`Strategy`](super::Strategy)
//! extension point carries new search orders without touching the
//! campaign engine, the checker or the pruning internals: everything this
//! file uses is public API.

use super::{Candidate, Decision, Observation, PruningCounters, Strategy, StrategyContext};
use crate::pruning::PruningState;
use avis_firmware::ModeCategory;
use avis_hinj::{FaultPlan, FaultSpec};
use avis_sim::SensorInstance;
use std::collections::BTreeMap;

/// Round-robin over operating-mode categories: visit the golden trace's
/// mode transitions grouped by category (Takeoff, Manual, Waypoint,
/// Land), cycling one anchor per category per round, and inject every
/// single-instance failure at that anchor. Where SABRE dives deep into
/// each transition before moving on, this strategy spreads the budget
/// evenly across the flight phases — useful as a coverage-first
/// comparison point, and as the template for custom strategies.
#[derive(Debug, Default)]
pub struct RoundRobinMode {
    instances: Vec<SensorInstance>,
    anchors: BTreeMap<ModeCategory, Vec<f64>>,
    cursors: BTreeMap<ModeCategory, usize>,
    rotation: usize,
    pruning: PruningState,
    round: Vec<FaultPlan>,
}

impl RoundRobinMode {
    /// An empty strategy; anchors are derived from the golden trace at
    /// campaign initialisation.
    pub fn new() -> Self {
        RoundRobinMode::default()
    }

    /// The next category, in [`ModeCategory::ALL`] rotation order, that
    /// still has unvisited anchors.
    fn next_category(&mut self) -> Option<(ModeCategory, f64)> {
        for step in 0..ModeCategory::ALL.len() {
            let category = ModeCategory::ALL[(self.rotation + step) % ModeCategory::ALL.len()];
            let cursor = self.cursors.entry(category).or_insert(0);
            if let Some(&time) = self.anchors.get(&category).and_then(|a| a.get(*cursor)) {
                *cursor += 1;
                self.rotation = (self.rotation + step + 1) % ModeCategory::ALL.len();
                return Some((category, time));
            }
        }
        None
    }
}

impl Strategy for RoundRobinMode {
    fn name(&self) -> &str {
        "Round-robin mode"
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        self.instances = ctx.sensors.instances();
        for transition in &ctx.golden.mode_transitions {
            self.anchors
                .entry(transition.mode.category())
                .or_default()
                .push(transition.time);
        }
    }

    fn propose(&mut self) -> Vec<Candidate> {
        let Some((_, time)) = self.next_category() else {
            return Vec::new();
        };
        // Speculate against a clone of the pruning state, exactly as the
        // built-in SABRE strategy does: pruning only grows, so every plan
        // `decide` admits was speculated here.
        let mut speculative_pruning = self.pruning.clone();
        self.round = self
            .instances
            .iter()
            .map(|&instance| FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]))
            .collect();
        self.round
            .iter()
            .enumerate()
            .map(|(slot, plan)| {
                if speculative_pruning.should_prune(plan) {
                    Candidate::skip(slot as u64)
                } else {
                    speculative_pruning.record_explored(plan);
                    Candidate::speculate(slot as u64, plan.clone())
                }
            })
            .collect()
    }

    fn revalidate(&self, candidate: &Candidate) -> bool {
        candidate
            .speculative()
            .map(|plan| !self.pruning.is_pruned(plan))
            .unwrap_or(true)
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        let plan = &self.round[candidate.token() as usize];
        if self.pruning.should_prune(plan) {
            return Decision::skip();
        }
        self.pruning.record_explored(plan);
        Decision::run(plan.clone())
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        if observation.is_unsafe {
            self.pruning.record_bug(&observation.result.plan);
        }
    }

    fn pruning(&self) -> PruningCounters {
        PruningCounters {
            symmetry_pruned: self.pruning.symmetry_pruned(),
            found_bug_pruned: self.pruning.found_bug_pruned(),
        }
    }
}
