//! SABRE-driven exploration as a [`Strategy`]: the Avis search order
//! (optionally filtered by the BFI model, which turns it into the
//! Stratified BFI baseline).

use super::{Candidate, Decision, Observation, PruningCounters, Strategy, StrategyContext};
use crate::baselines::BfiModel;
use crate::pruning::candidate_failure_sets;
use crate::sabre::{QueueEntry, SabreConfig, SabreQueue};
use crate::trace::Trace;
use avis_firmware::ModeCategory;
use avis_sim::SensorInstance;

/// Avis / Stratified BFI: anchor injection at the golden trace's
/// operating-mode transitions via the [`SabreQueue`], explore each
/// anchor's (symmetry-pruned) candidate failure sets, and layer further
/// failures onto bug-free runs. One round = one SABRE anchor.
#[derive(Debug)]
pub struct SabreStrategy {
    name: &'static str,
    model: Option<BfiModel>,
    candidates: Vec<Vec<SensorInstance>>,
    queue: Option<SabreQueue>,
    golden: Option<Trace>,
    anchor: Option<QueueEntry>,
    anchor_category: ModeCategory,
}

impl SabreStrategy {
    /// The Avis configuration: SABRE ordering, no learned model.
    pub fn avis() -> Self {
        SabreStrategy {
            name: "Avis",
            model: None,
            candidates: Vec::new(),
            queue: None,
            golden: None,
            anchor: None,
            anchor_category: ModeCategory::Manual,
        }
    }

    /// The Stratified BFI configuration: SABRE ordering with injection
    /// sites filtered (and budget charged) by the BFI model.
    pub fn stratified_bfi() -> Self {
        SabreStrategy {
            name: "Stratified BFI",
            model: Some(BfiModel::with_default_training()),
            ..SabreStrategy::avis()
        }
    }

    /// A Stratified BFI variant driven by a custom model.
    pub fn with_model(model: BfiModel) -> Self {
        SabreStrategy {
            name: "Stratified BFI",
            model: Some(model),
            ..SabreStrategy::avis()
        }
    }

    fn queue_mut(&mut self) -> &mut SabreQueue {
        self.queue.as_mut().expect("strategy initialised")
    }
}

impl Strategy for SabreStrategy {
    fn name(&self) -> &str {
        self.name
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        self.candidates = candidate_failure_sets(&ctx.sensors);
        let config = SabreConfig {
            horizon: ctx.golden.duration.min(ctx.sabre.horizon),
            ..ctx.sabre
        };
        self.queue = Some(SabreQueue::new(&ctx.golden.transition_times(), config));
        self.golden = Some(ctx.golden.clone());
    }

    fn propose(&mut self) -> Vec<Candidate> {
        let Some(anchor) = self.queue_mut().next_anchor() else {
            return Vec::new();
        };
        let golden = self.golden.as_ref().expect("strategy initialised");
        self.anchor_category = golden
            .mode_before(anchor.timestamp)
            .map(|m| m.category())
            .unwrap_or(ModeCategory::Manual);

        // Speculate against a clone of the pruning state: pruning only
        // ever removes more work as results arrive (`record_bug` adds bug
        // signatures, it never un-prunes), so the speculated set is a
        // superset of what `decide` will admit.
        let mut speculative_pruning = self.queue_mut().pruning().clone();
        let round = self
            .candidates
            .iter()
            .enumerate()
            .map(|(slot, set)| {
                if let Some(model) = &self.model {
                    if !model.predicts_unsafe_set(set, self.anchor_category) {
                        return Candidate::skip(slot as u64);
                    }
                }
                let plan = SabreQueue::assemble_plan(&anchor, set);
                if speculative_pruning.should_prune(&plan) {
                    return Candidate::skip(slot as u64);
                }
                speculative_pruning.record_explored(&plan);
                Candidate::speculate(slot as u64, plan)
            })
            .collect();
        self.anchor = Some(anchor);
        round
    }

    fn revalidate(&self, candidate: &Candidate) -> bool {
        match (candidate.speculative(), &self.queue) {
            (Some(plan), Some(queue)) => !queue.pruning().is_pruned(plan),
            _ => true,
        }
    }

    fn prune_probability(&self, candidate: &Candidate) -> f64 {
        match (candidate.speculative(), &self.queue) {
            (Some(plan), Some(queue)) => queue.pruning().prune_probability(plan),
            _ => 0.0,
        }
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        let set = &self.candidates[candidate.token() as usize];
        let mut decision = Decision::skip();
        if let Some(model) = &self.model {
            decision = decision.labelled(1, model.label_cost_seconds);
            if !model.predicts_unsafe_set(set, self.anchor_category) {
                return decision;
            }
        }
        let anchor = self.anchor.as_ref().expect("decide follows propose");
        let queue = self.queue.as_mut().expect("strategy initialised");
        decision.plan = queue.plan_for(anchor, set);
        decision
    }

    fn observe(&mut self, observation: &Observation<'_>) {
        if observation.is_unsafe {
            self.queue_mut().record_bug(&observation.result.plan);
        } else {
            let transitions = observation.result.trace.transition_times();
            self.queue_mut()
                .record_ok(&observation.result.plan, &transitions);
        }
    }

    fn pruning(&self) -> PruningCounters {
        match &self.queue {
            Some(queue) => PruningCounters {
                symmetry_pruned: queue.pruning().symmetry_pruned(),
                found_bug_pruned: queue.pruning().found_bug_pruned(),
            },
            None => PruningCounters::default(),
        }
    }
}
