//! The sensor-bug impact study (§III, Figure 3).
//!
//! The paper manually reviewed 394 bug reports from the ArduPilot and PX4
//! GitHub repositories (2016–2019), kept 215 after pruning, and classified
//! them by root cause, reproducibility and symptom. The raw issue corpus
//! and its manual labels are not available, so this module ships (a) the
//! classification pipeline and (b) a deterministic synthetic corpus whose
//! marginals match the published findings; the Figure-3 harness then runs
//! the pipeline over that corpus. This substitution is recorded in
//! DESIGN.md.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Root-cause classes used by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RootCause {
    /// Logically incorrect behaviour without a preceding hardware fault.
    Semantic,
    /// Incorrect memory allocation or invalid accesses.
    Memory,
    /// Triggered by a sensor fault.
    Sensor,
    /// Everything else (including concurrency bugs).
    Other,
}

impl fmt::Display for RootCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RootCause::Semantic => "Semantic",
            RootCause::Memory => "Memory",
            RootCause::Sensor => "Sensor",
            RootCause::Other => "Other",
        };
        f.write_str(s)
    }
}

/// Reproducibility classes (Figure 3B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Reproducibility {
    /// Reproducible with standard environment and hardware configuration.
    DefaultSettings,
    /// Requires a special environment (wind, humidity, …).
    CustomEnvironment,
    /// Requires a special environment and special hardware.
    CustomEnvironmentAndHardware,
}

/// Symptom classes (Figure 3C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Outcome {
    /// Crash or fly-away.
    Serious,
    /// Transient effects such as jerks during flight.
    Transient,
    /// No observable symptom.
    Asymptomatic,
}

/// One (synthetic) bug report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugReportRecord {
    /// Stable identifier within the corpus.
    pub id: u32,
    /// Which firmware the report belongs to.
    pub firmware: &'static str,
    /// Root cause.
    pub cause: RootCause,
    /// Reproducibility class.
    pub reproducibility: Reproducibility,
    /// Outcome class.
    pub outcome: Outcome,
}

/// Aggregated study statistics (the content of Figure 3 and Findings 1–3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyStatistics {
    /// Total reports analysed.
    pub total: usize,
    /// Reports per root cause.
    pub per_cause: Vec<(RootCause, usize)>,
    /// Fraction of all reports that are sensor bugs (Finding 1: ~20 %).
    pub sensor_share: f64,
    /// Fraction of crash-causing reports that are sensor bugs (~40 %).
    pub sensor_share_of_serious: f64,
    /// Fraction of sensor bugs reproducible under default settings
    /// (Finding 2: ~47 %).
    pub sensor_default_reproducible: f64,
    /// Fraction of sensor bugs with serious symptoms (Finding 3: ~34 %).
    pub sensor_serious: f64,
    /// Fraction of semantic bugs that are asymptomatic (~90 %).
    pub semantic_asymptomatic: f64,
}

/// Builds the deterministic synthetic corpus (215 reports) whose marginals
/// match the paper's published statistics.
pub fn synthetic_corpus() -> Vec<BugReportRecord> {
    let mut reports = Vec::new();
    let mut id = 0;
    let mut push = |cause: RootCause,
                    reproducibility: Reproducibility,
                    outcome: Outcome,
                    count: usize,
                    reports: &mut Vec<BugReportRecord>| {
        for _ in 0..count {
            id += 1;
            let firmware = if id % 2 == 0 { "ArduPilot" } else { "PX4" };
            reports.push(BugReportRecord {
                id,
                firmware,
                cause,
                reproducibility,
                outcome,
            });
        }
    };

    use Outcome::*;
    use Reproducibility::*;
    use RootCause::*;

    // 146 semantic bugs (68 %): overwhelmingly asymptomatic, a handful of
    // transient and serious ones.
    push(Semantic, DefaultSettings, Asymptomatic, 120, &mut reports);
    push(Semantic, CustomEnvironment, Asymptomatic, 12, &mut reports);
    push(Semantic, DefaultSettings, Transient, 5, &mut reports);
    push(Semantic, CustomEnvironment, Transient, 2, &mut reports);
    push(Semantic, DefaultSettings, Serious, 7, &mut reports);

    // 44 sensor bugs (20 %): 21 (47 %) reproducible under default settings,
    // 15 (34 %) serious, the rest split between transient and asymptomatic.
    push(Sensor, DefaultSettings, Serious, 8, &mut reports);
    push(Sensor, DefaultSettings, Transient, 8, &mut reports);
    push(Sensor, DefaultSettings, Asymptomatic, 5, &mut reports);
    push(Sensor, CustomEnvironment, Serious, 5, &mut reports);
    push(Sensor, CustomEnvironment, Transient, 6, &mut reports);
    push(Sensor, CustomEnvironment, Asymptomatic, 4, &mut reports);
    push(
        Sensor,
        CustomEnvironmentAndHardware,
        Serious,
        2,
        &mut reports,
    );
    push(
        Sensor,
        CustomEnvironmentAndHardware,
        Transient,
        4,
        &mut reports,
    );
    push(
        Sensor,
        CustomEnvironmentAndHardware,
        Asymptomatic,
        2,
        &mut reports,
    );

    // 12 memory bugs and 13 "other" bugs.
    push(Memory, DefaultSettings, Transient, 6, &mut reports);
    push(Memory, DefaultSettings, Serious, 3, &mut reports);
    push(Memory, CustomEnvironment, Asymptomatic, 3, &mut reports);
    push(Other, DefaultSettings, Serious, 5, &mut reports);
    push(Other, CustomEnvironment, Transient, 5, &mut reports);
    push(
        Other,
        CustomEnvironmentAndHardware,
        Asymptomatic,
        3,
        &mut reports,
    );

    reports
}

/// Runs the classification pipeline over a corpus.
pub fn analyse(reports: &[BugReportRecord]) -> StudyStatistics {
    let total = reports.len();
    let count_cause = |cause: RootCause| reports.iter().filter(|r| r.cause == cause).count();
    let per_cause = vec![
        (RootCause::Semantic, count_cause(RootCause::Semantic)),
        (RootCause::Memory, count_cause(RootCause::Memory)),
        (RootCause::Sensor, count_cause(RootCause::Sensor)),
        (RootCause::Other, count_cause(RootCause::Other)),
    ];
    let sensor: Vec<&BugReportRecord> = reports
        .iter()
        .filter(|r| r.cause == RootCause::Sensor)
        .collect();
    let serious: Vec<&BugReportRecord> = reports
        .iter()
        .filter(|r| r.outcome == Outcome::Serious)
        .collect();
    let semantic: Vec<&BugReportRecord> = reports
        .iter()
        .filter(|r| r.cause == RootCause::Semantic)
        .collect();

    let frac = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };

    StudyStatistics {
        total,
        sensor_share: frac(sensor.len(), total),
        sensor_share_of_serious: frac(
            serious
                .iter()
                .filter(|r| r.cause == RootCause::Sensor)
                .count(),
            serious.len(),
        ),
        sensor_default_reproducible: frac(
            sensor
                .iter()
                .filter(|r| r.reproducibility == Reproducibility::DefaultSettings)
                .count(),
            sensor.len(),
        ),
        sensor_serious: frac(
            sensor
                .iter()
                .filter(|r| r.outcome == Outcome::Serious)
                .count(),
            sensor.len(),
        ),
        semantic_asymptomatic: frac(
            semantic
                .iter()
                .filter(|r| r.outcome == Outcome::Asymptomatic)
                .count(),
            semantic.len(),
        ),
        per_cause,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_215_reports() {
        let corpus = synthetic_corpus();
        assert_eq!(corpus.len(), 215);
        // Deterministic: building it twice gives the same corpus.
        assert_eq!(corpus, synthetic_corpus());
        // Ids are unique.
        let mut ids: Vec<u32> = corpus.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 215);
    }

    #[test]
    fn statistics_match_the_papers_findings() {
        let stats = analyse(&synthetic_corpus());
        assert_eq!(stats.total, 215);
        // Finding 1: sensor bugs ≈ 20 % of reports, semantic ≈ 68 %.
        assert!(
            (stats.sensor_share - 0.20).abs() < 0.02,
            "{}",
            stats.sensor_share
        );
        let semantic = stats
            .per_cause
            .iter()
            .find(|(c, _)| *c == RootCause::Semantic)
            .map(|(_, n)| *n)
            .unwrap();
        assert!((semantic as f64 / 215.0 - 0.68).abs() < 0.02);
        // Finding 1: sensor bugs ≈ 40 % of crash-causing reports.
        assert!(
            (stats.sensor_share_of_serious - 0.40).abs() < 0.12,
            "{}",
            stats.sensor_share_of_serious
        );
        // Finding 2: ≈ 47 % reproducible under default settings.
        assert!(
            (stats.sensor_default_reproducible - 0.47).abs() < 0.03,
            "{}",
            stats.sensor_default_reproducible
        );
        // Finding 3: ≈ 34 % of sensor bugs are serious.
        assert!(
            (stats.sensor_serious - 0.34).abs() < 0.03,
            "{}",
            stats.sensor_serious
        );
        // Semantic bugs are ≈ 90 % asymptomatic.
        assert!((stats.semantic_asymptomatic - 0.90).abs() < 0.03);
    }

    #[test]
    fn analyse_handles_empty_corpus() {
        let stats = analyse(&[]);
        assert_eq!(stats.total, 0);
        assert_eq!(stats.sensor_share, 0.0);
        assert_eq!(stats.sensor_serious, 0.0);
    }

    #[test]
    fn root_cause_display() {
        assert_eq!(RootCause::Sensor.to_string(), "Sensor");
        assert_eq!(RootCause::Semantic.to_string(), "Semantic");
    }
}
