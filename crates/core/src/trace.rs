//! Execution traces: the per-run record the invariant monitor reasons
//! about.
//!
//! The paper represents the vehicle's state at time `t` as the tuple
//! `(P, α, M)` — position, acceleration and operating mode (§IV.C.2).
//! A [`Trace`] is a uniformly sampled sequence of those tuples plus the
//! run-level outcomes (collision, workload status, mode transitions)
//! needed for safety checking and reporting.

use avis_firmware::OperatingMode;
use avis_hinj::ModeCode;
use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use avis_sim::{Collision, Vec3};
use avis_workload::WorkloadStatus;
use serde::{Deserialize, Serialize};

/// One sampled state tuple `(P, α, M)` at a fixed time offset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateSample {
    /// Time offset from the start of the run (s).
    pub time: f64,
    /// Vehicle position (m).
    pub position: Vec3,
    /// Vehicle acceleration (m/s²).
    pub acceleration: Vec3,
    /// Operating mode at the sample time.
    pub mode: OperatingMode,
}

impl StateSample {
    /// Serialise the sample.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.f64(self.time);
        self.position.encode(w);
        self.acceleration.encode(w);
        self.mode.encode(w);
    }

    /// Decode a sample previously written by [`StateSample::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<StateSample> {
        Ok(StateSample {
            time: r.f64()?,
            position: Vec3::decode(r)?,
            acceleration: Vec3::decode(r)?,
            mode: OperatingMode::decode(r)?,
        })
    }
}

/// A mode transition observed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeTransition {
    /// Time of the transition (s).
    pub time: f64,
    /// The mode entered.
    pub mode: OperatingMode,
}

/// A protocol-level anomaly observed on the GCS ↔ vehicle link during a
/// run, recorded by the runner's protocol tracker and mapped to
/// violations by the invariant monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolEvent {
    /// Time of the observation (s).
    pub time: f64,
    /// What was observed.
    pub kind: ProtocolEventKind,
}

/// The kinds of protocol anomalies the runner tracks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProtocolEventKind {
    /// The GCS observed the vehicle disarm (heartbeat armed → disarmed)
    /// while telemetry showed it airborne — an in-air reboot/disarm.
    InAirDisarm {
        /// Last telemetered altitude before the disarm (m).
        altitude: f64,
    },
    /// A command the workload sent was never acknowledged within the
    /// liveness window.
    AckTimeout {
        /// Display name of the unacknowledged command.
        command: String,
        /// Time the command was sent (s).
        sent_at: f64,
        /// The liveness window that elapsed without an ack (s).
        window: f64,
    },
    /// After an accepted mission upload, the mission stored on the
    /// vehicle differs from the one the workload sent (item aliasing
    /// from corrupted or duplicated upload frames).
    MissionAliasing {
        /// Items the workload sent.
        expected_items: usize,
        /// Items (of those comparable) that match on the vehicle.
        matching_items: usize,
    },
}

impl ProtocolEvent {
    /// Serialise the event.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.f64(self.time);
        self.kind.encode(w);
    }

    /// Decode an event previously written by [`ProtocolEvent::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<ProtocolEvent> {
        Ok(ProtocolEvent {
            time: r.f64()?,
            kind: ProtocolEventKind::decode(r)?,
        })
    }
}

impl ProtocolEventKind {
    /// Serialise the kind as a stable one-byte tag plus payload.
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            ProtocolEventKind::InAirDisarm { altitude } => {
                w.u8(0);
                w.f64(*altitude);
            }
            ProtocolEventKind::AckTimeout {
                command,
                sent_at,
                window,
            } => {
                w.u8(1);
                w.str(command);
                w.f64(*sent_at);
                w.f64(*window);
            }
            ProtocolEventKind::MissionAliasing {
                expected_items,
                matching_items,
            } => {
                w.u8(2);
                w.usize(*expected_items);
                w.usize(*matching_items);
            }
        }
    }

    /// Decode a kind previously written by [`ProtocolEventKind::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<ProtocolEventKind> {
        Ok(match r.u8()? {
            0 => ProtocolEventKind::InAirDisarm { altitude: r.f64()? },
            1 => ProtocolEventKind::AckTimeout {
                command: r.str()?,
                sent_at: r.f64()?,
                window: r.f64()?,
            },
            2 => ProtocolEventKind::MissionAliasing {
                expected_items: r.usize()?,
                matching_items: r.usize()?,
            },
            _ => return Err(CodecError::Malformed("protocol event tag")),
        })
    }
}

/// The complete record of one simulated test run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Sampling interval (s).
    pub sample_interval: f64,
    /// The sampled state tuples.
    pub samples: Vec<StateSample>,
    /// Every operating-mode transition, in order.
    pub mode_transitions: Vec<ModeTransition>,
    /// The first physical collision, if one occurred.
    pub collision: Option<Collision>,
    /// Fence-violation count observed during the run.
    pub fence_violations: usize,
    /// Terminal workload status.
    pub workload_status: WorkloadStatus,
    /// Total simulated duration (s).
    pub duration: f64,
    /// Protocol anomalies observed on the link, in time order (empty for
    /// runs without link-fault instrumentation).
    #[serde(default)]
    pub protocol: Vec<ProtocolEvent>,
}

impl Trace {
    /// Slack subtracted when looking up "the mode active just before `t`":
    /// mode transitions are recorded at the same timestamp the anchored
    /// injection uses, so an exact lookup at `t` would return the mode
    /// *entered* at the transition rather than the mode the failure was
    /// injected into.
    pub const MODE_LOOKUP_EPSILON: f64 = 0.05;

    /// The operating mode active just before time `t` (see
    /// [`Trace::MODE_LOOKUP_EPSILON`]); the mode a failure injected at `t`
    /// lands in.
    pub fn mode_before(&self, t: f64) -> Option<OperatingMode> {
        self.mode_at((t - Self::MODE_LOOKUP_EPSILON).max(0.0))
    }

    /// The sample closest to time `t`, clamping past the end (the paper
    /// repeats the last state of shorter runs so every run has the same
    /// duration).
    pub fn sample_at(&self, t: f64) -> Option<&StateSample> {
        if self.samples.is_empty() {
            return None;
        }
        let idx = (t / self.sample_interval).round() as usize;
        Some(&self.samples[idx.min(self.samples.len() - 1)])
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Times at which the operating mode changed (the injection anchors
    /// SABRE uses).
    pub fn transition_times(&self) -> Vec<f64> {
        self.mode_transitions.iter().map(|t| t.time).collect()
    }

    /// Maximum altitude reached during the run (m).
    pub fn max_altitude(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.position.z)
            .fold(0.0, f64::max)
    }

    /// The altitude time-series `(time, altitude)` — used by the Figure 9
    /// and Figure 10 case-study harnesses.
    pub fn altitude_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.time, s.position.z))
            .collect()
    }

    /// The operating mode active at time `t`, according to the transition
    /// log (more precise than the sampled mode).
    pub fn mode_at(&self, t: f64) -> Option<OperatingMode> {
        let mut current = None;
        for tr in &self.mode_transitions {
            if tr.time <= t {
                current = Some(tr.mode);
            } else {
                break;
            }
        }
        current
    }
}

/// Converts a recorded [`ModeCode`] transition back into an operating mode
/// transition (unknown codes are dropped).
pub fn transition_from_code(time: f64, code: ModeCode) -> Option<ModeTransition> {
    OperatingMode::from_code(code).map(|mode| ModeTransition { time, mode })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, alt: f64, mode: OperatingMode) -> StateSample {
        StateSample {
            time: t,
            position: Vec3::new(0.0, 0.0, alt),
            acceleration: Vec3::ZERO,
            mode,
        }
    }

    fn simple_trace() -> Trace {
        Trace {
            sample_interval: 0.5,
            samples: vec![
                sample(0.0, 0.0, OperatingMode::PreFlight),
                sample(0.5, 2.0, OperatingMode::Takeoff),
                sample(1.0, 5.0, OperatingMode::Takeoff),
                sample(1.5, 8.0, OperatingMode::Auto { leg: 1 }),
            ],
            mode_transitions: vec![
                ModeTransition {
                    time: 0.0,
                    mode: OperatingMode::PreFlight,
                },
                ModeTransition {
                    time: 0.3,
                    mode: OperatingMode::Takeoff,
                },
                ModeTransition {
                    time: 1.2,
                    mode: OperatingMode::Auto { leg: 1 },
                },
            ],
            collision: None,
            fence_violations: 0,
            workload_status: WorkloadStatus::Passed,
            duration: 1.5,
            protocol: Vec::new(),
        }
    }

    #[test]
    fn sample_at_rounds_and_clamps() {
        let trace = simple_trace();
        assert_eq!(trace.sample_at(0.0).unwrap().time, 0.0);
        assert_eq!(trace.sample_at(0.6).unwrap().time, 0.5);
        assert_eq!(trace.sample_at(0.8).unwrap().time, 1.0);
        // Past the end: the last sample is repeated.
        assert_eq!(trace.sample_at(10.0).unwrap().time, 1.5);
        assert!(!trace.is_empty());
        assert_eq!(trace.len(), 4);
    }

    #[test]
    fn empty_trace_sample_is_none() {
        let trace = Trace {
            sample_interval: 0.5,
            samples: Vec::new(),
            mode_transitions: Vec::new(),
            collision: None,
            fence_violations: 0,
            workload_status: WorkloadStatus::Running,
            duration: 0.0,
            protocol: Vec::new(),
        };
        assert!(trace.sample_at(0.0).is_none());
        assert!(trace.is_empty());
    }

    #[test]
    fn transition_times_and_mode_at() {
        let trace = simple_trace();
        assert_eq!(trace.transition_times(), vec![0.0, 0.3, 1.2]);
        assert_eq!(trace.mode_at(0.1), Some(OperatingMode::PreFlight));
        assert_eq!(trace.mode_at(0.5), Some(OperatingMode::Takeoff));
        assert_eq!(trace.mode_at(5.0), Some(OperatingMode::Auto { leg: 1 }));
    }

    #[test]
    fn mode_before_steps_back_by_the_epsilon() {
        let trace = simple_trace();
        // An injection anchored exactly at the 1.2 s transition lands in
        // the mode active *before* the transition.
        assert_eq!(trace.mode_at(1.2), Some(OperatingMode::Auto { leg: 1 }));
        assert_eq!(trace.mode_before(1.2), Some(OperatingMode::Takeoff));
        // Near zero the lookup clamps instead of going negative.
        assert_eq!(trace.mode_before(0.0), Some(OperatingMode::PreFlight));
    }

    #[test]
    fn altitude_helpers() {
        let trace = simple_trace();
        assert_eq!(trace.max_altitude(), 8.0);
        let series = trace.altitude_series();
        assert_eq!(series.len(), 4);
        assert_eq!(series[3], (1.5, 8.0));
    }

    #[test]
    fn transition_from_code_round_trip() {
        let tr = transition_from_code(2.0, OperatingMode::Land.code()).unwrap();
        assert_eq!(tr.mode, OperatingMode::Land);
        assert_eq!(tr.time, 2.0);
        assert!(transition_from_code(0.0, ModeCode(9999)).is_none());
    }
}
