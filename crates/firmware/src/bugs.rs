//! The injectable sensor-bug catalog.
//!
//! The paper's evaluation revolves around fifteen concrete firmware
//! defects: the ten previously-unknown bugs Avis discovered (Table II) and
//! the five previously-reported bugs that were re-inserted to estimate the
//! false-negative rate (Table V). We cannot ship ArduPilot or PX4, so each
//! defect is re-expressed as a toggleable change to the equivalent
//! fault-handling logic in this firmware substrate. What matters for the
//! reproduction is preserved exactly: the affected firmware, the sensor
//! whose failure triggers the defect, the operating-mode window in which
//! it manifests, and the resulting symptom class.
//!
//! A [`BugSet`] holds which defects are compiled into a firmware instance.
//! An empty set models a (hypothetical) fixed code base; the full unknown
//! set models the "current code base" the paper checked; individual known
//! bugs are re-inserted one at a time for the Table V experiment.

use crate::modes::ModeCategory;
use crate::params::FirmwareProfile;
use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use avis_sim::SensorKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Symptom classes used throughout the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BugSymptom {
    /// The vehicle collides with the ground or an obstacle.
    Crash,
    /// The vehicle stops following its mission and departs.
    FlyAway,
    /// The vehicle fails to take off / make progress.
    TakeoffFailure,
}

impl fmt::Display for BugSymptom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugSymptom::Crash => "Crash",
            BugSymptom::FlyAway => "Fly Away",
            BugSymptom::TakeoffFailure => "Takeoff Failure",
        };
        f.write_str(s)
    }
}

/// Identifier of one injectable defect, named after the paper's report ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BugId {
    // Previously-unknown bugs (Table II).
    Apm16020,
    Apm16021,
    Apm16027,
    Apm16967,
    Apm16682,
    Apm16953,
    Px417046,
    Px417057,
    Px417192,
    Px417181,
    // Re-inserted known bugs (Table V).
    Apm4455,
    Apm4679,
    Apm5428,
    Apm9349,
    Px413291,
    // Seeded protocol-level defects (PR 6). Not part of the paper's
    // sensor-bug catalog — deliberately excluded from `UNKNOWN`, `KNOWN`
    // and `all()` so the Table II/V accounting stays exact — and only
    // reachable through link-fault campaigns.
    ProtoDoubleArm,
    // Seeded crash defect (PR 8): a firmware panic on a takeoff command
    // accepted against a stale position estimate. Same exclusion rules as
    // `ProtoDoubleArm`; exercises the checker's panic containment and is
    // only reachable through a sensor fault combined with a link fault.
    ProtoPanicOnStaleEkf,
}

impl BugId {
    /// The ten previously-unknown bugs of Table II, in table order.
    pub const UNKNOWN: [BugId; 10] = [
        BugId::Apm16020,
        BugId::Apm16021,
        BugId::Apm16027,
        BugId::Apm16967,
        BugId::Apm16682,
        BugId::Apm16953,
        BugId::Px417046,
        BugId::Px417057,
        BugId::Px417192,
        BugId::Px417181,
    ];

    /// The five re-inserted known bugs of Table V, in table order.
    pub const KNOWN: [BugId; 5] = [
        BugId::Apm4455,
        BugId::Apm4679,
        BugId::Apm5428,
        BugId::Apm9349,
        BugId::Px413291,
    ];

    /// Every bug in the catalog.
    pub fn all() -> Vec<BugId> {
        let mut v = Self::UNKNOWN.to_vec();
        v.extend_from_slice(&Self::KNOWN);
        v
    }

    /// The report identifier used in the paper's tables.
    pub fn report_id(self) -> &'static str {
        match self {
            BugId::Apm16020 => "APM-16020",
            BugId::Apm16021 => "APM-16021",
            BugId::Apm16027 => "APM-16027",
            BugId::Apm16967 => "APM-16967",
            BugId::Apm16682 => "APM-16682",
            BugId::Apm16953 => "APM-16953",
            BugId::Px417046 => "PX4-17046",
            BugId::Px417057 => "PX4-17057",
            BugId::Px417192 => "PX4-17192",
            BugId::Px417181 => "PX4-17181",
            BugId::Apm4455 => "APM-4455",
            BugId::Apm4679 => "APM-4679",
            BugId::Apm5428 => "APM-5428",
            BugId::Apm9349 => "APM-9349",
            BugId::Px413291 => "PX4-13291",
            BugId::ProtoDoubleArm => "PROTO-101",
            BugId::ProtoPanicOnStaleEkf => "PROTO-102",
        }
    }

    /// Serialises the id for the persistent snapshot store. The tags are
    /// stable across catalog reorderings — new bugs must append new tags.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u8(match self {
            BugId::Apm16020 => 0,
            BugId::Apm16021 => 1,
            BugId::Apm16027 => 2,
            BugId::Apm16967 => 3,
            BugId::Apm16682 => 4,
            BugId::Apm16953 => 5,
            BugId::Px417046 => 6,
            BugId::Px417057 => 7,
            BugId::Px417192 => 8,
            BugId::Px417181 => 9,
            BugId::Apm4455 => 10,
            BugId::Apm4679 => 11,
            BugId::Apm5428 => 12,
            BugId::Apm9349 => 13,
            BugId::Px413291 => 14,
            BugId::ProtoDoubleArm => 15,
            BugId::ProtoPanicOnStaleEkf => 16,
        });
    }

    /// Reads an id written by [`BugId::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        Ok(match r.u8()? {
            0 => BugId::Apm16020,
            1 => BugId::Apm16021,
            2 => BugId::Apm16027,
            3 => BugId::Apm16967,
            4 => BugId::Apm16682,
            5 => BugId::Apm16953,
            6 => BugId::Px417046,
            7 => BugId::Px417057,
            8 => BugId::Px417192,
            9 => BugId::Px417181,
            10 => BugId::Apm4455,
            11 => BugId::Apm4679,
            12 => BugId::Apm5428,
            13 => BugId::Apm9349,
            14 => BugId::Px413291,
            15 => BugId::ProtoDoubleArm,
            16 => BugId::ProtoPanicOnStaleEkf,
            _ => return Err(CodecError::Malformed("bug id tag")),
        })
    }

    /// Structured description of the defect (firmware, symptom, trigger).
    pub fn info(self) -> BugInfo {
        use BugSymptom::*;
        use FirmwareProfile::*;
        use ModeCategory::*;
        use SensorKind::*;
        match self {
            BugId::Apm16020 => BugInfo::new(
                self,
                ArduPilotLike,
                FlyAway,
                Gps,
                Takeoff,
                "Takeoff -> Autopilot",
                "GPS failover immediately after entering the mission skips the \
                 position-loss failsafe; navigation continues on a stale, drifting \
                 dead-reckoned position estimate.",
                false,
            ),
            BugId::Apm16021 => BugInfo::new(
                self,
                ArduPilotLike,
                Crash,
                Accelerometer,
                Takeoff,
                "Takeoff -> Waypoint 1",
                "An accelerometer failure during the climb leaves the vertical \
                 estimator extrapolating the last climb acceleration; the firmware \
                 overshoots, then lands using the inflated altitude estimate and \
                 descends into the ground.",
                false,
            ),
            BugId::Apm16027 => BugInfo::new(
                self,
                ArduPilotLike,
                FlyAway,
                Barometer,
                Takeoff,
                "Pre-Flight -> Takeoff",
                "A barometer failure before takeoff freezes the altitude reference; \
                 the reached-target-altitude check never passes and the vehicle keeps \
                 climbing.",
                false,
            ),
            BugId::Apm16967 => BugInfo::new(
                self,
                ArduPilotLike,
                Crash,
                Compass,
                Waypoint,
                "Waypoint 1 -> Waypoint 2",
                "A compass failure between waypoints freezes the heading estimate; \
                 after the land fail-safe engages, a late state-estimate reset \
                 commands a fast descent into the ground.",
                false,
            ),
            BugId::Apm16682 => BugInfo::new(
                self,
                ArduPilotLike,
                Crash,
                Accelerometer,
                Land,
                "Return To Launch -> Land",
                "An IMU failure in the final metres of landing triggers the \
                 GPS-driven return-home fail-safe; GPS altitude is too coarse to \
                 guide the manoeuvre at low altitude and the vehicle descends hard \
                 into the ground (the paper's Figure 1).",
                false,
            ),
            BugId::Apm16953 => BugInfo::new(
                self,
                ArduPilotLike,
                Crash,
                Gyroscope,
                Land,
                "Return to Launch -> Land",
                "A gyroscope failure during the landing sequence removes rate \
                 damping; the landing controller keeps full gains and descends \
                 far faster than the touchdown limit.",
                false,
            ),
            BugId::Px417046 => BugInfo::new(
                self,
                Px4Like,
                FlyAway,
                Gyroscope,
                Waypoint,
                "Waypoint 3 -> Return To Launch",
                "A gyroscope failure at the RTL transition freezes the heading used \
                 to steer home; the vehicle accelerates away from the launch point.",
                false,
            ),
            BugId::Px417057 => BugInfo::new(
                self,
                Px4Like,
                Crash,
                Gyroscope,
                Takeoff,
                "Pre-Flight -> Takeoff",
                "A gyroscope failure before takeoff is not caught by the arming \
                 checks; the unstabilised climb tips over and the tip-over protection \
                 cuts the motors in the air.",
                false,
            ),
            BugId::Px417192 => BugInfo::new(
                self,
                Px4Like,
                TakeoffFailure,
                Compass,
                Takeoff,
                "Pre-Flight -> Takeoff",
                "A compass failure before takeoff leaves heading alignment pending \
                 forever; the climb is capped a metre off the ground and the mission \
                 never progresses.",
                false,
            ),
            BugId::Px417181 => BugInfo::new(
                self,
                Px4Like,
                TakeoffFailure,
                Barometer,
                Takeoff,
                "Pre-Flight -> Takeoff",
                "A barometer failure before takeoff leaves the altitude reference \
                 uninitialised; the throttle never leaves the spool-up level and the \
                 vehicle stays on the ground.",
                false,
            ),
            BugId::Apm4455 => BugInfo::new(
                self,
                ArduPilotLike,
                FlyAway,
                Gps,
                Manual,
                "Position hold",
                "A GPS failure while holding position keeps the position controller \
                 engaged against a drifting dead-reckoned estimate.",
                false,
            ),
            BugId::Apm4679 => BugInfo::new(
                self,
                ArduPilotLike,
                Crash,
                Accelerometer,
                Waypoint,
                "Between waypoints",
                "An accelerometer failure mid-mission corrupts the climb-rate \
                 estimate and the altitude controller descends into the ground.",
                false,
            ),
            BugId::Apm5428 => BugInfo::new(
                self,
                ArduPilotLike,
                Crash,
                Barometer,
                Land,
                "Landing",
                "A barometer failure during landing leaves the final-approach logic \
                 using the pre-failure descent rate all the way to the ground.",
                false,
            ),
            BugId::Apm9349 => BugInfo::new(
                self,
                ArduPilotLike,
                FlyAway,
                Compass,
                Waypoint,
                "Takeoff -> Autopilot",
                "A compass failure as the mission starts yields a mirrored heading \
                 frame; the vehicle flies away from its first waypoint.",
                false,
            ),
            BugId::Px413291 => BugInfo::new(
                self,
                Px4Like,
                FlyAway,
                Battery,
                Waypoint,
                "Battery failsafe without local position",
                "When the battery drops to the failsafe level while the local \
                 position is unavailable, the return-to-launch action is engaged \
                 without a position estimate and the vehicle departs (requires a \
                 GPS failure followed by a battery failure).",
                true,
            ),
            BugId::ProtoDoubleArm => BugInfo::new(
                self,
                ArduPilotLike,
                Crash,
                // Not a sensor bug: the trigger is a duplicated ArmDisarm
                // on the command link, which the sensor-fault model cannot
                // express. The sensor field is a placeholder required by
                // the table schema.
                Gps,
                Waypoint,
                "Duplicated ArmDisarm while armed",
                "The arm-command handler does not treat an arm request as \
                 idempotent: a duplicated (or storm-replayed) ArmDisarm{arm} \
                 received while already armed toggles the motors off and drops \
                 the firmware back to pre-flight mid-air, acknowledging the \
                 command as accepted. Only reachable by duplicating or \
                 storming GCS commands on the link.",
                false,
            ),
            BugId::ProtoPanicOnStaleEkf => BugInfo::new(
                self,
                ArduPilotLike,
                Crash,
                Gps,
                Takeoff,
                "Takeoff commanded on a stale position estimate",
                "The takeoff-command handler asserts (and aborts) instead of \
                 rejecting when the command arrives while the position \
                 estimate is already stale. Reaching the handler in that \
                 state needs a GPS failure that lands between arming and \
                 the mode change — only a delayed command link opens that \
                 window, so the defect is invisible to pure sensor-fault \
                 campaigns and manifests as a firmware crash (process \
                 abort), not a flight symptom.",
                true,
            ),
        }
    }

    /// Whether this defect exists in the given firmware profile.
    pub fn applies_to(self, profile: FirmwareProfile) -> bool {
        self.info().firmware == profile
    }
}

impl fmt::Display for BugId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.report_id())
    }
}

/// Structured metadata about one defect (the row content of Tables II/V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugInfo {
    /// The defect identifier.
    pub id: BugId,
    /// The firmware stack the defect belongs to.
    pub firmware: FirmwareProfile,
    /// The symptom class the paper reports.
    pub symptom: BugSymptom,
    /// The sensor whose failure triggers the defect.
    pub sensor: SensorKind,
    /// The coarse mode category of the triggering window (Table IV axis).
    pub window_category: ModeCategory,
    /// The "failure starting moment" string from the paper's table.
    pub window_description: &'static str,
    /// One-paragraph description of the defect mechanism in this substrate.
    pub mechanism: &'static str,
    /// Whether triggering requires more than one sensor failure.
    pub requires_multiple_failures: bool,
}

impl BugInfo {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: BugId,
        firmware: FirmwareProfile,
        symptom: BugSymptom,
        sensor: SensorKind,
        window_category: ModeCategory,
        window_description: &'static str,
        mechanism: &'static str,
        requires_multiple_failures: bool,
    ) -> Self {
        BugInfo {
            id,
            firmware,
            symptom,
            sensor,
            window_category,
            window_description,
            mechanism,
            requires_multiple_failures,
        }
    }
}

/// The set of defects compiled into a firmware instance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugSet {
    enabled: BTreeSet<BugId>,
}

impl BugSet {
    /// No defects: a fully fixed code base.
    pub fn none() -> Self {
        BugSet::default()
    }

    /// The "current code base" of the paper: every previously-unknown bug
    /// that applies to the given profile.
    pub fn current_code_base(profile: FirmwareProfile) -> Self {
        BugSet {
            enabled: BugId::UNKNOWN
                .iter()
                .copied()
                .filter(|b| b.applies_to(profile))
                .collect(),
        }
    }

    /// A set containing exactly the given defects.
    pub fn with_bugs<I: IntoIterator<Item = BugId>>(bugs: I) -> Self {
        BugSet {
            enabled: bugs.into_iter().collect(),
        }
    }

    /// A set containing a single defect (the Table V re-insertion setup).
    pub fn only(bug: BugId) -> Self {
        BugSet::with_bugs([bug])
    }

    /// Enables a defect.
    pub fn enable(&mut self, bug: BugId) {
        self.enabled.insert(bug);
    }

    /// Disables a defect.
    pub fn disable(&mut self, bug: BugId) {
        self.enabled.remove(&bug);
    }

    /// Whether the defect is present.
    pub fn is_enabled(&self, bug: BugId) -> bool {
        self.enabled.contains(&bug)
    }

    /// Iterates over the enabled defects.
    pub fn iter(&self) -> impl Iterator<Item = BugId> + '_ {
        self.enabled.iter().copied()
    }

    /// Serialises the set for the persistent snapshot store.
    pub fn encode(&self, w: &mut ByteWriter) {
        let bugs: Vec<BugId> = self.iter().collect();
        w.seq(&bugs, |w, b| b.encode(w));
    }

    /// Reads a set written by [`BugSet::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        Ok(BugSet::with_bugs(r.seq(BugId::decode)?))
    }

    /// Number of enabled defects.
    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// Returns `true` if no defects are enabled.
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }
}

impl fmt::Display for BugSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(no injected bugs)");
        }
        let names: Vec<&str> = self.iter().map(|b| b.report_id()).collect();
        f.write_str(&names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sizes_match_paper() {
        assert_eq!(BugId::UNKNOWN.len(), 10);
        assert_eq!(BugId::KNOWN.len(), 5);
        assert_eq!(BugId::all().len(), 15);
        // 6 unknown ArduPilot bugs and 4 unknown PX4 bugs (paper §VI.A).
        let apm = BugId::UNKNOWN
            .iter()
            .filter(|b| b.applies_to(FirmwareProfile::ArduPilotLike))
            .count();
        let px4 = BugId::UNKNOWN
            .iter()
            .filter(|b| b.applies_to(FirmwareProfile::Px4Like))
            .count();
        assert_eq!(apm, 6);
        assert_eq!(px4, 4);
    }

    #[test]
    fn report_ids_are_unique() {
        let mut ids: Vec<&str> = BugId::all().iter().map(|b| b.report_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15);
    }

    #[test]
    fn table_ii_symptoms_match_paper() {
        use BugSymptom::*;
        let expected = [
            (BugId::Apm16020, FlyAway),
            (BugId::Apm16021, Crash),
            (BugId::Apm16027, FlyAway),
            (BugId::Apm16967, Crash),
            (BugId::Apm16682, Crash),
            (BugId::Apm16953, Crash),
            (BugId::Px417046, FlyAway),
            (BugId::Px417057, Crash),
            (BugId::Px417192, TakeoffFailure),
            (BugId::Px417181, TakeoffFailure),
        ];
        for (bug, symptom) in expected {
            assert_eq!(bug.info().symptom, symptom, "{bug}");
        }
    }

    #[test]
    fn table_ii_sensors_match_paper() {
        use SensorKind::*;
        let expected = [
            (BugId::Apm16020, Gps),
            (BugId::Apm16021, Accelerometer),
            (BugId::Apm16027, Barometer),
            (BugId::Apm16967, Compass),
            (BugId::Apm16682, Accelerometer),
            (BugId::Apm16953, Gyroscope),
            (BugId::Px417046, Gyroscope),
            (BugId::Px417057, Gyroscope),
            (BugId::Px417192, Compass),
            (BugId::Px417181, Barometer),
        ];
        for (bug, sensor) in expected {
            assert_eq!(bug.info().sensor, sensor, "{bug}");
        }
    }

    #[test]
    fn only_px4_13291_requires_multiple_failures() {
        for bug in BugId::all() {
            let multi = bug.info().requires_multiple_failures;
            assert_eq!(multi, bug == BugId::Px413291, "{bug}");
        }
    }

    #[test]
    fn current_code_base_filters_by_profile() {
        let apm = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
        assert_eq!(apm.len(), 6);
        assert!(apm.is_enabled(BugId::Apm16682));
        assert!(!apm.is_enabled(BugId::Px417057));
        assert!(
            !apm.is_enabled(BugId::Apm4455),
            "known bugs are not in the current code base"
        );

        let px4 = BugSet::current_code_base(FirmwareProfile::Px4Like);
        assert_eq!(px4.len(), 4);
        assert!(px4.is_enabled(BugId::Px417181));
    }

    #[test]
    fn bug_set_operations() {
        let mut set = BugSet::none();
        assert!(set.is_empty());
        set.enable(BugId::Apm4455);
        set.enable(BugId::Apm4455);
        assert_eq!(set.len(), 1);
        assert!(set.is_enabled(BugId::Apm4455));
        set.disable(BugId::Apm4455);
        assert!(set.is_empty());
        let only = BugSet::only(BugId::Px413291);
        assert_eq!(only.iter().collect::<Vec<_>>(), vec![BugId::Px413291]);
        assert_eq!(BugSet::none().to_string(), "(no injected bugs)");
        assert!(only.to_string().contains("PX4-13291"));
    }

    #[test]
    fn bug_info_descriptions_are_nonempty() {
        for bug in BugId::all() {
            let info = bug.info();
            assert!(!info.mechanism.is_empty());
            assert!(!info.window_description.is_empty());
            assert_eq!(info.id, bug);
        }
    }
}
