//! Runtime behaviour of the injected defects.
//!
//! [`crate::bugs`] describes *what* each bug is (its trigger sensor, mode
//! window and symptom); this module implements *how* an enabled bug
//! corrupts the firmware's behaviour once its trigger condition is met.
//! The [`DefectEngine`] is consulted once per control step and produces a
//! set of [`DefectOverrides`] that the main loop applies on top of the
//! correct behaviour: forcing a mode, replacing the navigation setpoint,
//! suppressing a failsafe, or cutting the motors.
//!
//! Each defect is written so that:
//!
//! - it only activates when its triggering sensor failure happens inside
//!   its operating-mode window (this is what makes the bugs *timing
//!   sensitive* and hard for unstratified search to find), and
//! - once active it drives the vehicle into the symptom the paper reports
//!   (crash, fly-away or takeoff failure).

use crate::bugs::{BugId, BugSet};
use crate::estimator::EstimatorState;
use crate::frontend::SensorHealth;
use crate::modes::OperatingMode;
use crate::nav::Setpoint;
use crate::params::FirmwareProfile;
use avis_sim::codec::{ByteReader, ByteWriter, CodecResult};
use avis_sim::{SensorKind, Vec3};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything a defect needs to decide whether it triggers this step.
#[derive(Debug, Clone, Copy)]
pub struct DefectContext<'a> {
    /// Current operating mode.
    pub mode: OperatingMode,
    /// Sensor health as seen by the frontend.
    pub health: &'a SensorHealth,
    /// Current state estimate.
    pub estimate: &'a EstimatorState,
    /// Simulation time (s).
    pub time: f64,
    /// Home (launch) position.
    pub home: Vec3,
    /// Whether the low-battery failsafe has fired this run.
    pub battery_failsafe_fired: bool,
    /// The firmware profile being simulated.
    pub profile: FirmwareProfile,
}

/// The behavioural overrides produced by active defects for one step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DefectOverrides {
    /// Force the firmware into this mode.
    pub force_mode: Option<OperatingMode>,
    /// Replace the navigation setpoint entirely.
    pub setpoint: Option<Setpoint>,
    /// Do not let failsafes change the mode this step.
    pub suppress_failsafes: bool,
    /// Stop the motors (mid-air motor cut).
    pub cut_motors: bool,
    /// Disable "target altitude reached" checks (takeoff never completes).
    pub disable_altitude_reached: bool,
    /// Bugs that are currently active.
    pub active: Vec<BugId>,
}

impl DefectOverrides {
    /// Returns `true` if no defect altered behaviour this step.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Serialise the overrides bit-exactly.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.option(self.force_mode.as_ref(), |w, m| m.encode(w));
        w.option(self.setpoint.as_ref(), |w, s| s.encode(w));
        w.bool(self.suppress_failsafes);
        w.bool(self.cut_motors);
        w.bool(self.disable_altitude_reached);
        w.seq(&self.active, |w, b| b.encode(w));
    }

    /// Decode overrides previously written by [`DefectOverrides::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<DefectOverrides> {
        Ok(DefectOverrides {
            force_mode: r.option(OperatingMode::decode)?,
            setpoint: r.option(Setpoint::decode)?,
            suppress_failsafes: r.bool()?,
            cut_motors: r.bool()?,
            disable_altitude_reached: r.bool()?,
            active: r.seq(BugId::decode)?,
        })
    }
}

/// Tracks trigger state for the enabled defects and produces per-step
/// overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefectEngine {
    bugs: BugSet,
    /// Time at which each bug first triggered.
    triggered_at: BTreeMap<BugId, f64>,
}

impl DefectEngine {
    /// Creates an engine for the given set of enabled defects.
    pub fn new(bugs: BugSet) -> Self {
        DefectEngine {
            bugs,
            triggered_at: BTreeMap::new(),
        }
    }

    /// The set of enabled defects.
    pub fn bugs(&self) -> &BugSet {
        &self.bugs
    }

    /// Bugs that have triggered so far, with their trigger times.
    pub fn triggered(&self) -> &BTreeMap<BugId, f64> {
        &self.triggered_at
    }

    /// Serialise the engine (enabled set + trigger times) deterministically.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.bugs.encode(w);
        let triggered: Vec<(BugId, f64)> =
            self.triggered_at.iter().map(|(b, t)| (*b, *t)).collect();
        w.seq(&triggered, |w, (b, t)| {
            b.encode(w);
            w.f64(*t);
        });
    }

    /// Decode an engine previously written by [`DefectEngine::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<DefectEngine> {
        Ok(DefectEngine {
            bugs: BugSet::decode(r)?,
            triggered_at: r
                .seq(|r| Ok((BugId::decode(r)?, r.f64()?)))?
                .into_iter()
                .collect(),
        })
    }

    /// Evaluates every enabled defect for this step.
    pub fn evaluate(&mut self, ctx: &DefectContext<'_>) -> DefectOverrides {
        let mut overrides = DefectOverrides::default();
        // Walk the catalog in declaration order (= the enabled set's
        // BTreeSet order) instead of collecting the set into a Vec: this
        // runs once per control step and must not allocate.
        for bug in BugId::UNKNOWN.into_iter().chain(BugId::KNOWN) {
            if !self.bugs.is_enabled(bug) {
                continue;
            }
            if bug.info().firmware != ctx.profile {
                continue;
            }
            let since = self.activation(bug, ctx);
            if let Some(elapsed) = since {
                overrides.active.push(bug);
                self.apply(bug, elapsed, ctx, &mut overrides);
            }
        }
        overrides
    }

    /// Returns the seconds since `bug` triggered, triggering it now if its
    /// condition holds for the first time.
    fn activation(&mut self, bug: BugId, ctx: &DefectContext<'_>) -> Option<f64> {
        if let Some(&t0) = self.triggered_at.get(&bug) {
            return Some(ctx.time - t0);
        }
        if self.trigger_condition(bug, ctx) {
            self.triggered_at.insert(bug, ctx.time);
            return Some(0.0);
        }
        None
    }

    /// The per-bug trigger condition: the sensor failure inside the mode
    /// window listed in Tables II and V.
    fn trigger_condition(&self, bug: BugId, ctx: &DefectContext<'_>) -> bool {
        use OperatingMode as M;
        use SensorKind as K;
        let primary = |k: K| ctx.health.primary_failed(k);
        let mode = ctx.mode;
        match bug {
            // --- Previously-unknown ArduPilot bugs (Table II) ----------
            BugId::Apm16020 => primary(K::Gps) && matches!(mode, M::Auto { leg } if leg <= 1),
            BugId::Apm16021 => {
                primary(K::Accelerometer)
                    && (mode == M::Takeoff || matches!(mode, M::Auto { leg } if leg <= 1))
                    && ctx.estimate.altitude > 2.0
            }
            BugId::Apm16027 => primary(K::Barometer) && matches!(mode, M::PreFlight | M::Takeoff),
            BugId::Apm16967 => primary(K::Compass) && matches!(mode, M::Auto { leg } if leg >= 2),
            BugId::Apm16682 => {
                primary(K::Accelerometer) && mode == M::Land && ctx.estimate.altitude < 4.0
            }
            BugId::Apm16953 => primary(K::Gyroscope) && matches!(mode, M::Land | M::ReturnToLaunch),
            // --- Previously-unknown PX4 bugs (Table II) ------------------
            BugId::Px417046 => primary(K::Gyroscope) && mode == M::ReturnToLaunch,
            BugId::Px417057 => primary(K::Gyroscope) && matches!(mode, M::PreFlight | M::Takeoff),
            BugId::Px417192 => primary(K::Compass) && matches!(mode, M::PreFlight | M::Takeoff),
            BugId::Px417181 => primary(K::Barometer) && matches!(mode, M::PreFlight | M::Takeoff),
            // --- Re-inserted known bugs (Table V) ------------------------
            BugId::Apm4455 => primary(K::Gps) && matches!(mode, M::PosHold | M::Brake),
            BugId::Apm4679 => {
                primary(K::Accelerometer) && matches!(mode, M::Auto { leg } if leg >= 1)
            }
            BugId::Apm5428 => primary(K::Barometer) && mode == M::Land,
            BugId::Apm9349 => {
                primary(K::Compass)
                    && (mode == M::Takeoff || matches!(mode, M::Auto { leg } if leg <= 1))
            }
            BugId::Px413291 => {
                // The buggy PX4 code keys on "GPS unit lost" rather than on
                // the fused position estimate, so losing the primary GPS is
                // enough to take the broken branch once the battery
                // failsafe engages.
                primary(K::Gps) && ctx.health.kind_failed(K::Battery) && ctx.battery_failsafe_fired
            }
            // Protocol defects never trigger through the per-step sensor
            // evaluation; they live in the message handlers (see
            // `Firmware::handle_arm`).
            BugId::ProtoDoubleArm | BugId::ProtoPanicOnStaleEkf => false,
        }
    }

    /// Applies the behavioural corruption of an active bug.
    fn apply(&self, bug: BugId, elapsed: f64, ctx: &DefectContext<'_>, out: &mut DefectOverrides) {
        let est = ctx.estimate;
        let hold = Vec3::new(est.position.x, est.position.y, 0.0);
        match bug {
            BugId::Apm16020 => {
                // Position-loss failsafe skipped right after entering the
                // mission; navigation continues on a drifting estimate.
                out.suppress_failsafes = true;
                out.setpoint = Some(Setpoint::HorizontalVelocity {
                    velocity: Vec3::new(4.0, 1.5, 0.0),
                    altitude: est.altitude.max(12.0),
                });
            }
            BugId::Apm16021 => {
                // Stale climb acceleration: overshoot, then land on the
                // inflated estimate and descend into the ground.
                if elapsed < 2.5 {
                    out.setpoint = Some(Setpoint::VerticalSpeed {
                        rate: 2.5,
                        hold: Some(hold),
                    });
                } else {
                    out.force_mode = Some(OperatingMode::Land);
                    out.setpoint = Some(Setpoint::VerticalSpeed {
                        rate: -2.6,
                        hold: Some(hold),
                    });
                }
            }
            BugId::Apm16027 => {
                // Frozen altitude reference: the reached-altitude check
                // never passes and the climb continues indefinitely.
                out.disable_altitude_reached = true;
                if ctx.mode == OperatingMode::Takeoff {
                    out.setpoint = Some(Setpoint::VerticalSpeed {
                        rate: 2.0,
                        hold: Some(hold),
                    });
                }
            }
            BugId::Apm16967 => {
                // Stale compass: track error grows, then the land failsafe
                // resets the state estimate and descends far too fast.
                if elapsed < 3.0 {
                    out.setpoint = Some(Setpoint::HorizontalVelocity {
                        velocity: Vec3::new(3.0, -3.0, 0.0),
                        altitude: est.altitude,
                    });
                } else {
                    out.force_mode = Some(OperatingMode::Land);
                    out.setpoint = Some(Setpoint::VerticalSpeed {
                        rate: -2.6,
                        hold: Some(hold),
                    });
                }
            }
            BugId::Apm16682 => {
                // Figure 1: IMU loss in the final metres of landing engages
                // GPS-driven return-home; GPS altitude is too coarse and the
                // vehicle descends hard into the ground.
                out.force_mode = Some(OperatingMode::ReturnToLaunch);
                out.setpoint = Some(Setpoint::VerticalSpeed {
                    rate: -2.8,
                    hold: Some(hold),
                });
            }
            BugId::Apm16953 => {
                // Gyro loss during landing removes rate damping; the landing
                // controller keeps descending far faster than the touchdown
                // limit.
                out.setpoint = Some(Setpoint::VerticalSpeed {
                    rate: -2.7,
                    hold: Some(hold),
                });
            }
            BugId::Px417046 => {
                // Frozen heading steers the RTL away from home.
                let away = (Vec3::new(
                    est.position.x - ctx.home.x,
                    est.position.y - ctx.home.y,
                    0.0,
                ))
                .normalized()
                .unwrap_or(Vec3::new(1.0, 0.0, 0.0));
                out.setpoint = Some(Setpoint::HorizontalVelocity {
                    velocity: away * 4.0,
                    altitude: est.altitude.max(10.0),
                });
                out.suppress_failsafes = true;
            }
            BugId::Px417057 => {
                // Unstabilised climb; the tip-over protection then cuts the
                // motors in mid-air.
                if elapsed < 1.2 {
                    out.setpoint = Some(Setpoint::VerticalSpeed {
                        rate: 2.5,
                        hold: Some(hold),
                    });
                } else {
                    out.cut_motors = true;
                }
            }
            BugId::Px417192 => {
                // Heading alignment pending forever: climb capped just off
                // the ground, mission never progresses.
                out.disable_altitude_reached = true;
                out.setpoint = Some(Setpoint::ClimbTo {
                    altitude: 1.5,
                    hold,
                });
            }
            BugId::Px417181 => {
                // Altitude reference never initialised: throttle stays at the
                // spool-up level and the vehicle never leaves the ground.
                out.disable_altitude_reached = true;
                out.setpoint = Some(Setpoint::RawThrottle { throttle: 0.2 });
            }
            BugId::Apm4455 => {
                out.suppress_failsafes = true;
                out.setpoint = Some(Setpoint::HorizontalVelocity {
                    velocity: Vec3::new(3.5, 1.0, 0.0),
                    altitude: est.altitude,
                });
            }
            BugId::Apm4679 => {
                out.setpoint = Some(Setpoint::VerticalSpeed {
                    rate: -2.5,
                    hold: Some(hold),
                });
            }
            BugId::Apm5428 => {
                out.setpoint = Some(Setpoint::VerticalSpeed {
                    rate: -2.6,
                    hold: Some(hold),
                });
            }
            BugId::Apm9349 => {
                out.suppress_failsafes = true;
                out.setpoint = Some(Setpoint::HorizontalVelocity {
                    velocity: Vec3::new(-4.0, 2.0, 0.0),
                    altitude: est.altitude.max(10.0),
                });
            }
            BugId::Px413291 => {
                // Battery failsafe engages RTL without a local position.
                out.suppress_failsafes = true;
                out.setpoint = Some(Setpoint::HorizontalVelocity {
                    velocity: Vec3::new(4.0, -2.0, 0.0),
                    altitude: est.altitude.max(10.0),
                });
            }
            // Handled in the message path, not the control loop.
            BugId::ProtoDoubleArm | BugId::ProtoPanicOnStaleEkf => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::SensorFrontend;
    use avis_hinj::{FaultInjector, FaultPlan, FaultSpec, SharedInjector};
    use avis_sim::{RigidBodyState, SensorInstance, SensorNoise, SensorSuite, SensorSuiteConfig};

    fn health_with(kind_failures: &[(SensorKind, u8)]) -> SensorHealth {
        let mut cfg = SensorSuiteConfig::iris();
        cfg.noise = SensorNoise::noiseless();
        let mut suite = SensorSuite::new(cfg, 1);
        let readings = suite.sample(
            &RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0)),
            0.4,
            0.0,
            0.001,
        );
        let mut specs = Vec::new();
        for &(kind, count) in kind_failures {
            for idx in 0..count {
                specs.push(FaultSpec::new(SensorInstance::new(kind, idx), 0.0));
            }
        }
        let mut fe = SensorFrontend::new(SharedInjector::new(FaultInjector::new(
            FaultPlan::from_specs(specs),
        )));
        fe.ingest(&readings, 0.0);
        fe.health().clone()
    }

    fn estimate_at(altitude: f64) -> EstimatorState {
        EstimatorState {
            altitude,
            position: Vec3::new(5.0, 5.0, altitude),
            position_ok: true,
            altitude_ok: true,
            ..Default::default()
        }
    }

    fn ctx<'a>(
        mode: OperatingMode,
        health: &'a SensorHealth,
        estimate: &'a EstimatorState,
        profile: FirmwareProfile,
        time: f64,
    ) -> DefectContext<'a> {
        DefectContext {
            mode,
            health,
            estimate,
            time,
            home: Vec3::ZERO,
            battery_failsafe_fired: false,
            profile,
        }
    }

    #[test]
    fn no_bugs_enabled_means_no_overrides() {
        let mut engine = DefectEngine::new(BugSet::none());
        let health = health_with(&[(SensorKind::Gps, 2)]);
        let est = estimate_at(15.0);
        let out = engine.evaluate(&ctx(
            OperatingMode::Auto { leg: 0 },
            &health,
            &est,
            FirmwareProfile::ArduPilotLike,
            10.0,
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn bug_requires_matching_profile() {
        let mut engine = DefectEngine::new(BugSet::only(BugId::Px417181));
        let health = health_with(&[(SensorKind::Barometer, 1)]);
        let est = estimate_at(0.0);
        // ArduPilot profile: the PX4 bug never activates.
        let out = engine.evaluate(&ctx(
            OperatingMode::Takeoff,
            &health,
            &est,
            FirmwareProfile::ArduPilotLike,
            1.0,
        ));
        assert!(out.is_empty());
        let out = engine.evaluate(&ctx(
            OperatingMode::Takeoff,
            &health,
            &est,
            FirmwareProfile::Px4Like,
            1.0,
        ));
        assert_eq!(out.active, vec![BugId::Px417181]);
        assert!(out.disable_altitude_reached);
        assert!(matches!(out.setpoint, Some(Setpoint::RawThrottle { .. })));
    }

    #[test]
    fn apm16682_requires_low_altitude_landing() {
        let mut engine = DefectEngine::new(BugSet::only(BugId::Apm16682));
        let health = health_with(&[(SensorKind::Accelerometer, 1)]);
        // High altitude: not triggered (the window is the final metres).
        let est = estimate_at(10.0);
        let out = engine.evaluate(&ctx(
            OperatingMode::Land,
            &health,
            &est,
            FirmwareProfile::ArduPilotLike,
            50.0,
        ));
        assert!(out.is_empty());
        // Low altitude: triggered, forces RTL with a fast descent.
        let est = estimate_at(1.5);
        let out = engine.evaluate(&ctx(
            OperatingMode::Land,
            &health,
            &est,
            FirmwareProfile::ArduPilotLike,
            51.0,
        ));
        assert_eq!(out.active, vec![BugId::Apm16682]);
        assert_eq!(out.force_mode, Some(OperatingMode::ReturnToLaunch));
        match out.setpoint {
            Some(Setpoint::VerticalSpeed { rate, .. }) => assert!(rate < -2.0),
            other => panic!("unexpected setpoint {other:?}"),
        }
    }

    #[test]
    fn apm16021_two_phase_behaviour() {
        let mut engine = DefectEngine::new(BugSet::only(BugId::Apm16021));
        let health = health_with(&[(SensorKind::Accelerometer, 1)]);
        let est = estimate_at(18.0);
        let c = |t| {
            ctx(
                OperatingMode::Takeoff,
                &health,
                &est,
                FirmwareProfile::ArduPilotLike,
                t,
            )
        };
        let first = engine.evaluate(&c(10.0));
        assert!(matches!(first.setpoint, Some(Setpoint::VerticalSpeed { rate, .. }) if rate > 0.0));
        assert_eq!(first.force_mode, None);
        // After the overshoot phase the bug forces a fast landing.
        let later = engine.evaluate(&c(13.0));
        assert_eq!(later.force_mode, Some(OperatingMode::Land));
        assert!(matches!(later.setpoint, Some(Setpoint::VerticalSpeed { rate, .. }) if rate < 0.0));
    }

    #[test]
    fn backup_failure_does_not_trigger_primary_failure_bugs() {
        let mut engine = DefectEngine::new(BugSet::only(BugId::Apm16020));
        // Fail only the backup GPS instance.
        let mut cfg = SensorSuiteConfig::iris();
        cfg.noise = SensorNoise::noiseless();
        let mut suite = SensorSuite::new(cfg, 1);
        let readings = suite.sample(
            &RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0)),
            0.4,
            0.0,
            0.001,
        );
        let mut fe = SensorFrontend::new(SharedInjector::new(FaultInjector::new(
            FaultPlan::from_specs(vec![FaultSpec::new(
                SensorInstance::new(SensorKind::Gps, 1),
                0.0,
            )]),
        )));
        fe.ingest(&readings, 0.0);
        let est = estimate_at(15.0);
        let out = engine.evaluate(&ctx(
            OperatingMode::Auto { leg: 0 },
            fe.health(),
            &est,
            FirmwareProfile::ArduPilotLike,
            5.0,
        ));
        assert!(out.is_empty(), "a backup-only failure is handled correctly");
    }

    #[test]
    fn px413291_requires_both_failures_and_battery_failsafe() {
        let mut engine = DefectEngine::new(BugSet::only(BugId::Px413291));
        let est = estimate_at(15.0);
        // Only GPS failed: not triggered.
        let health = health_with(&[(SensorKind::Gps, 2)]);
        let mut c = ctx(
            OperatingMode::Auto { leg: 1 },
            &health,
            &est,
            FirmwareProfile::Px4Like,
            5.0,
        );
        c.battery_failsafe_fired = true;
        assert!(engine.evaluate(&c).is_empty());
        // GPS + battery failed and the battery failsafe fired: triggered.
        let health = health_with(&[(SensorKind::Gps, 2), (SensorKind::Battery, 1)]);
        let mut c = ctx(
            OperatingMode::Auto { leg: 1 },
            &health,
            &est,
            FirmwareProfile::Px4Like,
            6.0,
        );
        c.battery_failsafe_fired = true;
        let out = engine.evaluate(&c);
        assert_eq!(out.active, vec![BugId::Px413291]);
        assert!(out.suppress_failsafes);
        // Without the battery failsafe flag: not triggered.
        let mut engine2 = DefectEngine::new(BugSet::only(BugId::Px413291));
        let c2 = ctx(
            OperatingMode::Auto { leg: 1 },
            &health,
            &est,
            FirmwareProfile::Px4Like,
            6.0,
        );
        assert!(engine2.evaluate(&c2).is_empty());
    }

    #[test]
    fn trigger_latches_even_if_mode_changes() {
        let mut engine = DefectEngine::new(BugSet::only(BugId::Apm16953));
        let health = health_with(&[(SensorKind::Gyroscope, 1)]);
        let est = estimate_at(8.0);
        let out = engine.evaluate(&ctx(
            OperatingMode::Land,
            &health,
            &est,
            FirmwareProfile::ArduPilotLike,
            30.0,
        ));
        assert!(!out.is_empty());
        // Later, in a different mode, the bug remains active (latched).
        let out = engine.evaluate(&ctx(
            OperatingMode::AltHold,
            &health,
            &est,
            FirmwareProfile::ArduPilotLike,
            31.0,
        ));
        assert!(!out.is_empty());
        assert_eq!(engine.triggered().len(), 1);
    }

    #[test]
    fn every_unknown_bug_has_a_trigger_and_behaviour() {
        // Smoke test: for each unknown bug, construct its nominal trigger
        // context and check it activates and produces an override.
        for bug in BugId::UNKNOWN {
            let info = bug.info();
            let mode = match bug {
                BugId::Apm16020 => OperatingMode::Auto { leg: 0 },
                BugId::Apm16021 => OperatingMode::Takeoff,
                BugId::Apm16027 => OperatingMode::Takeoff,
                BugId::Apm16967 => OperatingMode::Auto { leg: 2 },
                BugId::Apm16682 => OperatingMode::Land,
                BugId::Apm16953 => OperatingMode::Land,
                BugId::Px417046 => OperatingMode::ReturnToLaunch,
                BugId::Px417057 => OperatingMode::Takeoff,
                BugId::Px417192 => OperatingMode::Takeoff,
                BugId::Px417181 => OperatingMode::Takeoff,
                _ => unreachable!(),
            };
            let altitude = if bug == BugId::Apm16682 { 1.5 } else { 10.0 };
            let health = health_with(&[(info.sensor, 1)]);
            let est = estimate_at(altitude);
            let mut engine = DefectEngine::new(BugSet::only(bug));
            let out = engine.evaluate(&ctx(mode, &health, &est, info.firmware, 10.0));
            assert_eq!(out.active, vec![bug], "{bug} should trigger in its window");
            assert!(
                out.setpoint.is_some() || out.cut_motors || out.force_mode.is_some(),
                "{bug} should corrupt behaviour"
            );
        }
    }
}
