//! The state estimator: fuses the selected sensor measurements into the
//! attitude, altitude, position and velocity estimates the navigation code
//! consumes.
//!
//! The paper's firmware (ArduPilot/PX4) runs an extended Kalman filter;
//! this substrate uses the same information flow with complementary
//! filters, which is sufficient because what the checker exercises is the
//! *degradation behaviour*: which estimates survive which sensor failures,
//! and which quality flags the failsafe logic sees.
//!
//! Degradation rules (the correct, non-buggy behaviour):
//!
//! - attitude: gyro integration corrected by accelerometer gravity
//!   direction and compass heading; loses correction terms as those
//!   sensors fail, but never invents data;
//! - altitude: accelerometer propagation corrected by the barometer,
//!   falling back to (coarse) GPS altitude when the barometer is lost;
//! - horizontal position/velocity: GPS-corrected inertial propagation;
//!   without GPS the estimate coasts and the `position_ok` flag drops
//!   after a timeout, which is what triggers the GPS failsafe.

use crate::frontend::{SelectedSensors, SensorHealth};
use avis_sim::codec::{ByteReader, ByteWriter, CodecResult};
use avis_sim::math::wrap_angle;
use avis_sim::{Quat, Vec3, GRAVITY};
use serde::{Deserialize, Serialize};

/// A snapshot of the estimator outputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorState {
    /// Estimated roll angle (rad).
    pub roll: f64,
    /// Estimated pitch angle (rad).
    pub pitch: f64,
    /// Estimated yaw / heading (rad).
    pub yaw: f64,
    /// Estimated altitude above home (m).
    pub altitude: f64,
    /// Estimated climb rate (m/s).
    pub climb_rate: f64,
    /// Estimated horizontal position (m; z carries the altitude).
    pub position: Vec3,
    /// Estimated velocity (m/s).
    pub velocity: Vec3,
    /// Whether the horizontal position estimate is usable.
    pub position_ok: bool,
    /// Whether the altitude estimate is usable.
    pub altitude_ok: bool,
    /// Seconds since the last usable GPS solution.
    pub gps_loss_seconds: f64,
}

impl Default for EstimatorState {
    fn default() -> Self {
        EstimatorState {
            roll: 0.0,
            pitch: 0.0,
            yaw: 0.0,
            altitude: 0.0,
            climb_rate: 0.0,
            position: Vec3::ZERO,
            velocity: Vec3::ZERO,
            position_ok: false,
            altitude_ok: false,
            gps_loss_seconds: 0.0,
        }
    }
}

impl EstimatorState {
    /// The estimated attitude as a quaternion.
    pub fn attitude(&self) -> Quat {
        Quat::from_euler(self.roll, self.pitch, self.yaw)
    }

    /// Serialise the estimate bit-exactly (all floats via their raw bits).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.f64(self.roll);
        w.f64(self.pitch);
        w.f64(self.yaw);
        w.f64(self.altitude);
        w.f64(self.climb_rate);
        self.position.encode(w);
        self.velocity.encode(w);
        w.bool(self.position_ok);
        w.bool(self.altitude_ok);
        w.f64(self.gps_loss_seconds);
    }

    /// Decode an estimate previously written by [`EstimatorState::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<EstimatorState> {
        Ok(EstimatorState {
            roll: r.f64()?,
            pitch: r.f64()?,
            yaw: r.f64()?,
            altitude: r.f64()?,
            climb_rate: r.f64()?,
            position: Vec3::decode(r)?,
            velocity: Vec3::decode(r)?,
            position_ok: r.bool()?,
            altitude_ok: r.bool()?,
            gps_loss_seconds: r.f64()?,
        })
    }
}

/// Filter gains for the complementary estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorGains {
    /// Attitude correction toward the accelerometer gravity direction (1/s).
    pub attitude_correction: f64,
    /// Heading correction toward the compass (1/s).
    pub heading_correction: f64,
    /// Altitude correction toward the barometer (1/s).
    pub baro_position: f64,
    /// Climb-rate correction toward the barometer (1/s²·s).
    pub baro_velocity: f64,
    /// Altitude correction toward GPS altitude when the barometer is lost (1/s).
    pub gps_altitude: f64,
    /// Horizontal position correction toward GPS (1/s).
    pub gps_position: f64,
    /// Horizontal velocity correction toward GPS velocity (1/s).
    pub gps_velocity: f64,
    /// Seconds without GPS before `position_ok` drops.
    pub gps_timeout: f64,
}

impl Default for EstimatorGains {
    fn default() -> Self {
        EstimatorGains {
            attitude_correction: 0.3,
            heading_correction: 2.0,
            baro_position: 3.0,
            baro_velocity: 1.5,
            gps_altitude: 0.8,
            gps_position: 1.2,
            gps_velocity: 2.5,
            gps_timeout: 1.0,
        }
    }
}

/// The complementary-filter state estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEstimator {
    gains: EstimatorGains,
    state: EstimatorState,
    baro_reference: Option<f64>,
}

impl Default for StateEstimator {
    fn default() -> Self {
        StateEstimator::new(EstimatorGains::default())
    }
}

/// The per-run mutable slice of a [`StateEstimator`] (see
/// [`StateEstimator::dynamics`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorDynamics {
    state: EstimatorState,
    baro_reference: Option<f64>,
}

impl EstimatorDynamics {
    /// Serialise the dynamic estimator state bit-exactly.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.state.encode(w);
        w.option(self.baro_reference.as_ref(), |w, v| w.f64(*v));
    }

    /// Decode dynamics previously written by [`EstimatorDynamics::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<EstimatorDynamics> {
        Ok(EstimatorDynamics {
            state: EstimatorState::decode(r)?,
            baro_reference: r.option(|r| r.f64())?,
        })
    }
}

impl StateEstimator {
    /// Creates an estimator with the given gains, at rest at the origin.
    pub fn new(gains: EstimatorGains) -> Self {
        StateEstimator {
            gains,
            state: EstimatorState::default(),
            baro_reference: None,
        }
    }

    /// The current estimate.
    pub fn state(&self) -> &EstimatorState {
        &self.state
    }

    /// The captured barometer ground reference, if initialised.
    pub fn baro_reference(&self) -> Option<f64> {
        self.baro_reference
    }

    /// Captures the per-run dynamic state — the estimate itself and the
    /// barometer ground reference. The gains are static per run, so a
    /// delta-encoded snapshot chain stores them once in its keyframe.
    pub fn dynamics(&self) -> EstimatorDynamics {
        EstimatorDynamics {
            state: self.state,
            baro_reference: self.baro_reference,
        }
    }

    /// Overwrites the per-run dynamic state captured by
    /// [`StateEstimator::dynamics`].
    pub fn restore_dynamics(&mut self, dynamics: &EstimatorDynamics) {
        self.state = dynamics.state;
        self.baro_reference = dynamics.baro_reference;
    }

    /// Advances the estimate by `dt` seconds using the selected sensors.
    pub fn update(
        &mut self,
        sensors: &SelectedSensors,
        health: &SensorHealth,
        dt: f64,
    ) -> EstimatorState {
        debug_assert!(dt > 0.0);
        let g = &self.gains;
        let s = &mut self.state;

        // --- Attitude -------------------------------------------------
        if let Some(gyro) = sensors.gyro {
            // Small-angle Euler integration of body rates.
            s.roll += gyro.x * dt;
            s.pitch += gyro.y * dt;
            s.yaw = wrap_angle(s.yaw + gyro.z * dt);
        }
        if let Some(accel) = sensors.accel {
            // Gravity direction correction, only meaningful when the
            // specific force is close to 1 g (not during hard manoeuvres).
            let norm = accel.norm();
            if norm > 0.5 * GRAVITY && norm < 1.5 * GRAVITY {
                let roll_acc = accel.y.atan2(accel.z);
                let pitch_acc = (-accel.x / norm).clamp(-1.0, 1.0).asin();
                s.roll += g.attitude_correction * dt * (roll_acc - s.roll);
                s.pitch += g.attitude_correction * dt * (pitch_acc - s.pitch);
            }
        }
        if let Some(heading) = sensors.heading {
            s.yaw = wrap_angle(s.yaw + g.heading_correction * dt * wrap_angle(heading - s.yaw));
        }

        // World-frame acceleration from the specific force.
        let attitude = Quat::from_euler(s.roll, s.pitch, s.yaw);
        let accel_world = match sensors.accel {
            Some(f) => attitude.rotate(f) - Vec3::new(0.0, 0.0, GRAVITY),
            None => Vec3::ZERO,
        };

        // --- Vertical channel ------------------------------------------
        let baro_alt = sensors.baro_altitude.map(|raw| {
            let reference = *self.baro_reference.get_or_insert(raw - s.altitude);
            raw - reference
        });
        s.climb_rate += accel_world.z * dt;
        s.altitude += s.climb_rate * dt;
        if let Some(alt) = baro_alt {
            let err = alt - s.altitude;
            s.altitude += g.baro_position * dt * err;
            s.climb_rate += g.baro_velocity * dt * err;
            s.altitude_ok = true;
        } else if let Some(gps) = sensors.gps {
            // Degraded: coarse GPS altitude keeps the estimate bounded.
            let err = gps.position.z - s.altitude;
            s.altitude += g.gps_altitude * dt * err;
            s.climb_rate += 0.3 * g.gps_altitude * dt * err;
            s.altitude_ok = true;
        } else {
            // Pure inertial coasting; the estimate is unreliable.
            s.altitude_ok = health.kind_available(avis_sim::SensorKind::Accelerometer);
        }

        // --- Horizontal channel -----------------------------------------
        s.velocity.x += accel_world.x * dt;
        s.velocity.y += accel_world.y * dt;
        if let Some(gps) = sensors.gps {
            s.velocity.x += g.gps_velocity * dt * (gps.velocity.x - s.velocity.x);
            s.velocity.y += g.gps_velocity * dt * (gps.velocity.y - s.velocity.y);
            s.position.x +=
                s.velocity.x * dt + g.gps_position * dt * (gps.position.x - s.position.x);
            s.position.y +=
                s.velocity.y * dt + g.gps_position * dt * (gps.position.y - s.position.y);
            s.gps_loss_seconds = 0.0;
            s.position_ok = true;
        } else {
            s.position.x += s.velocity.x * dt;
            s.position.y += s.velocity.y * dt;
            s.gps_loss_seconds += dt;
            if s.gps_loss_seconds > g.gps_timeout {
                s.position_ok = false;
            }
        }

        s.velocity.z = s.climb_rate;
        s.position.z = s.altitude;
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{BatteryState, GpsSolution};
    use avis_sim::SensorKind;

    const DT: f64 = 0.001;

    fn hover_sensors(alt: f64) -> SelectedSensors {
        SelectedSensors {
            accel: Some(Vec3::new(0.0, 0.0, GRAVITY)),
            gyro: Some(Vec3::ZERO),
            gps: Some(GpsSolution {
                position: Vec3::new(0.0, 0.0, alt),
                velocity: Vec3::ZERO,
            }),
            baro_altitude: Some(alt),
            heading: Some(0.0),
            battery: Some(BatteryState {
                voltage: 12.0,
                remaining: 0.9,
            }),
        }
    }

    fn healthy() -> SensorHealth {
        // An empty health struct behaves as "nothing known failed"; the
        // estimator only uses `kind_available` for the degraded branches.
        SensorHealth::default()
    }

    #[test]
    fn level_hover_estimates_stay_level() {
        let mut est = StateEstimator::default();
        // The first barometer sample defines the home reference, so a
        // vehicle sitting level on the ground estimates zero everything.
        for _ in 0..2000 {
            est.update(&hover_sensors(0.0), &healthy(), DT);
        }
        let s = est.state();
        assert!(s.roll.abs() < 0.01);
        assert!(s.pitch.abs() < 0.01);
        assert!(s.yaw.abs() < 0.01);
        assert!(s.altitude.abs() < 0.5, "altitude {}", s.altitude);
        assert!(s.climb_rate.abs() < 0.2);
        assert!(s.position_ok);
        assert!(s.altitude_ok);
    }

    #[test]
    fn baro_reference_captured_on_first_reading() {
        let mut est = StateEstimator::default();
        // Barometer reports 103 m absolute while the vehicle sits on the ground.
        let mut sensors = hover_sensors(0.0);
        sensors.baro_altitude = Some(103.0);
        sensors.gps = None;
        est.update(&sensors, &healthy(), DT);
        assert_eq!(est.baro_reference(), Some(103.0));
        for _ in 0..2000 {
            est.update(&sensors, &healthy(), DT);
        }
        assert!(
            est.state().altitude.abs() < 0.2,
            "altitude should be relative to home"
        );
    }

    #[test]
    fn altitude_tracks_baro_changes() {
        let mut est = StateEstimator::default();
        for _ in 0..1000 {
            est.update(&hover_sensors(0.0), &healthy(), DT);
        }
        for _ in 0..4000 {
            est.update(&hover_sensors(20.0), &healthy(), DT);
        }
        assert!(
            (est.state().altitude - 20.0).abs() < 1.0,
            "altitude {}",
            est.state().altitude
        );
    }

    #[test]
    fn baro_loss_falls_back_to_gps_altitude() {
        let mut est = StateEstimator::default();
        for _ in 0..1000 {
            est.update(&hover_sensors(15.0), &healthy(), DT);
        }
        let mut degraded = hover_sensors(25.0);
        degraded.baro_altitude = None;
        for _ in 0..15_000 {
            est.update(&degraded, &healthy(), DT);
        }
        let s = est.state();
        assert!(s.altitude_ok);
        assert!((s.altitude - 25.0).abs() < 3.0, "altitude {}", s.altitude);
    }

    #[test]
    fn gps_loss_drops_position_ok_after_timeout() {
        let mut est = StateEstimator::default();
        for _ in 0..1000 {
            est.update(&hover_sensors(10.0), &healthy(), DT);
        }
        assert!(est.state().position_ok);
        let mut lost = hover_sensors(10.0);
        lost.gps = None;
        for _ in 0..500 {
            est.update(&lost, &healthy(), DT);
        }
        assert!(
            est.state().position_ok,
            "within the timeout the estimate coasts"
        );
        for _ in 0..1000 {
            est.update(&lost, &healthy(), DT);
        }
        assert!(!est.state().position_ok);
        assert!(est.state().gps_loss_seconds > 1.0);
    }

    #[test]
    fn heading_follows_compass() {
        let mut est = StateEstimator::default();
        let mut sensors = hover_sensors(5.0);
        sensors.heading = Some(1.2);
        for _ in 0..4000 {
            est.update(&sensors, &healthy(), DT);
        }
        assert!(
            (est.state().yaw - 1.2).abs() < 0.05,
            "yaw {}",
            est.state().yaw
        );
    }

    #[test]
    fn heading_coasts_without_compass() {
        let mut est = StateEstimator::default();
        let mut sensors = hover_sensors(5.0);
        sensors.heading = Some(0.8);
        for _ in 0..4000 {
            est.update(&sensors, &healthy(), DT);
        }
        let yaw_before = est.state().yaw;
        sensors.heading = None;
        sensors.gyro = Some(Vec3::ZERO);
        for _ in 0..2000 {
            est.update(&sensors, &healthy(), DT);
        }
        assert!(
            (est.state().yaw - yaw_before).abs() < 1e-6,
            "yaw should coast unchanged"
        );
    }

    #[test]
    fn tilt_recovered_from_accelerometer() {
        let mut est = StateEstimator::default();
        // Specific force for a 0.1 rad roll, stationary: f = g*(0, sin(roll), cos(roll))
        // (body-frame gravity direction tilts toward +y).
        let roll = 0.1f64;
        let sensors = SelectedSensors {
            accel: Some(Vec3::new(0.0, GRAVITY * roll.sin(), GRAVITY * roll.cos())),
            gyro: Some(Vec3::ZERO),
            gps: None,
            baro_altitude: Some(0.0),
            heading: Some(0.0),
            battery: None,
        };
        // The gravity-direction correction is deliberately slow (0.3 1/s),
        // so give the filter plenty of time to converge.
        for _ in 0..30_000 {
            est.update(&sensors, &healthy(), DT);
        }
        assert!(
            (est.state().roll - roll).abs() < 0.02,
            "roll {}",
            est.state().roll
        );
    }

    #[test]
    fn attitude_quaternion_matches_euler() {
        let mut est = StateEstimator::default();
        for _ in 0..100 {
            est.update(&hover_sensors(2.0), &healthy(), DT);
        }
        let q = est.state().attitude();
        let (r, p, _) = q.to_euler();
        assert!((r - est.state().roll).abs() < 1e-9);
        assert!((p - est.state().pitch).abs() < 1e-9);
    }

    #[test]
    fn full_sensor_loss_marks_estimates_unreliable() {
        let mut est = StateEstimator::default();
        for _ in 0..1000 {
            est.update(&hover_sensors(10.0), &healthy(), DT);
        }
        let blind = SelectedSensors::default();
        // Build a health struct where every accelerometer has failed by
        // ingesting through a frontend with an all-fail plan.
        use avis_hinj::{FaultInjector, FaultPlan, FaultSpec, SharedInjector};
        use avis_sim::{
            RigidBodyState, SensorInstance, SensorNoise, SensorSuite, SensorSuiteConfig,
        };
        let mut cfg = SensorSuiteConfig::iris();
        cfg.noise = SensorNoise::noiseless();
        let mut suite = SensorSuite::new(cfg.clone(), 1);
        let readings = suite.sample(&RigidBodyState::at_rest(Vec3::ZERO), 0.2, 0.0, DT);
        let specs: Vec<FaultSpec> = cfg
            .instances()
            .into_iter()
            .filter(|i| i.kind == SensorKind::Accelerometer)
            .map(|i: SensorInstance| FaultSpec::new(i, 0.0))
            .collect();
        let mut fe = crate::frontend::SensorFrontend::new(SharedInjector::new(FaultInjector::new(
            FaultPlan::from_specs(specs),
        )));
        fe.ingest(&readings, 0.0);
        for _ in 0..3000 {
            est.update(&blind, fe.health(), DT);
        }
        assert!(!est.state().position_ok);
        assert!(!est.state().altitude_ok);
    }
}
