//! The failsafe engine.
//!
//! Control firmware accounts for sensor failures by failing over to
//! redundant sensors, discarding invalid readings and falling back to
//! degraded flight modes (§I). This module implements the *mode-changing*
//! part of that strategy: given the sensor health and estimator quality
//! flags, decide whether a failsafe must fire and what action it takes.
//! The paper's thesis is that exactly this logic tends to be "too narrowly
//! tailored to specific operating modes" — which is why the injected
//! defects in [`crate::defects`] mostly live at the boundaries of this
//! engine.

use crate::estimator::EstimatorState;
use crate::frontend::{SelectedSensors, SensorHealth};
use crate::modes::OperatingMode;
use crate::params::{FailsafeAction, FirmwareParams};
use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use avis_sim::SensorKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a failsafe fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailsafeCause {
    /// Horizontal position lost (all GPS failed or estimate timed out).
    PositionLoss,
    /// Inertial measurement lost (all accelerometers or all gyroscopes failed).
    ImuLoss,
    /// Altitude reference lost (all barometers failed and no GPS altitude).
    AltitudeLoss,
    /// Heading reference lost (all compasses failed).
    CompassLoss,
    /// Battery below the low threshold (or battery monitor lost).
    BatteryLow,
    /// Battery below the critical threshold.
    BatteryCritical,
}

impl FailsafeCause {
    /// Serialise the cause as a stable one-byte tag.
    pub fn encode(&self, w: &mut ByteWriter) {
        let tag: u8 = match self {
            FailsafeCause::PositionLoss => 0,
            FailsafeCause::ImuLoss => 1,
            FailsafeCause::AltitudeLoss => 2,
            FailsafeCause::CompassLoss => 3,
            FailsafeCause::BatteryLow => 4,
            FailsafeCause::BatteryCritical => 5,
        };
        w.u8(tag);
    }

    /// Decode a cause previously written by [`FailsafeCause::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<FailsafeCause> {
        Ok(match r.u8()? {
            0 => FailsafeCause::PositionLoss,
            1 => FailsafeCause::ImuLoss,
            2 => FailsafeCause::AltitudeLoss,
            3 => FailsafeCause::CompassLoss,
            4 => FailsafeCause::BatteryLow,
            5 => FailsafeCause::BatteryCritical,
            _ => return Err(CodecError::Malformed("failsafe cause tag")),
        })
    }
}

impl fmt::Display for FailsafeCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailsafeCause::PositionLoss => "position loss",
            FailsafeCause::ImuLoss => "imu loss",
            FailsafeCause::AltitudeLoss => "altitude loss",
            FailsafeCause::CompassLoss => "compass loss",
            FailsafeCause::BatteryLow => "battery low",
            FailsafeCause::BatteryCritical => "battery critical",
        };
        f.write_str(s)
    }
}

/// A failsafe decision: the cause and the action to take.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailsafeEvent {
    /// Why the failsafe fired.
    pub cause: FailsafeCause,
    /// What the firmware should do.
    pub action: FailsafeAction,
    /// Simulation time at which it fired (s).
    pub time: f64,
}

impl FailsafeEvent {
    /// Serialise the event bit-exactly.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.cause.encode(w);
        self.action.encode(w);
        w.f64(self.time);
    }

    /// Decode an event previously written by [`FailsafeEvent::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<FailsafeEvent> {
        Ok(FailsafeEvent {
            cause: FailsafeCause::decode(r)?,
            action: FailsafeAction::decode(r)?,
            time: r.f64()?,
        })
    }
}

/// The failsafe engine. Stateful so that each cause fires once per run
/// (matching the latch-style behaviour of real firmware).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailsafeEngine {
    fired: Vec<FailsafeEvent>,
}

impl FailsafeEngine {
    /// Creates an engine with no failsafes latched.
    pub fn new() -> Self {
        FailsafeEngine::default()
    }

    /// Every failsafe that has fired so far, in order.
    pub fn events(&self) -> &[FailsafeEvent] {
        &self.fired
    }

    /// Whether the given cause has already fired.
    pub fn has_fired(&self, cause: FailsafeCause) -> bool {
        self.fired.iter().any(|e| e.cause == cause)
    }

    /// Serialise the latched events in firing order.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.seq(&self.fired, |w, e| e.encode(w));
    }

    /// Decode an engine previously written by [`FailsafeEngine::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<FailsafeEngine> {
        Ok(FailsafeEngine {
            fired: r.seq(FailsafeEvent::decode)?,
        })
    }

    /// Evaluates the failsafe conditions for this step.
    ///
    /// Returns the highest-priority *new* failsafe event, if any. The
    /// caller (the firmware main loop) applies the action, unless a
    /// defect suppresses it.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        &mut self,
        mode: OperatingMode,
        health: &SensorHealth,
        sensors: &SelectedSensors,
        estimate: &EstimatorState,
        params: &FirmwareParams,
        armed: bool,
        time: f64,
    ) -> Option<FailsafeEvent> {
        if !armed || matches!(mode, OperatingMode::PreFlight | OperatingMode::Crashed) {
            return None;
        }

        // Priority order: critical battery > IMU > position > altitude >
        // compass > low battery.
        let candidates = [
            self.battery_critical(sensors, health, params),
            self.imu_loss(health, params),
            self.position_loss(mode, estimate, params),
            self.altitude_loss(health),
            self.compass_loss(mode, health),
            self.battery_low(sensors, health, params),
        ];

        for candidate in candidates.into_iter().flatten() {
            if !self.has_fired(candidate.0) {
                let event = FailsafeEvent {
                    cause: candidate.0,
                    action: candidate.1,
                    time,
                };
                self.fired.push(event);
                return Some(event);
            }
        }
        None
    }

    fn battery_critical(
        &self,
        sensors: &SelectedSensors,
        _health: &SensorHealth,
        params: &FirmwareParams,
    ) -> Option<(FailsafeCause, FailsafeAction)> {
        let remaining = sensors.battery.map(|b| b.remaining)?;
        (remaining < params.battery_critical_threshold).then_some((
            FailsafeCause::BatteryCritical,
            params.battery_critical_action,
        ))
    }

    fn battery_low(
        &self,
        sensors: &SelectedSensors,
        health: &SensorHealth,
        params: &FirmwareParams,
    ) -> Option<(FailsafeCause, FailsafeAction)> {
        match sensors.battery {
            Some(b) if b.remaining < params.battery_low_threshold => {
                Some((FailsafeCause::BatteryLow, params.battery_low_action))
            }
            // A failed battery monitor is treated conservatively as a low
            // battery (the PX4-13291 scenario hinges on this path).
            None if health.kind_failed(SensorKind::Battery) => {
                Some((FailsafeCause::BatteryLow, params.battery_low_action))
            }
            _ => None,
        }
    }

    fn imu_loss(
        &self,
        health: &SensorHealth,
        params: &FirmwareParams,
    ) -> Option<(FailsafeCause, FailsafeAction)> {
        health
            .imu_failed()
            .then_some((FailsafeCause::ImuLoss, params.imu_failsafe_action))
    }

    fn position_loss(
        &self,
        mode: OperatingMode,
        estimate: &EstimatorState,
        params: &FirmwareParams,
    ) -> Option<(FailsafeCause, FailsafeAction)> {
        (mode.requires_position()
            && !estimate.position_ok
            && estimate.gps_loss_seconds >= params.gps_loss_timeout)
            .then_some((FailsafeCause::PositionLoss, params.gps_failsafe_action))
    }

    fn altitude_loss(&self, health: &SensorHealth) -> Option<(FailsafeCause, FailsafeAction)> {
        (health.kind_failed(SensorKind::Barometer) && health.kind_failed(SensorKind::Gps))
            .then_some((FailsafeCause::AltitudeLoss, FailsafeAction::Land))
    }

    fn compass_loss(
        &self,
        mode: OperatingMode,
        health: &SensorHealth,
    ) -> Option<(FailsafeCause, FailsafeAction)> {
        (health.kind_failed(SensorKind::Compass) && mode.requires_position())
            .then_some((FailsafeCause::CompassLoss, FailsafeAction::Land))
    }

    /// Maps a failsafe action to the operating mode it implies, given the
    /// current mode. Returns `None` when the action does not change modes.
    pub fn mode_for_action(
        action: FailsafeAction,
        current: OperatingMode,
    ) -> Option<OperatingMode> {
        match action {
            FailsafeAction::Warn => None,
            FailsafeAction::AltHold => Some(OperatingMode::AltHold),
            FailsafeAction::Land => Some(OperatingMode::Land),
            FailsafeAction::ReturnToLaunch => Some(OperatingMode::ReturnToLaunch),
            FailsafeAction::Disarm => Some(OperatingMode::PreFlight),
        }
        .filter(|&m| m != current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::{BatteryState, SensorFrontend};
    use avis_hinj::{FaultInjector, FaultPlan, FaultSpec, SharedInjector};
    use avis_sim::{
        RigidBodyState, SensorInstance, SensorNoise, SensorSuite, SensorSuiteConfig, Vec3,
    };

    fn health_with_failures(kinds: &[(SensorKind, u8)]) -> (SensorHealth, SelectedSensors) {
        let mut cfg = SensorSuiteConfig::iris();
        cfg.noise = SensorNoise::noiseless();
        let mut suite = SensorSuite::new(cfg.clone(), 1);
        let readings = suite.sample(
            &RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0)),
            0.4,
            0.0,
            0.001,
        );
        let mut specs = Vec::new();
        for &(kind, count) in kinds {
            for idx in 0..count {
                specs.push(FaultSpec::new(SensorInstance::new(kind, idx), 0.0));
            }
        }
        let mut fe = SensorFrontend::new(SharedInjector::new(FaultInjector::new(
            FaultPlan::from_specs(specs),
        )));
        let selected = fe.ingest(&readings, 0.0);
        (fe.health().clone(), selected)
    }

    fn good_estimate() -> EstimatorState {
        EstimatorState {
            position_ok: true,
            altitude_ok: true,
            ..Default::default()
        }
    }

    fn params() -> FirmwareParams {
        FirmwareParams::ardupilot()
    }

    #[test]
    fn no_failsafe_when_everything_healthy() {
        let (health, sensors) = health_with_failures(&[]);
        let mut engine = FailsafeEngine::new();
        let event = engine.evaluate(
            OperatingMode::Auto { leg: 1 },
            &health,
            &sensors,
            &good_estimate(),
            &params(),
            true,
            5.0,
        );
        assert!(event.is_none());
        assert!(engine.events().is_empty());
    }

    #[test]
    fn disarmed_or_preflight_never_fires() {
        let (health, sensors) = health_with_failures(&[(SensorKind::Accelerometer, 3)]);
        let mut engine = FailsafeEngine::new();
        assert!(engine
            .evaluate(
                OperatingMode::Auto { leg: 0 },
                &health,
                &sensors,
                &good_estimate(),
                &params(),
                false,
                1.0
            )
            .is_none());
        assert!(engine
            .evaluate(
                OperatingMode::PreFlight,
                &health,
                &sensors,
                &good_estimate(),
                &params(),
                true,
                1.0
            )
            .is_none());
    }

    #[test]
    fn imu_loss_triggers_land() {
        let (health, sensors) = health_with_failures(&[(SensorKind::Accelerometer, 3)]);
        let mut engine = FailsafeEngine::new();
        let event = engine
            .evaluate(
                OperatingMode::Auto { leg: 2 },
                &health,
                &sensors,
                &good_estimate(),
                &params(),
                true,
                3.0,
            )
            .expect("imu failsafe");
        assert_eq!(event.cause, FailsafeCause::ImuLoss);
        assert_eq!(event.action, FailsafeAction::Land);
        // Latched: does not fire twice.
        assert!(engine
            .evaluate(
                OperatingMode::Land,
                &health,
                &sensors,
                &good_estimate(),
                &params(),
                true,
                4.0
            )
            .is_none());
    }

    #[test]
    fn position_loss_requires_position_mode_and_timeout() {
        let (health, sensors) = health_with_failures(&[(SensorKind::Gps, 2)]);
        let mut engine = FailsafeEngine::new();
        let mut est = good_estimate();
        est.position_ok = false;
        est.gps_loss_seconds = 0.2;
        // Below the timeout: no event.
        assert!(engine
            .evaluate(
                OperatingMode::Auto { leg: 1 },
                &health,
                &sensors,
                &est,
                &params(),
                true,
                1.0
            )
            .is_none());
        est.gps_loss_seconds = 2.0;
        let event = engine
            .evaluate(
                OperatingMode::Auto { leg: 1 },
                &health,
                &sensors,
                &est,
                &params(),
                true,
                2.0,
            )
            .expect("gps failsafe");
        assert_eq!(event.cause, FailsafeCause::PositionLoss);
        // In a mode that does not need position (AltHold), it would not fire.
        let mut engine2 = FailsafeEngine::new();
        assert!(engine2
            .evaluate(
                OperatingMode::AltHold,
                &health,
                &sensors,
                &est,
                &params(),
                true,
                2.0
            )
            .is_none());
    }

    #[test]
    fn battery_thresholds_fire_in_priority_order() {
        let (health, mut sensors) = health_with_failures(&[]);
        let mut engine = FailsafeEngine::new();
        sensors.battery = Some(BatteryState {
            voltage: 11.0,
            remaining: 0.15,
        });
        let event = engine
            .evaluate(
                OperatingMode::Auto { leg: 0 },
                &health,
                &sensors,
                &good_estimate(),
                &params(),
                true,
                1.0,
            )
            .expect("low battery");
        assert_eq!(event.cause, FailsafeCause::BatteryLow);
        assert_eq!(event.action, FailsafeAction::ReturnToLaunch);

        sensors.battery = Some(BatteryState {
            voltage: 10.6,
            remaining: 0.05,
        });
        let event = engine
            .evaluate(
                OperatingMode::ReturnToLaunch,
                &health,
                &sensors,
                &good_estimate(),
                &params(),
                true,
                2.0,
            )
            .expect("critical battery");
        assert_eq!(event.cause, FailsafeCause::BatteryCritical);
        assert_eq!(event.action, FailsafeAction::Land);
    }

    #[test]
    fn failed_battery_monitor_treated_as_low_battery() {
        let (health, sensors) = health_with_failures(&[(SensorKind::Battery, 1)]);
        let mut engine = FailsafeEngine::new();
        let event = engine
            .evaluate(
                OperatingMode::Auto { leg: 1 },
                &health,
                &sensors,
                &good_estimate(),
                &params(),
                true,
                1.0,
            )
            .expect("battery monitor loss");
        assert_eq!(event.cause, FailsafeCause::BatteryLow);
    }

    #[test]
    fn altitude_loss_needs_both_baro_and_gps_failed() {
        let (health, sensors) = health_with_failures(&[(SensorKind::Barometer, 2)]);
        let mut engine = FailsafeEngine::new();
        assert!(engine
            .evaluate(
                OperatingMode::AltHold,
                &health,
                &sensors,
                &good_estimate(),
                &params(),
                true,
                1.0
            )
            .is_none());
        let (health, sensors) =
            health_with_failures(&[(SensorKind::Barometer, 2), (SensorKind::Gps, 2)]);
        let mut est = good_estimate();
        est.position_ok = false;
        est.gps_loss_seconds = 5.0;
        let mut engine = FailsafeEngine::new();
        // Altitude loss fires (position loss does not apply in AltHold).
        let event = engine
            .evaluate(
                OperatingMode::AltHold,
                &health,
                &sensors,
                &est,
                &params(),
                true,
                1.0,
            )
            .expect("altitude loss");
        assert_eq!(event.cause, FailsafeCause::AltitudeLoss);
        assert_eq!(event.action, FailsafeAction::Land);
    }

    #[test]
    fn compass_loss_fires_in_position_modes_only() {
        let (health, sensors) = health_with_failures(&[(SensorKind::Compass, 3)]);
        let mut engine = FailsafeEngine::new();
        assert!(engine
            .evaluate(
                OperatingMode::AltHold,
                &health,
                &sensors,
                &good_estimate(),
                &params(),
                true,
                1.0
            )
            .is_none());
        let event = engine
            .evaluate(
                OperatingMode::Auto { leg: 1 },
                &health,
                &sensors,
                &good_estimate(),
                &params(),
                true,
                1.0,
            )
            .expect("compass loss");
        assert_eq!(event.cause, FailsafeCause::CompassLoss);
    }

    #[test]
    fn imu_takes_priority_over_position() {
        let (health, sensors) =
            health_with_failures(&[(SensorKind::Accelerometer, 3), (SensorKind::Gps, 2)]);
        let mut est = good_estimate();
        est.position_ok = false;
        est.gps_loss_seconds = 10.0;
        let mut engine = FailsafeEngine::new();
        let event = engine
            .evaluate(
                OperatingMode::Auto { leg: 1 },
                &health,
                &sensors,
                &est,
                &params(),
                true,
                1.0,
            )
            .unwrap();
        assert_eq!(event.cause, FailsafeCause::ImuLoss);
        // Next evaluation surfaces the position loss.
        let event = engine
            .evaluate(
                OperatingMode::Auto { leg: 1 },
                &health,
                &sensors,
                &est,
                &params(),
                true,
                1.1,
            )
            .unwrap();
        assert_eq!(event.cause, FailsafeCause::PositionLoss);
    }

    #[test]
    fn mode_for_action_mapping() {
        use FailsafeAction::*;
        assert_eq!(
            FailsafeEngine::mode_for_action(Land, OperatingMode::Auto { leg: 1 }),
            Some(OperatingMode::Land)
        );
        assert_eq!(
            FailsafeEngine::mode_for_action(Land, OperatingMode::Land),
            None
        );
        assert_eq!(
            FailsafeEngine::mode_for_action(ReturnToLaunch, OperatingMode::Auto { leg: 0 }),
            Some(OperatingMode::ReturnToLaunch)
        );
        assert_eq!(
            FailsafeEngine::mode_for_action(AltHold, OperatingMode::PosHold),
            Some(OperatingMode::AltHold)
        );
        assert_eq!(
            FailsafeEngine::mode_for_action(Warn, OperatingMode::Auto { leg: 0 }),
            None
        );
        assert_eq!(
            FailsafeEngine::mode_for_action(Disarm, OperatingMode::Stabilize),
            Some(OperatingMode::PreFlight)
        );
    }
}
