//! The top-level firmware: the main control loop tying together the
//! sensor frontend, estimator, failsafe engine, mission manager,
//! navigation cascade and the injected defects.
//!
//! One call to [`Firmware::step`] corresponds to one iteration of the
//! control loop in the paper's Figure 2 / Figure 7: the instrumented
//! drivers read (and possibly fail) the sensors, the estimator updates the
//! state model, the mode logic and failsafes pick a navigation setpoint,
//! and the mixer produces motor outputs that are handed back to the
//! simulator.

use crate::bugs::{BugId, BugSet};
use crate::defects::{DefectContext, DefectEngine, DefectOverrides};
use crate::estimator::{EstimatorState, StateEstimator};
use crate::failsafe::{FailsafeCause, FailsafeEngine, FailsafeEvent};
use crate::frontend::{SelectedSensors, SensorFrontend};
use crate::mission::MissionManager;
use crate::modes::{mode_from_protocol, mode_to_protocol, OperatingMode};
use crate::nav::{Navigator, Setpoint};
use crate::params::{FirmwareParams, FirmwareProfile};
use avis_hinj::SharedInjector;
use avis_mavlite::{AckResult, CommandKind, Message, MissionCommand, ProtocolMode};
use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use avis_sim::cow::{ChunkSink, ChunkSource};
use avis_sim::{CowVec, MotorCommands, SensorKind, SensorReading, Vec3};
use serde::{Deserialize, Serialize};

/// Compact telemetry snapshot (also broadcast as MAVLite status messages).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Simulation time of the snapshot (s).
    pub time: f64,
    /// Current operating mode.
    pub mode: OperatingMode,
    /// Whether the motors are armed.
    pub armed: bool,
    /// Estimated altitude above home (m).
    pub altitude: f64,
    /// Estimated climb rate (m/s).
    pub climb_rate: f64,
    /// Estimated horizontal position (m).
    pub position: Vec3,
    /// Index of the active mission item.
    pub mission_index: usize,
    /// Whether the firmware believes it is on the ground.
    pub landed: bool,
}

/// Internal phase of a return-to-launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum RtlPhase {
    Travel { cruise_altitude: f64 },
    Landing,
}

impl RtlPhase {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            RtlPhase::Travel { cruise_altitude } => {
                w.u8(0);
                w.f64(*cruise_altitude);
            }
            RtlPhase::Landing => w.u8(1),
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> CodecResult<RtlPhase> {
        Ok(match r.u8()? {
            0 => RtlPhase::Travel {
                cruise_altitude: r.f64()?,
            },
            1 => RtlPhase::Landing,
            _ => return Err(CodecError::Malformed("rtl phase tag")),
        })
    }
}

/// A point-in-time capture of a [`Firmware`], taken mid-run by
/// [`Firmware::snapshot`]. The whole control stack is captured —
/// estimator, navigator PIDs, failsafe engine, mission progress, mode
/// state machines, outbox and defect bookkeeping — so a restored firmware
/// continues bit-identically to the original given the same sensor
/// readings.
///
/// Restoring requires a [`SharedInjector`] handle because the captured
/// firmware's handle points at the injector of the *recording* run; a
/// forked run owns a fresh injector (same prefix records, possibly a
/// different remaining plan) and the restore rebinds both the firmware's
/// own handle and its sensor frontend's.
///
/// Capture is O(1) in the run length: the growing defect log is backed
/// by a [`CowVec`], so [`Firmware::snapshot`] seals the log's tail into
/// an `Arc`-shared chunk and the capture shares the history structurally
/// instead of deep-cloning it.
#[derive(Debug, Clone)]
pub struct FirmwareSnapshot {
    firmware: Firmware,
}

impl FirmwareSnapshot {
    /// Simulation time of the capture (s) — the time of the last
    /// [`Firmware::step`] before the snapshot.
    pub fn time(&self) -> f64 {
        self.firmware.time
    }

    /// Rebuilds the captured firmware, pointing it at `injector`.
    pub fn restore(&self, injector: SharedInjector) -> Firmware {
        self.clone().into_restored(injector)
    }

    /// Consuming form of [`FirmwareSnapshot::restore`], for callers that
    /// own the snapshot and want to avoid the extra clone.
    pub fn into_restored(self, injector: SharedInjector) -> Firmware {
        let mut firmware = self.firmware;
        firmware.injector = injector.clone();
        firmware.frontend.rebind_injector(injector);
        firmware
    }

    /// Approximate heap footprint *exclusively owned* by the captured
    /// state (bytes), used by checkpoint caches to enforce their memory
    /// budget. The `Arc`-shared defect-log chunks are accounted once per
    /// distinct chunk through [`FirmwareSnapshot::for_each_chunk`].
    pub fn approx_bytes(&self) -> usize {
        let fw = &self.firmware;
        std::mem::size_of::<Firmware>()
            + fw.mode_history.len() * std::mem::size_of::<(f64, OperatingMode)>()
            + fw.outbox.len() * std::mem::size_of::<Message>()
            + fw.defect_log.exclusive_bytes()
            + std::mem::size_of_val(fw.failsafes.events())
            + fw.mission.items().len() * 64
    }

    /// Visits the `Arc`-shared defect-log chunks as `(identity, bytes)`
    /// pairs (see [`CowVec::for_each_chunk`]).
    pub fn for_each_chunk(&self, f: &mut dyn FnMut(usize, usize)) {
        self.firmware.defect_log.for_each_chunk(f);
    }

    /// The delta from `prev` to this capture. The always-moving control
    /// state (estimator, navigator, mode bookkeeping, outbox) is stored
    /// whole; the rarely-moving components — sensor health, failsafe
    /// latches, defect triggers, mission progress — are stored only when
    /// they actually changed since `prev` (boxed, so an unchanged
    /// component costs one null pointer); the static components (profile,
    /// parameters) are never stored and the append-only histories are
    /// stored as suffixes / `Arc`-shared chunk lists. Only valid between
    /// captures of the same run.
    pub fn diff(&self, prev: &FirmwareSnapshot) -> FirmwareDelta {
        let fw = &self.firmware;
        let base = &prev.firmware;
        debug_assert!(
            fw.profile == base.profile && fw.params == base.params,
            "firmware deltas only exist within one run"
        );
        let (mode_history_base, mode_history_suffix) = if base.mode_history.len()
            <= fw.mode_history.len()
            && base.mode_history == fw.mode_history[..base.mode_history.len()]
        {
            (
                base.mode_history.len(),
                fw.mode_history[base.mode_history.len()..].to_vec(),
            )
        } else {
            // Defensive fallback: the history is append-only along a run,
            // but an unexpected base still yields a correct (just larger)
            // delta.
            (0, fw.mode_history.clone())
        };
        FirmwareDelta {
            estimator: fw.estimator.dynamics(),
            navigator: fw.navigator.dynamics(),
            health: (fw.frontend.health() != base.frontend.health())
                .then(|| Box::new(fw.frontend.health().clone())),
            failsafes: (fw.failsafes != base.failsafes).then(|| Box::new(fw.failsafes.clone())),
            defects: (fw.defects != base.defects).then(|| Box::new(fw.defects.clone())),
            mission: (fw.mission != base.mission).then(|| Box::new(fw.mission.clone())),
            mode: fw.mode,
            armed: fw.armed,
            home: fw.home,
            time: fw.time,
            takeoff_target: fw.takeoff_target,
            after_takeoff: fw.after_takeoff,
            guided_target: fw.guided_target,
            hold_position: fw.hold_position,
            rtl_phase: fw.rtl_phase,
            touchdown_timer: fw.touchdown_timer,
            last_heartbeat: fw.last_heartbeat,
            last_status: fw.last_status,
            last_selected: fw.last_selected,
            mode_history_base,
            mode_history_suffix,
            outbox: fw.outbox.clone(),
            defect_log: fw.defect_log.delta_from(&base.defect_log),
        }
    }

    /// Re-materialises the capture `delta` was diffed *to*, using `self`
    /// as the capture it was diffed *from*.
    pub fn apply(&self, delta: &FirmwareDelta) -> FirmwareSnapshot {
        let mut fw = self.firmware.clone();
        fw.estimator.restore_dynamics(&delta.estimator);
        fw.navigator.restore_dynamics(&delta.navigator);
        if let Some(health) = &delta.health {
            fw.frontend.restore_health((**health).clone());
        }
        if let Some(failsafes) = &delta.failsafes {
            fw.failsafes = (**failsafes).clone();
        }
        if let Some(defects) = &delta.defects {
            fw.defects = (**defects).clone();
        }
        if let Some(mission) = &delta.mission {
            fw.mission = (**mission).clone();
        }
        fw.mode = delta.mode;
        fw.armed = delta.armed;
        fw.home = delta.home;
        fw.time = delta.time;
        fw.takeoff_target = delta.takeoff_target;
        fw.after_takeoff = delta.after_takeoff;
        fw.guided_target = delta.guided_target;
        fw.hold_position = delta.hold_position;
        fw.rtl_phase = delta.rtl_phase;
        fw.touchdown_timer = delta.touchdown_timer;
        fw.last_heartbeat = delta.last_heartbeat;
        fw.last_status = delta.last_status;
        fw.last_selected = delta.last_selected;
        fw.mode_history.truncate(delta.mode_history_base);
        fw.mode_history
            .extend_from_slice(&delta.mode_history_suffix);
        fw.outbox.clone_from(&delta.outbox);
        fw.defect_log = CowVec::apply_delta(&self.firmware.defect_log, &delta.defect_log);
        FirmwareSnapshot { firmware: fw }
    }
}

/// The dynamic slice of a [`FirmwareSnapshot`] relative to an earlier
/// capture of the same run (see [`FirmwareSnapshot::diff`]). The static
/// control-stack structure — profile, parameters, mission items while
/// unchanged, defect catalog — lives once in the chain's base keyframe.
#[derive(Debug, Clone)]
pub struct FirmwareDelta {
    estimator: crate::estimator::EstimatorDynamics,
    navigator: crate::nav::NavDynamics,
    health: Option<Box<crate::frontend::SensorHealth>>,
    failsafes: Option<Box<FailsafeEngine>>,
    defects: Option<Box<DefectEngine>>,
    mission: Option<Box<MissionManager>>,
    mode: OperatingMode,
    armed: bool,
    home: Vec3,
    time: f64,
    takeoff_target: f64,
    after_takeoff: OperatingMode,
    guided_target: Option<Vec3>,
    hold_position: Vec3,
    rtl_phase: RtlPhase,
    touchdown_timer: f64,
    last_heartbeat: f64,
    last_status: f64,
    last_selected: SelectedSensors,
    mode_history_base: usize,
    mode_history_suffix: Vec<(f64, OperatingMode)>,
    outbox: Vec<Message>,
    defect_log: avis_sim::CowDelta<(f64, DefectOverrides)>,
}

impl FirmwareDelta {
    /// Simulation time of the captured cut (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Approximate heap + inline bytes exclusively owned by the delta
    /// (the `Arc`-shared defect-log chunks are accounted once per
    /// distinct chunk through [`FirmwareDelta::for_each_chunk`]).
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>()
            + self.mode_history_suffix.len() * std::mem::size_of::<(f64, OperatingMode)>()
            + self.outbox.len() * std::mem::size_of::<Message>()
            + self.defect_log.exclusive_bytes();
        if let Some(health) = &self.health {
            bytes += std::mem::size_of::<crate::frontend::SensorHealth>()
                + health.failed_instances().count() * 16
                + 128;
        }
        if self.failsafes.is_some() {
            bytes += std::mem::size_of::<FailsafeEngine>() + 64;
        }
        if self.defects.is_some() {
            bytes += std::mem::size_of::<DefectEngine>() + 64;
        }
        if let Some(mission) = &self.mission {
            bytes += std::mem::size_of::<MissionManager>() + mission.items().len() * 64;
        }
        bytes
    }

    /// Visits the `Arc`-shared defect-log chunks as `(identity, bytes)`
    /// pairs (see [`CowVec::for_each_chunk`]).
    pub fn for_each_chunk(&self, f: &mut dyn FnMut(usize, usize)) {
        self.defect_log.for_each_chunk(f);
    }

    /// Serialise the delta bit-exactly. The defect-log chunks are handed
    /// to `sink` for content-addressed storage and deduplication; only
    /// their hashes land in the byte stream. The firmware outbox is
    /// serialised through the wire codec ([`avis_mavlite::encode_frame`])
    /// so the persistent format reuses the protocol's framing and CRC.
    pub fn encode(&self, w: &mut ByteWriter, sink: &mut dyn ChunkSink) {
        self.estimator.encode(w);
        self.navigator.encode(w);
        w.option(self.health.as_deref(), |w, h| h.encode(w));
        w.option(self.failsafes.as_deref(), |w, f| f.encode(w));
        w.option(self.defects.as_deref(), |w, d| d.encode(w));
        w.option(self.mission.as_deref(), |w, m| m.encode(w));
        self.mode.encode(w);
        w.bool(self.armed);
        self.home.encode(w);
        w.f64(self.time);
        w.f64(self.takeoff_target);
        self.after_takeoff.encode(w);
        w.option(self.guided_target.as_ref(), |w, v| v.encode(w));
        self.hold_position.encode(w);
        self.rtl_phase.encode(w);
        w.f64(self.touchdown_timer);
        w.f64(self.last_heartbeat);
        w.f64(self.last_status);
        self.last_selected.encode(w);
        w.usize(self.mode_history_base);
        w.seq(&self.mode_history_suffix, |w, (t, m)| {
            w.f64(*t);
            m.encode(w);
        });
        w.seq(&self.outbox, |w, m| {
            w.bytes(&avis_mavlite::encode_frame(m, 0));
        });
        self.defect_log.encode_chunked(w, sink, &mut |w, (t, o)| {
            w.f64(*t);
            o.encode(w);
        });
    }

    /// Decode a delta previously written by [`FirmwareDelta::encode`],
    /// resolving defect-log chunk references through `source`.
    pub fn decode(
        r: &mut ByteReader<'_>,
        source: &mut dyn ChunkSource,
    ) -> CodecResult<FirmwareDelta> {
        Ok(FirmwareDelta {
            estimator: crate::estimator::EstimatorDynamics::decode(r)?,
            navigator: crate::nav::NavDynamics::decode(r)?,
            health: r.option(|r| Ok(Box::new(crate::frontend::SensorHealth::decode(r)?)))?,
            failsafes: r.option(|r| Ok(Box::new(FailsafeEngine::decode(r)?)))?,
            defects: r.option(|r| Ok(Box::new(DefectEngine::decode(r)?)))?,
            mission: r.option(|r| Ok(Box::new(MissionManager::decode(r)?)))?,
            mode: OperatingMode::decode(r)?,
            armed: r.bool()?,
            home: Vec3::decode(r)?,
            time: r.f64()?,
            takeoff_target: r.f64()?,
            after_takeoff: OperatingMode::decode(r)?,
            guided_target: r.option(Vec3::decode)?,
            hold_position: Vec3::decode(r)?,
            rtl_phase: RtlPhase::decode(r)?,
            touchdown_timer: r.f64()?,
            last_heartbeat: r.f64()?,
            last_status: r.f64()?,
            last_selected: SelectedSensors::decode(r)?,
            mode_history_base: r.usize()?,
            mode_history_suffix: r.seq(|r| Ok((r.f64()?, OperatingMode::decode(r)?)))?,
            outbox: r.seq(|r| {
                let frame = r.bytes()?;
                let (msg, _seq, used) = avis_mavlite::decode_frame(&frame)
                    .map_err(|_| CodecError::Malformed("outbox frame"))?;
                if used != frame.len() {
                    return Err(CodecError::Malformed("outbox frame length"));
                }
                Ok(msg)
            })?,
            defect_log: avis_sim::CowDelta::decode_chunked(r, source, &mut |r| {
                Ok((r.f64()?, DefectOverrides::decode(r)?))
            })?,
        })
    }
}

/// The UAV control firmware.
#[derive(Debug, Clone)]
pub struct Firmware {
    profile: FirmwareProfile,
    params: FirmwareParams,
    injector: SharedInjector,
    frontend: SensorFrontend,
    estimator: StateEstimator,
    navigator: Navigator,
    failsafes: FailsafeEngine,
    defects: DefectEngine,
    mission: MissionManager,
    mode: OperatingMode,
    armed: bool,
    home: Vec3,
    time: f64,
    takeoff_target: f64,
    /// Mode to enter once the takeoff altitude is reached.
    after_takeoff: OperatingMode,
    guided_target: Option<Vec3>,
    hold_position: Vec3,
    rtl_phase: RtlPhase,
    touchdown_timer: f64,
    mode_history: Vec<(f64, OperatingMode)>,
    outbox: Vec<Message>,
    last_heartbeat: f64,
    last_status: f64,
    last_selected: SelectedSensors,
    defect_log: CowVec<(f64, DefectOverrides)>,
}

impl Firmware {
    /// Creates a firmware instance with the given profile, injected-defect
    /// set and fault injector handle.
    pub fn new(profile: FirmwareProfile, bugs: BugSet, injector: SharedInjector) -> Self {
        let params = FirmwareParams::for_profile(profile);
        let navigator = Navigator::new(&params);
        let mut fw = Firmware {
            profile,
            params,
            injector: injector.clone(),
            frontend: SensorFrontend::new(injector),
            estimator: StateEstimator::default(),
            navigator,
            failsafes: FailsafeEngine::new(),
            defects: DefectEngine::new(bugs),
            mission: MissionManager::new(),
            mode: OperatingMode::PreFlight,
            armed: false,
            home: Vec3::ZERO,
            time: 0.0,
            takeoff_target: 0.0,
            after_takeoff: OperatingMode::Guided,
            guided_target: None,
            hold_position: Vec3::ZERO,
            rtl_phase: RtlPhase::Travel {
                cruise_altitude: 15.0,
            },
            touchdown_timer: 0.0,
            mode_history: Vec::new(),
            outbox: Vec::new(),
            last_heartbeat: -10.0,
            last_status: -10.0,
            last_selected: SelectedSensors::default(),
            defect_log: CowVec::new(),
        };
        fw.record_mode(0.0);
        fw
    }

    /// Creates a firmware with custom parameters (ablation experiments).
    pub fn with_params(
        profile: FirmwareProfile,
        params: FirmwareParams,
        bugs: BugSet,
        injector: SharedInjector,
    ) -> Self {
        let mut fw = Firmware::new(profile, bugs, injector);
        fw.navigator = Navigator::new(&params);
        fw.params = params;
        fw
    }

    /// The firmware profile.
    pub fn profile(&self) -> FirmwareProfile {
        self.profile
    }

    /// The firmware parameters.
    pub fn params(&self) -> &FirmwareParams {
        &self.params
    }

    /// The current operating mode.
    pub fn mode(&self) -> OperatingMode {
        self.mode
    }

    /// Whether this firmware's control path still matches `other`'s:
    /// same operating mode and same arming state. Lockstep batching uses
    /// this as its lane-eviction predicate — once the mode paths split,
    /// the lanes' estimator and navigation behaviour stops being shared
    /// work worth advancing together, and the departed lane finishes on
    /// the scalar path.
    pub fn control_path_matches(&self, other: &Firmware) -> bool {
        self.mode == other.mode && self.armed == other.armed
    }

    /// Whether the motors are armed.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// The launch (home) position.
    pub fn home(&self) -> Vec3 {
        self.home
    }

    /// The current state estimate.
    pub fn estimate(&self) -> &EstimatorState {
        self.estimator.state()
    }

    /// Every mode transition so far, as `(time, mode)` pairs.
    pub fn mode_history(&self) -> &[(f64, OperatingMode)] {
        &self.mode_history
    }

    /// Failsafe events that have fired.
    pub fn failsafe_events(&self) -> &[FailsafeEvent] {
        self.failsafes.events()
    }

    /// Steps at which injected defects were active (diagnostics). Backed
    /// by a copy-on-write vector so snapshots share the history.
    pub fn defect_log(&self) -> &CowVec<(f64, DefectOverrides)> {
        &self.defect_log
    }

    /// The mission manager (read access).
    pub fn mission(&self) -> &MissionManager {
        &self.mission
    }

    /// A compact telemetry snapshot.
    pub fn telemetry(&self) -> Telemetry {
        let est = self.estimator.state();
        Telemetry {
            time: self.time,
            mode: self.mode,
            armed: self.armed,
            altitude: est.altitude,
            climb_rate: est.climb_rate,
            position: est.position,
            mission_index: self.mission.current_index(),
            landed: !self.armed || (est.altitude < 0.3 && est.climb_rate.abs() < 0.3),
        }
    }

    /// Captures the firmware's complete state so a later run can resume
    /// from this exact point (see [`FirmwareSnapshot`]). Seals the
    /// defect log's tail so the capture shares the history structurally
    /// (O(1) in the run length) rather than deep-cloning it.
    pub fn snapshot(&mut self) -> FirmwareSnapshot {
        self.defect_log.seal();
        FirmwareSnapshot {
            firmware: self.clone(),
        }
    }

    /// Drains the outgoing MAVLite messages (heartbeats, status, acks,
    /// mission protocol responses).
    pub fn drain_outbox(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.outbox)
    }

    /// Drains the outgoing messages into `out` (cleared first), keeping
    /// both buffers' capacity so a tick loop that reuses `out` performs no
    /// steady-state allocations.
    pub fn drain_outbox_into(&mut self, out: &mut Vec<Message>) {
        out.clear();
        out.append(&mut self.outbox);
    }

    /// Handles one incoming ground-station message.
    pub fn handle_message(&mut self, msg: &Message) {
        match *msg {
            Message::ArmDisarm { arm } => self.handle_arm(arm),
            Message::SetMode { mode } => self.handle_set_mode(mode),
            Message::CommandTakeoff { altitude } => self.handle_takeoff_command(altitude),
            Message::CommandGoto { x, y, z } if self.mode == OperatingMode::Guided => {
                self.guided_target = Some(Vec3::new(x, y, z));
            }
            Message::MissionCount { .. } | Message::MissionItemMsg { .. } => {
                let responses = self.mission.handle_message(msg);
                self.outbox.extend(responses);
            }
            _ => {}
        }
    }

    /// Handles a batch of incoming messages in order.
    pub fn handle_messages<'a, I: IntoIterator<Item = &'a Message>>(&mut self, msgs: I) {
        for m in msgs {
            self.handle_message(m);
        }
    }

    fn handle_arm(&mut self, arm: bool) {
        if !arm {
            self.armed = false;
            self.transition_to(OperatingMode::PreFlight);
            self.outbox.push(Message::CommandAck {
                command: CommandKind::Arm,
                result: AckResult::Accepted,
            });
            return;
        }
        // Seeded protocol defect (PROTO-101): the arm handler is not
        // idempotent. A correct firmware re-acknowledges an arm request
        // received while armed and changes nothing; the buggy one treats
        // it as a toggle, disarming the motors mid-air. The stock path
        // below is safe — `prearm_checks_pass` rejects arm-while-armed —
        // so this branch is only reachable when the defect is enabled
        // *and* a link fault duplicates or storms the arm command.
        if self.armed && self.defects.bugs().is_enabled(BugId::ProtoDoubleArm) {
            self.armed = false;
            self.transition_to(OperatingMode::PreFlight);
            self.defect_log.push((
                self.time,
                DefectOverrides {
                    active: vec![BugId::ProtoDoubleArm],
                    ..Default::default()
                },
            ));
            self.outbox.push(Message::CommandAck {
                command: CommandKind::Arm,
                result: AckResult::Accepted,
            });
            return;
        }
        let ok = self.prearm_checks_pass();
        if ok {
            self.armed = true;
            let est = self.estimator.state();
            self.home = Vec3::new(est.position.x, est.position.y, 0.0);
            self.hold_position = self.home;
            self.navigator.reset(est.yaw);
        }
        self.outbox.push(Message::CommandAck {
            command: CommandKind::Arm,
            result: if ok {
                AckResult::Accepted
            } else {
                AckResult::Rejected
            },
        });
    }

    fn prearm_checks_pass(&self) -> bool {
        if self.mode != OperatingMode::PreFlight {
            return false;
        }
        let health = self.frontend.health();
        if health.imu_failed() {
            return false;
        }
        if self.params.arming_requires_gps && !health.kind_available(SensorKind::Gps) {
            return false;
        }
        if self.params.arming_requires_compass && !health.kind_available(SensorKind::Compass) {
            return false;
        }
        true
    }

    fn handle_set_mode(&mut self, requested: ProtocolMode) {
        let target = mode_from_protocol(requested);
        let accepted = self.request_mode(target);
        self.outbox.push(Message::CommandAck {
            command: CommandKind::SetMode,
            result: if accepted {
                AckResult::Accepted
            } else {
                AckResult::Rejected
            },
        });
    }

    fn handle_takeoff_command(&mut self, altitude: f64) {
        let accepted = self.armed
            && matches!(self.mode, OperatingMode::Guided | OperatingMode::PreFlight)
            && altitude > 0.0;
        // Seeded crash defect (PROTO-102): the takeoff handler asserts
        // instead of rejecting when the command is accepted against a
        // position estimate that already went stale. A correct firmware
        // would refuse the climb; the buggy one aborts the process. The
        // state is only reachable when a GPS failure lands *between*
        // arming and the mode change — i.e. a delayed command link — so
        // pure sensor-fault campaigns never see it, and the checker must
        // contain the unwind to keep the campaign alive.
        if accepted
            && self.defects.bugs().is_enabled(BugId::ProtoPanicOnStaleEkf)
            && !self.estimator.state().position_ok
        {
            self.defect_log.push((
                self.time,
                DefectOverrides {
                    active: vec![BugId::ProtoPanicOnStaleEkf],
                    ..Default::default()
                },
            ));
            panic!(
                "PROTO-102: takeoff commanded on a stale position estimate \
                 ({:.3}s since last GPS fix)",
                self.estimator.state().gps_loss_seconds
            );
        }
        if accepted {
            self.takeoff_target = altitude;
            self.after_takeoff = OperatingMode::Guided;
            self.transition_to(OperatingMode::Takeoff);
        }
        self.outbox.push(Message::CommandAck {
            command: CommandKind::Takeoff,
            result: if accepted {
                AckResult::Accepted
            } else {
                AckResult::Rejected
            },
        });
    }

    /// Requests a mode change, applying the same validity checks a ground
    /// station request goes through. Returns whether the change happened.
    pub fn request_mode(&mut self, target: OperatingMode) -> bool {
        if !self.armed && !matches!(target, OperatingMode::PreFlight) {
            // ArduPilot allows selecting modes while disarmed; we accept the
            // selection only for Auto (mission start happens at arm+auto)
            // and reject flight modes that need the vehicle armed.
            if !target.is_auto() {
                return false;
            }
        }
        if target.requires_position()
            && !self.estimator.state().position_ok
            && self.frontend.health().kind_failed(SensorKind::Gps)
        {
            return false;
        }
        match target {
            OperatingMode::Auto { .. } => {
                if !self.mission.has_mission() {
                    return false;
                }
                self.mission.restart();
                self.start_current_mission_item();
                true
            }
            OperatingMode::Land => {
                self.hold_position = self.estimator.state().position;
                self.transition_to(OperatingMode::Land);
                true
            }
            OperatingMode::ReturnToLaunch => {
                self.enter_rtl();
                true
            }
            OperatingMode::PosHold | OperatingMode::Brake => {
                self.hold_position = self.estimator.state().position;
                self.transition_to(target);
                true
            }
            other => {
                self.transition_to(other);
                true
            }
        }
    }

    fn enter_rtl(&mut self) {
        let est = self.estimator.state();
        let cruise = est.altitude.max(self.params.rtl_altitude);
        self.rtl_phase = RtlPhase::Travel {
            cruise_altitude: cruise,
        };
        self.transition_to(OperatingMode::ReturnToLaunch);
    }

    /// Starts executing the current mission item, switching to the
    /// appropriate operating mode.
    fn start_current_mission_item(&mut self) {
        match self.mission.current_command() {
            Some(MissionCommand::Takeoff { altitude }) => {
                self.takeoff_target = altitude;
                self.after_takeoff = OperatingMode::Auto {
                    leg: self.mission.current_index() as u8,
                };
                self.transition_to(OperatingMode::Takeoff);
            }
            Some(MissionCommand::Waypoint { .. }) => {
                self.transition_to(OperatingMode::Auto {
                    leg: self.mission.current_index() as u8,
                });
            }
            Some(MissionCommand::Land) => {
                self.hold_position = self.estimator.state().position;
                self.transition_to(OperatingMode::Land);
            }
            Some(MissionCommand::ReturnToLaunch) => self.enter_rtl(),
            None => {
                // Mission complete: land where we are.
                self.hold_position = self.estimator.state().position;
                self.transition_to(OperatingMode::Land);
            }
        }
    }

    fn advance_mission(&mut self) {
        self.mission.advance();
        self.start_current_mission_item();
    }

    fn transition_to(&mut self, mode: OperatingMode) {
        if self.mode == mode {
            return;
        }
        self.mode = mode;
        self.touchdown_timer = 0.0;
        self.record_mode(self.time);
    }

    fn record_mode(&mut self, time: f64) {
        self.mode_history.push((time, self.mode));
        self.injector.report_mode(time, self.mode.code());
    }

    /// Runs one control-loop iteration and returns the motor commands for
    /// the simulator.
    pub fn step(&mut self, readings: &[SensorReading], time: f64, dt: f64) -> MotorCommands {
        self.time = time;
        // 1. Instrumented sensor drivers (fault injection happens here).
        let selected = self.frontend.ingest(readings, time);
        self.last_selected = selected;
        // 2. State estimation.
        let estimate = self.estimator.update(&selected, self.frontend.health(), dt);
        // 3. Injected-defect evaluation (before failsafes, since some
        //    defects suppress them).
        let battery_failsafe_fired = self.failsafes.has_fired(FailsafeCause::BatteryLow)
            || self.failsafes.has_fired(FailsafeCause::BatteryCritical);
        let overrides = {
            let ctx = DefectContext {
                mode: self.mode,
                health: self.frontend.health(),
                estimate: &estimate,
                time,
                home: self.home,
                battery_failsafe_fired,
                profile: self.profile,
            };
            self.defects.evaluate(&ctx)
        };
        if !overrides.is_empty() {
            self.defect_log.push((time, overrides.clone()));
        }
        // 4. Failsafes (unless an active defect suppresses them).
        if let Some(event) = self.failsafes.evaluate(
            self.mode,
            self.frontend.health(),
            &selected,
            &estimate,
            &self.params,
            self.armed,
            time,
        ) {
            if !overrides.suppress_failsafes {
                if let Some(new_mode) = FailsafeEngine::mode_for_action(event.action, self.mode) {
                    match new_mode {
                        OperatingMode::ReturnToLaunch => self.enter_rtl(),
                        OperatingMode::Land => {
                            self.hold_position = self.estimator.state().position;
                            self.transition_to(OperatingMode::Land);
                        }
                        OperatingMode::PreFlight => {
                            self.armed = false;
                            self.transition_to(OperatingMode::PreFlight);
                        }
                        other => self.transition_to(other),
                    }
                }
            }
        }
        // 5. Defect-forced mode change.
        if let Some(forced) = overrides.force_mode {
            if forced == OperatingMode::Land {
                self.hold_position = self.estimator.state().position;
            }
            self.transition_to(forced);
        }
        // 6. Mode logic -> setpoint.
        let mut setpoint = self.mode_setpoint(&overrides, dt);
        // 7. Defect setpoint override.
        if let Some(sp) = overrides.setpoint {
            if self.armed {
                setpoint = sp;
            }
        }
        // 8. Telemetry.
        self.emit_telemetry(time);
        // 9. Motor output.
        if overrides.cut_motors {
            return MotorCommands::IDLE;
        }
        let rates = self.last_selected.gyro.unwrap_or(Vec3::ZERO);
        let estimate = *self.estimator.state();
        self.navigator.update(setpoint, &estimate, rates, dt)
    }

    /// Computes the navigation setpoint for the current mode, advancing the
    /// mission / takeoff / landing state machines as needed.
    fn mode_setpoint(&mut self, overrides: &DefectOverrides, dt: f64) -> Setpoint {
        let est = *self.estimator.state();
        if !self.armed {
            return Setpoint::Idle;
        }
        match self.mode {
            OperatingMode::PreFlight | OperatingMode::Crashed => Setpoint::GroundIdle,
            OperatingMode::Takeoff => {
                let reached = est.altitude >= self.takeoff_target - self.params.altitude_acceptance;
                if reached && !overrides.disable_altitude_reached {
                    let next = self.after_takeoff;
                    if next.is_auto() {
                        self.advance_mission();
                    } else {
                        self.transition_to(next);
                    }
                    return self.mode_setpoint(overrides, dt);
                }
                Setpoint::ClimbTo {
                    altitude: self.takeoff_target,
                    hold: Vec3::new(self.home.x, self.home.y, 0.0),
                }
            }
            OperatingMode::Auto { .. } => match self.mission.current_command() {
                Some(MissionCommand::Waypoint { x, y, z }) => {
                    let target = Vec3::new(x, y, z);
                    let reached = est.position.horizontal_distance(target)
                        < self.params.waypoint_acceptance_radius
                        && (est.altitude - z).abs() < self.params.altitude_acceptance * 2.0;
                    if reached {
                        self.advance_mission();
                        return self.mode_setpoint(overrides, dt);
                    }
                    Setpoint::GotoPosition {
                        target,
                        speed: self.params.waypoint_speed,
                    }
                }
                Some(_) | None => {
                    // The current item is not a waypoint: let the mission
                    // state machine pick the right mode for it.
                    self.start_current_mission_item();
                    self.mode_setpoint(overrides, dt)
                }
            },
            OperatingMode::Guided => match self.guided_target {
                Some(target) => Setpoint::GotoPosition {
                    target,
                    speed: self.params.waypoint_speed,
                },
                None => Setpoint::HoldPosition {
                    target: Vec3::new(est.position.x, est.position.y, est.altitude),
                },
            },
            OperatingMode::PosHold | OperatingMode::Brake => Setpoint::HoldPosition {
                target: self.hold_position,
            },
            OperatingMode::AltHold => Setpoint::HoldAltitude {
                altitude: est.altitude,
            },
            OperatingMode::Stabilize => Setpoint::RawThrottle { throttle: 0.38 },
            OperatingMode::Land => {
                let rate = if est.altitude > self.params.land_final_altitude {
                    self.params.land_descent_rate
                } else {
                    self.params.land_final_rate
                };
                self.update_touchdown(dt, &est);
                Setpoint::Descend {
                    rate,
                    hold: Some(Vec3::new(self.hold_position.x, self.hold_position.y, 0.0)),
                }
            }
            OperatingMode::ReturnToLaunch => {
                let cruise = match self.rtl_phase {
                    RtlPhase::Travel { cruise_altitude } => cruise_altitude,
                    RtlPhase::Landing => 0.0,
                };
                match self.rtl_phase {
                    RtlPhase::Travel { .. } => {
                        let target = Vec3::new(self.home.x, self.home.y, cruise);
                        if est.position.horizontal_distance(target)
                            < self.params.waypoint_acceptance_radius
                        {
                            self.rtl_phase = RtlPhase::Landing;
                            self.hold_position = Vec3::new(self.home.x, self.home.y, 0.0);
                        }
                        Setpoint::GotoPosition {
                            target,
                            speed: self.params.waypoint_speed,
                        }
                    }
                    RtlPhase::Landing => {
                        let rate = if est.altitude > self.params.land_final_altitude {
                            self.params.rtl_descent_rate
                        } else {
                            self.params.land_final_rate
                        };
                        self.update_touchdown(dt, &est);
                        Setpoint::Descend {
                            rate,
                            hold: Some(Vec3::new(self.home.x, self.home.y, 0.0)),
                        }
                    }
                }
            }
        }
    }

    fn update_touchdown(&mut self, dt: f64, est: &EstimatorState) {
        if est.altitude < 0.3 && est.climb_rate > -0.3 {
            self.touchdown_timer += dt;
            if self.touchdown_timer > 1.0 {
                self.armed = false;
                self.transition_to(OperatingMode::PreFlight);
            }
        } else {
            self.touchdown_timer = 0.0;
        }
    }

    fn emit_telemetry(&mut self, time: f64) {
        if time - self.last_heartbeat >= 0.1 {
            self.last_heartbeat = time;
            self.outbox.push(Message::Heartbeat {
                mode: mode_to_protocol(self.mode),
                armed: self.armed,
            });
        }
        if time - self.last_status >= 0.05 {
            self.last_status = time;
            let t = self.telemetry();
            self.outbox.push(Message::Status {
                x: t.position.x,
                y: t.position.y,
                altitude: t.altitude,
                climb_rate: t.climb_rate,
                mission_seq: t.mission_index as u16,
                landed: t.landed,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_mavlite::square_mission;
    use avis_sim::simulator::{SimConfig, Simulator};
    use avis_sim::{Environment, SensorNoise};

    const DT: f64 = 0.0025;

    fn make_sim() -> Simulator {
        let mut config = SimConfig {
            dt: DT,
            ..SimConfig::default()
        };
        config.sensors.noise = SensorNoise::noiseless();
        Simulator::new(config, Environment::open_field())
    }

    fn make_firmware(bugs: BugSet) -> (Firmware, SharedInjector) {
        let injector = SharedInjector::passthrough();
        (
            Firmware::new(FirmwareProfile::ArduPilotLike, bugs, injector.clone()),
            injector,
        )
    }

    /// Runs the full firmware-in-the-loop simulation for `seconds`.
    fn run(fw: &mut Firmware, sim: &mut Simulator, seconds: f64) {
        let steps = (seconds / DT) as usize;
        let mut readings = sim.step(&MotorCommands::IDLE).readings;
        for _ in 0..steps {
            let cmd = fw.step(&readings, sim.time(), DT);
            let out = sim.step(&cmd);
            readings = out.readings;
        }
    }

    fn upload_mission(fw: &mut Firmware, items: &[avis_mavlite::MissionItem]) {
        fw.handle_message(&Message::MissionCount {
            count: items.len() as u16,
        });
        loop {
            let responses = fw.drain_outbox();
            let mut done = false;
            for r in &responses {
                match *r {
                    Message::MissionRequest { seq } => {
                        fw.handle_message(&Message::MissionItemMsg {
                            item: items[seq as usize],
                        });
                    }
                    Message::MissionAck { accepted } => {
                        assert!(accepted);
                        done = true;
                    }
                    _ => {}
                }
            }
            if done {
                break;
            }
            assert!(!responses.is_empty(), "mission upload stalled");
        }
    }

    #[test]
    fn firmware_delta_codec_round_trips_through_chunk_store() {
        use avis_sim::codec::{ByteReader, ByteWriter};
        use avis_sim::cow::MemoryChunkStore;

        // Fly a mission far enough that the delta carries real payload:
        // mode transitions, a mission, defect-log growth and outbox
        // traffic between the base and the cut.
        let (mut fw, injector) = make_firmware(BugSet::none());
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        upload_mission(&mut fw, &square_mission(20.0, 15.0, true));
        fw.handle_message(&Message::ArmDisarm { arm: true });
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Auto,
        });
        run(&mut fw, &mut sim, 3.0);
        let base = fw.snapshot();
        run(&mut fw, &mut sim, 5.0);
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::ReturnToLaunch,
        });
        run(&mut fw, &mut sim, 2.0);
        let cut = fw.snapshot();
        let delta = cut.diff(&base);

        let mut store = MemoryChunkStore::default();
        let mut w = ByteWriter::new();
        delta.encode(&mut w, &mut store);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = FirmwareDelta::decode(&mut r, &mut store).expect("decode");
        r.finish().expect("no trailing bytes");

        // Both re-materialised firmwares must continue bit-identically.
        let mut via_delta = base.apply(&delta).restore(injector.clone());
        let mut via_codec = base.apply(&decoded).restore(injector);
        assert_eq!(via_delta.mode(), via_codec.mode());
        assert_eq!(via_delta.mode_history(), via_codec.mode_history());
        assert_eq!(via_delta.defect_log().len(), via_codec.defect_log().len());
        let mut readings = sim.step(&MotorCommands::IDLE).readings;
        for _ in 0..400 {
            let a = via_delta.step(&readings, sim.time(), DT);
            let b = via_codec.step(&readings, sim.time(), DT);
            assert_eq!(a, b, "restored firmwares diverged");
            readings = sim.step(&a).readings;
        }
        assert_eq!(via_delta.drain_outbox(), via_codec.drain_outbox());
    }

    #[test]
    fn starts_disarmed_in_preflight() {
        let (fw, _) = make_firmware(BugSet::none());
        assert_eq!(fw.mode(), OperatingMode::PreFlight);
        assert!(!fw.armed());
        assert_eq!(fw.mode_history().len(), 1);
    }

    #[test]
    fn arming_requires_healthy_sensors() {
        use avis_hinj::{FaultInjector, FaultPlan, FaultSpec};
        use avis_sim::SensorInstance;
        // All GPS failed: ArduPilot profile requires GPS to arm.
        let specs: Vec<FaultSpec> = (0..2)
            .map(|i| FaultSpec::new(SensorInstance::new(SensorKind::Gps, i), 0.0))
            .collect();
        let injector = SharedInjector::new(FaultInjector::new(FaultPlan::from_specs(specs)));
        let mut fw = Firmware::new(FirmwareProfile::ArduPilotLike, BugSet::none(), injector);
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        fw.handle_message(&Message::ArmDisarm { arm: true });
        assert!(!fw.armed());
        let acks: Vec<Message> = fw
            .drain_outbox()
            .into_iter()
            .filter(|m| {
                matches!(
                    m,
                    Message::CommandAck {
                        command: CommandKind::Arm,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(
            acks.last(),
            Some(&Message::CommandAck {
                command: CommandKind::Arm,
                result: AckResult::Rejected
            })
        );
    }

    #[test]
    fn arm_then_guided_takeoff_reaches_altitude() {
        let (mut fw, _) = make_firmware(BugSet::none());
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        fw.handle_message(&Message::ArmDisarm { arm: true });
        assert!(fw.armed());
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Guided,
        });
        fw.handle_message(&Message::CommandTakeoff { altitude: 15.0 });
        assert_eq!(fw.mode(), OperatingMode::Takeoff);
        run(&mut fw, &mut sim, 20.0);
        assert_eq!(
            fw.mode(),
            OperatingMode::Guided,
            "takeoff should complete into guided"
        );
        assert!((sim.physical_state().position.z - 15.0).abs() < 3.0);
        assert!(sim.first_collision().is_none());
    }

    #[test]
    fn duplicated_arm_is_idempotent_on_stock_firmware() {
        let (mut fw, _) = make_firmware(BugSet::none());
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        fw.handle_message(&Message::ArmDisarm { arm: true });
        assert!(fw.armed());
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Guided,
        });
        fw.handle_message(&Message::CommandTakeoff { altitude: 15.0 });
        run(&mut fw, &mut sim, 12.0);
        // A duplicated arm request mid-air is rejected and changes nothing.
        fw.handle_message(&Message::ArmDisarm { arm: true });
        assert!(fw.armed(), "stock firmware treats arm as idempotent");
        run(&mut fw, &mut sim, 5.0);
        assert!(sim.first_collision().is_none());
        assert!(fw.defect_log().is_empty());
    }

    #[test]
    fn proto_double_arm_defect_disarms_mid_air() {
        let (mut fw, _) = make_firmware(BugSet::only(BugId::ProtoDoubleArm));
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        fw.handle_message(&Message::ArmDisarm { arm: true });
        assert!(fw.armed());
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Guided,
        });
        fw.handle_message(&Message::CommandTakeoff { altitude: 15.0 });
        run(&mut fw, &mut sim, 12.0);
        assert!(sim.physical_state().position.z > 5.0, "vehicle is airborne");
        // The duplicated arm toggles the buggy handler: motors off mid-air.
        fw.handle_message(&Message::ArmDisarm { arm: true });
        assert!(!fw.armed(), "PROTO-101 disarms on a duplicated arm");
        assert_eq!(fw.mode(), OperatingMode::PreFlight);
        assert!(fw
            .defect_log()
            .iter()
            .any(|(_, o)| o.active.contains(&BugId::ProtoDoubleArm)));
        run(&mut fw, &mut sim, 6.0);
        assert!(
            sim.first_collision().is_some(),
            "the unpowered vehicle falls out of the sky"
        );
    }

    #[test]
    fn full_auto_mission_flies_and_lands_safely() {
        let (mut fw, injector) = make_firmware(BugSet::none());
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        upload_mission(&mut fw, &square_mission(15.0, 10.0, true));
        fw.handle_message(&Message::ArmDisarm { arm: true });
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Auto,
        });
        assert_eq!(fw.mode(), OperatingMode::Takeoff);
        run(&mut fw, &mut sim, 90.0);
        // Mission is over: landed at home, disarmed, no crash.
        assert!(!fw.armed(), "vehicle should have landed and disarmed");
        assert_eq!(fw.mode(), OperatingMode::PreFlight);
        assert!(sim.physical_state().position.z < 0.5);
        assert!(
            sim.physical_state()
                .position
                .horizontal_distance(Vec3::ZERO)
                < 4.0,
            "landed near home: {:?}",
            sim.physical_state().position
        );
        assert!(
            sim.first_collision().is_none(),
            "no crash in a fault-free mission"
        );
        // Mode transitions were reported to the injector, including auto legs.
        let transitions = injector.mode_transitions();
        assert!(transitions.len() >= 5, "transitions: {transitions:?}");
    }

    #[test]
    fn rtl_mission_returns_to_home() {
        let (mut fw, _) = make_firmware(BugSet::none());
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        upload_mission(&mut fw, &square_mission(15.0, 10.0, false));
        fw.handle_message(&Message::ArmDisarm { arm: true });
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Auto,
        });
        run(&mut fw, &mut sim, 110.0);
        assert!(!fw.armed());
        assert!(
            sim.physical_state()
                .position
                .horizontal_distance(Vec3::ZERO)
                < 4.0
        );
        assert!(sim.first_collision().is_none());
    }

    #[test]
    fn gps_loss_without_bug_triggers_safe_failsafe() {
        use avis_hinj::{FaultInjector, FaultPlan, FaultSpec};
        use avis_sim::SensorInstance;
        // Fail every GPS instance while the mission is flying waypoints.
        let specs: Vec<FaultSpec> = (0..2)
            .map(|i| FaultSpec::new(SensorInstance::new(SensorKind::Gps, i), 12.0))
            .collect();
        let injector = SharedInjector::new(FaultInjector::new(FaultPlan::from_specs(specs)));
        let mut fw = Firmware::new(FirmwareProfile::ArduPilotLike, BugSet::none(), injector);
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        upload_mission(&mut fw, &square_mission(15.0, 10.0, true));
        fw.handle_message(&Message::ArmDisarm { arm: true });
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Auto,
        });
        run(&mut fw, &mut sim, 80.0);
        // The GPS failsafe landed the vehicle without a crash.
        assert!(fw
            .failsafe_events()
            .iter()
            .any(|e| e.cause == FailsafeCause::PositionLoss));
        assert!(
            sim.first_collision().is_none(),
            "correct handling must not crash"
        );
        assert!(
            sim.physical_state().position.z < 1.0,
            "vehicle should have landed"
        );
    }

    #[test]
    fn imu_loss_without_bug_lands_safely() {
        use avis_hinj::{FaultInjector, FaultPlan, FaultSpec};
        use avis_sim::SensorInstance;
        let specs: Vec<FaultSpec> = (0..3)
            .map(|i| FaultSpec::new(SensorInstance::new(SensorKind::Accelerometer, i), 25.0))
            .collect();
        let injector = SharedInjector::new(FaultInjector::new(FaultPlan::from_specs(specs)));
        let mut fw = Firmware::new(FirmwareProfile::ArduPilotLike, BugSet::none(), injector);
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        upload_mission(&mut fw, &square_mission(15.0, 10.0, true));
        fw.handle_message(&Message::ArmDisarm { arm: true });
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Auto,
        });
        run(&mut fw, &mut sim, 80.0);
        assert!(fw
            .failsafe_events()
            .iter()
            .any(|e| e.cause == FailsafeCause::ImuLoss));
        assert!(sim.first_collision().is_none());
    }

    #[test]
    fn telemetry_messages_are_emitted() {
        let (mut fw, _) = make_firmware(BugSet::none());
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        let msgs = fw.drain_outbox();
        let heartbeats = msgs
            .iter()
            .filter(|m| matches!(m, Message::Heartbeat { .. }))
            .count();
        let statuses = msgs
            .iter()
            .filter(|m| matches!(m, Message::Status { .. }))
            .count();
        assert!(heartbeats >= 8, "heartbeats: {heartbeats}");
        assert!(statuses >= 15, "statuses: {statuses}");
        // Draining empties the outbox.
        assert!(fw.drain_outbox().is_empty());
    }

    #[test]
    fn set_mode_auto_without_mission_rejected() {
        let (mut fw, _) = make_firmware(BugSet::none());
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 0.5);
        fw.handle_message(&Message::ArmDisarm { arm: true });
        fw.drain_outbox();
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Auto,
        });
        let acks: Vec<Message> = fw
            .drain_outbox()
            .into_iter()
            .filter(|m| {
                matches!(
                    m,
                    Message::CommandAck {
                        command: CommandKind::SetMode,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(
            acks.last(),
            Some(&Message::CommandAck {
                command: CommandKind::SetMode,
                result: AckResult::Rejected
            })
        );
        assert_ne!(fw.mode(), OperatingMode::Takeoff);
    }

    #[test]
    fn apm16682_bug_crashes_when_imu_fails_during_final_landing() {
        use avis_hinj::{FaultInjector, FaultPlan, FaultSpec};
        use avis_sim::SensorInstance;
        // First run a golden mission to learn when the final landing happens:
        // instead, directly exercise the window by failing the primary
        // accelerometer late in the mission (during the land item).
        let bugs = BugSet::only(crate::bugs::BugId::Apm16682);
        // Find the approximate time the Land mode starts from a golden run.
        let (mut golden_fw, _) = make_firmware(BugSet::none());
        let mut golden_sim = make_sim();
        run(&mut golden_fw, &mut golden_sim, 1.0);
        upload_mission(&mut golden_fw, &square_mission(15.0, 10.0, true));
        golden_fw.handle_message(&Message::ArmDisarm { arm: true });
        golden_fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Auto,
        });
        run(&mut golden_fw, &mut golden_sim, 90.0);
        let land_start = golden_fw
            .mode_history()
            .iter()
            .find(|(_, m)| *m == OperatingMode::Land)
            .map(|(t, _)| *t)
            .expect("golden run should land");
        // Fail the primary accelerometer late in the landing descent, when
        // the vehicle is in its final metres.
        let golden_land_duration = 18.0;
        let inject_at = land_start + golden_land_duration;
        let injector = SharedInjector::new(FaultInjector::new(FaultPlan::from_specs(vec![
            FaultSpec::new(SensorInstance::new(SensorKind::Accelerometer, 0), inject_at),
        ])));
        let mut fw = Firmware::new(FirmwareProfile::ArduPilotLike, bugs, injector);
        let mut sim = make_sim();
        run(&mut fw, &mut sim, 1.0);
        upload_mission(&mut fw, &square_mission(15.0, 10.0, true));
        fw.handle_message(&Message::ArmDisarm { arm: true });
        fw.handle_message(&Message::SetMode {
            mode: ProtocolMode::Auto,
        });
        run(&mut fw, &mut sim, 110.0);
        assert!(
            sim.first_collision().is_some(),
            "the APM-16682 defect should crash the vehicle (defect log: {} entries)",
            fw.defect_log().len()
        );
    }
}
