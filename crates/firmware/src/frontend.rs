//! The sensor frontend: instrumented drivers with redundancy failover.
//!
//! This is where the paper's `libhinj` instrumentation lives (§V.B.1): the
//! `read()` path of every sensor driver consults the fault injector, and a
//! read that the injector fails is reported to the rest of the firmware as
//! a failed instance. The frontend then *fails over* to the next healthy
//! instance of the same kind — the behaviour the sensor-instance-symmetry
//! pruning policy relies on (the firmware reacts to the *role* of the
//! failed sensor, not to which physical instance failed).

use avis_hinj::SharedInjector;
use avis_sim::codec::{ByteReader, ByteWriter, CodecResult};
use avis_sim::{SensorInstance, SensorKind, SensorReading, SensorValue, Vec3};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A GPS solution selected by the frontend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsSolution {
    /// Position in the local frame (m).
    pub position: Vec3,
    /// Velocity in the local frame (m/s).
    pub velocity: Vec3,
}

/// Battery status selected by the frontend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryState {
    /// Terminal voltage (V).
    pub voltage: f64,
    /// Remaining capacity fraction.
    pub remaining: f64,
}

/// The per-step output of the sensor frontend: one selected measurement
/// per sensor kind (from the active instance), or `None` if every instance
/// of that kind has failed.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SelectedSensors {
    /// Body-frame specific force (m/s²).
    pub accel: Option<Vec3>,
    /// Body-frame angular rate (rad/s).
    pub gyro: Option<Vec3>,
    /// GPS solution.
    pub gps: Option<GpsSolution>,
    /// Barometric altitude (m above home).
    pub baro_altitude: Option<f64>,
    /// Magnetic heading (rad).
    pub heading: Option<f64>,
    /// Battery state.
    pub battery: Option<BatteryState>,
}

impl SelectedSensors {
    /// Serialise the selection bit-exactly (floats via their raw bits).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.option(self.accel.as_ref(), |w, v| v.encode(w));
        w.option(self.gyro.as_ref(), |w, v| v.encode(w));
        w.option(self.gps.as_ref(), |w, g| {
            g.position.encode(w);
            g.velocity.encode(w);
        });
        w.option(self.baro_altitude.as_ref(), |w, v| w.f64(*v));
        w.option(self.heading.as_ref(), |w, v| w.f64(*v));
        w.option(self.battery.as_ref(), |w, b| {
            w.f64(b.voltage);
            w.f64(b.remaining);
        });
    }

    /// Decode a selection previously written by [`SelectedSensors::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<SelectedSensors> {
        Ok(SelectedSensors {
            accel: r.option(Vec3::decode)?,
            gyro: r.option(Vec3::decode)?,
            gps: r.option(|r| {
                Ok(GpsSolution {
                    position: Vec3::decode(r)?,
                    velocity: Vec3::decode(r)?,
                })
            })?,
            baro_altitude: r.option(|r| r.f64())?,
            heading: r.option(|r| r.f64())?,
            battery: r.option(|r| {
                Ok(BatteryState {
                    voltage: r.f64()?,
                    remaining: r.f64()?,
                })
            })?,
        })
    }
}

/// Health summary per sensor kind.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SensorHealth {
    failed_instances: BTreeSet<SensorInstance>,
    active: Vec<(SensorKind, SensorInstance)>,
    total_per_kind: Vec<(SensorKind, u8)>,
}

impl SensorHealth {
    /// Whether at least one instance of `kind` is still healthy.
    pub fn kind_available(&self, kind: SensorKind) -> bool {
        self.active.iter().any(|(k, _)| *k == kind)
    }

    /// Whether the *primary* instance (index 0) of `kind` has failed.
    pub fn primary_failed(&self, kind: SensorKind) -> bool {
        self.failed_instances
            .contains(&SensorInstance::new(kind, 0))
    }

    /// Whether every instance of `kind` has failed.
    pub fn kind_failed(&self, kind: SensorKind) -> bool {
        !self.kind_available(kind) && self.total_of(kind) > 0
    }

    /// The instance currently used for `kind`, if any.
    pub fn active_instance(&self, kind: SensorKind) -> Option<SensorInstance> {
        self.active
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, i)| *i)
    }

    /// Every failed instance observed so far.
    pub fn failed_instances(&self) -> impl Iterator<Item = SensorInstance> + '_ {
        self.failed_instances.iter().copied()
    }

    /// Number of failed instances of `kind`.
    pub fn failed_count(&self, kind: SensorKind) -> usize {
        self.failed_instances
            .iter()
            .filter(|i| i.kind == kind)
            .count()
    }

    fn total_of(&self, kind: SensorKind) -> u8 {
        self.total_per_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Whether the inertial measurement unit (accelerometer + gyroscope)
    /// is fully unavailable.
    pub fn imu_failed(&self) -> bool {
        self.kind_failed(SensorKind::Accelerometer) || self.kind_failed(SensorKind::Gyroscope)
    }

    /// Serialise the health bookkeeping in deterministic order.
    pub fn encode(&self, w: &mut ByteWriter) {
        let failed: Vec<&SensorInstance> = self.failed_instances.iter().collect();
        w.seq(&failed, |w, i| i.encode(w));
        w.seq(&self.active, |w, (k, i)| {
            k.encode(w);
            i.encode(w);
        });
        w.seq(&self.total_per_kind, |w, (k, n)| {
            k.encode(w);
            w.u8(*n);
        });
    }

    /// Decode health previously written by [`SensorHealth::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<SensorHealth> {
        Ok(SensorHealth {
            failed_instances: r.seq(SensorInstance::decode)?.into_iter().collect(),
            active: r.seq(|r| Ok((SensorKind::decode(r)?, SensorInstance::decode(r)?)))?,
            total_per_kind: r.seq(|r| Ok((SensorKind::decode(r)?, r.u8()?)))?,
        })
    }
}

/// The sensor frontend.
#[derive(Debug, Clone)]
pub struct SensorFrontend {
    injector: SharedInjector,
    health: SensorHealth,
}

impl SensorFrontend {
    /// Creates a frontend reporting reads to the given injector.
    pub fn new(injector: SharedInjector) -> Self {
        SensorFrontend {
            injector,
            health: SensorHealth::default(),
        }
    }

    /// Points the frontend at a different injector handle, keeping the
    /// health bookkeeping intact. Used when a firmware restored from a
    /// snapshot must report its reads to the forked run's own injector
    /// instead of the one the snapshot was recorded against.
    pub fn rebind_injector(&mut self, injector: SharedInjector) {
        self.injector = injector;
    }

    /// The current health summary.
    pub fn health(&self) -> &SensorHealth {
        &self.health
    }

    /// Overwrites the health bookkeeping (the frontend's only mutable
    /// state). Used when a firmware is re-materialised from a delta
    /// snapshot whose health diverged from the chain's base keyframe.
    pub fn restore_health(&mut self, health: SensorHealth) {
        self.health = health;
    }

    /// Processes one step's raw readings: every read consults the fault
    /// injector (the instrumented driver path); surviving readings are
    /// reduced to one selected measurement per kind, preferring the lowest
    /// healthy instance index (primary first, then backups in order).
    pub fn ingest(&mut self, readings: &[SensorReading], time: f64) -> SelectedSensors {
        let mut selected = SelectedSensors::default();
        // The per-kind bookkeeping lives in the health struct's vectors and
        // is rebuilt in place each step, so the control loop performs no
        // per-step heap allocations once the vectors reach capacity.
        self.health.active.clear();
        self.health.total_per_kind.clear();

        // Readings arrive ordered by kind and instance index from the
        // simulator; iterate in order so instance 0 wins when healthy.
        for reading in readings {
            let kind = reading.instance.kind;
            match self
                .health
                .total_per_kind
                .iter_mut()
                .find(|(k, _)| *k == kind)
            {
                Some((_, n)) => *n += 1,
                None => self.health.total_per_kind.push((kind, 1)),
            }
            let failed = self.injector.should_fail(reading.instance, time);
            if failed {
                self.health.failed_instances.insert(reading.instance);
                continue;
            }
            let already_chosen = self.health.active.iter().any(|(k, _)| *k == kind);
            if already_chosen {
                continue;
            }
            self.health.active.push((kind, reading.instance));
            match reading.value {
                SensorValue::Acceleration(v) => selected.accel = Some(v),
                SensorValue::AngularRate(v) => selected.gyro = Some(v),
                SensorValue::GpsFix {
                    position, velocity, ..
                } => selected.gps = Some(GpsSolution { position, velocity }),
                SensorValue::PressureAltitude(alt) => selected.baro_altitude = Some(alt),
                SensorValue::MagneticHeading(h) => selected.heading = Some(h),
                SensorValue::BatteryStatus { voltage, remaining } => {
                    selected.battery = Some(BatteryState { voltage, remaining })
                }
            }
        }

        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_hinj::{FaultInjector, FaultPlan, FaultSpec};
    use avis_sim::{RigidBodyState, SensorNoise, SensorSuite, SensorSuiteConfig, Vec3};

    fn readings_at(alt: f64, time: f64) -> Vec<SensorReading> {
        let mut cfg = SensorSuiteConfig::iris();
        cfg.noise = SensorNoise::noiseless();
        let mut suite = SensorSuite::new(cfg, 1);
        let state = RigidBodyState::at_rest(Vec3::new(0.0, 0.0, alt));
        suite.sample(&state, 0.4, time, 0.001)
    }

    fn injector_with(specs: Vec<FaultSpec>) -> SharedInjector {
        SharedInjector::new(FaultInjector::new(FaultPlan::from_specs(specs)))
    }

    #[test]
    fn healthy_suite_selects_primaries() {
        let mut fe = SensorFrontend::new(SharedInjector::passthrough());
        let out = fe.ingest(&readings_at(12.0, 0.0), 0.0);
        assert!(out.accel.is_some());
        assert!(out.gyro.is_some());
        assert!(out.gps.is_some());
        assert_eq!(out.baro_altitude, Some(12.0));
        assert!(out.heading.is_some());
        assert!(out.battery.is_some());
        for kind in SensorKind::ALL {
            assert_eq!(
                fe.health().active_instance(kind),
                Some(SensorInstance::new(kind, 0)),
                "{kind}"
            );
            assert!(!fe.health().primary_failed(kind));
            assert!(!fe.health().kind_failed(kind));
        }
    }

    #[test]
    fn primary_failure_fails_over_to_backup() {
        let gps0 = SensorInstance::new(SensorKind::Gps, 0);
        let mut fe = SensorFrontend::new(injector_with(vec![FaultSpec::new(gps0, 0.0)]));
        let out = fe.ingest(&readings_at(12.0, 1.0), 1.0);
        assert!(out.gps.is_some(), "backup GPS should still provide a fix");
        assert_eq!(
            fe.health().active_instance(SensorKind::Gps),
            Some(SensorInstance::new(SensorKind::Gps, 1))
        );
        assert!(fe.health().primary_failed(SensorKind::Gps));
        assert!(!fe.health().kind_failed(SensorKind::Gps));
        assert_eq!(fe.health().failed_count(SensorKind::Gps), 1);
    }

    #[test]
    fn all_instances_failed_reports_kind_failed() {
        let specs = vec![
            FaultSpec::new(SensorInstance::new(SensorKind::Barometer, 0), 0.0),
            FaultSpec::new(SensorInstance::new(SensorKind::Barometer, 1), 0.0),
        ];
        let mut fe = SensorFrontend::new(injector_with(specs));
        let out = fe.ingest(&readings_at(12.0, 1.0), 1.0);
        assert!(out.baro_altitude.is_none());
        assert!(fe.health().kind_failed(SensorKind::Barometer));
        assert!(!fe.health().kind_available(SensorKind::Barometer));
        // Other kinds unaffected.
        assert!(out.gps.is_some());
        assert!(!fe.health().imu_failed());
    }

    #[test]
    fn imu_failed_when_all_gyros_fail() {
        let specs = (0..3)
            .map(|i| FaultSpec::new(SensorInstance::new(SensorKind::Gyroscope, i), 0.0))
            .collect();
        let mut fe = SensorFrontend::new(injector_with(specs));
        let out = fe.ingest(&readings_at(5.0, 1.0), 1.0);
        assert!(out.gyro.is_none());
        assert!(fe.health().imu_failed());
    }

    #[test]
    fn failure_only_applies_after_start_time() {
        let accel0 = SensorInstance::new(SensorKind::Accelerometer, 0);
        let mut fe = SensorFrontend::new(injector_with(vec![FaultSpec::new(accel0, 5.0)]));
        let before = fe.ingest(&readings_at(3.0, 1.0), 1.0);
        assert_eq!(
            fe.health().active_instance(SensorKind::Accelerometer),
            Some(accel0),
            "before the failure the primary is active"
        );
        assert!(before.accel.is_some());
        let after = fe.ingest(&readings_at(3.0, 6.0), 6.0);
        assert!(after.accel.is_some(), "backup takes over");
        assert_eq!(
            fe.health().active_instance(SensorKind::Accelerometer),
            Some(SensorInstance::new(SensorKind::Accelerometer, 1))
        );
    }

    #[test]
    fn failed_reads_are_reported_to_injector() {
        let gps0 = SensorInstance::new(SensorKind::Gps, 0);
        let shared = injector_with(vec![FaultSpec::new(gps0, 0.0)]);
        let mut fe = SensorFrontend::new(shared.clone());
        fe.ingest(&readings_at(12.0, 1.0), 1.0);
        let injections = shared.injections();
        assert_eq!(injections.len(), 1);
        assert_eq!(injections[0].instance, gps0);
    }
}
