//! # avis-firmware
//!
//! A mode-based UAV control-firmware substrate standing in for ArduPilot
//! and PX4 in the Avis reproduction (DSN 2021).
//!
//! The paper checks two real firmware stacks by instrumenting their sensor
//! drivers and mode-change routine. This crate provides a firmware with
//! the same architectural shape and the same observable surface:
//!
//! - a sensor [`frontend`] whose driver reads consult the `avis-hinj`
//!   fault injector and fail over to redundant instances,
//! - a complementary-filter [`estimator`] with realistic degradation when
//!   sensors are lost,
//! - a [`failsafe`] engine (GPS / IMU / battery / compass / altitude),
//! - a mode-aware [`nav`]igation cascade driving the motor mixer,
//! - a [`mission`] manager with the vehicle-driven upload protocol,
//! - operating [`modes`] whose transitions are reported to the fault
//!   injector (the paper's `hinj_update_mode()`), and
//! - a catalog of injectable [`bugs`] with their runtime behaviour in
//!   [`defects`], reproducing the 15 defects evaluated in the paper.
//!
//! # Example
//!
//! ```
//! use avis_firmware::{BugSet, Firmware, FirmwareProfile};
//! use avis_hinj::SharedInjector;
//!
//! let injector = SharedInjector::passthrough();
//! let firmware = Firmware::new(FirmwareProfile::ArduPilotLike, BugSet::none(), injector);
//! assert!(!firmware.armed());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bugs;
pub mod defects;
pub mod estimator;
pub mod failsafe;
pub mod firmware;
pub mod frontend;
pub mod mission;
pub mod modes;
pub mod nav;
pub mod params;
pub mod pid;

pub use bugs::{BugId, BugInfo, BugSet, BugSymptom};
pub use defects::{DefectContext, DefectEngine, DefectOverrides};
pub use estimator::{EstimatorDynamics, EstimatorState, StateEstimator};
pub use failsafe::{FailsafeCause, FailsafeEngine, FailsafeEvent};
pub use firmware::{Firmware, FirmwareDelta, FirmwareSnapshot, Telemetry};
pub use frontend::{SelectedSensors, SensorFrontend, SensorHealth};
pub use mission::MissionManager;
pub use modes::{ModeCategory, OperatingMode};
pub use nav::{NavDynamics, NavGains, Navigator, Setpoint};
pub use params::{FailsafeAction, FirmwareParams, FirmwareProfile};
pub use pid::Pid;
