//! Mission storage and the vehicle side of the mission-upload handshake.

use avis_mavlite::{Message, MissionCommand, MissionItem};
use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use serde::{Deserialize, Serialize};

/// Serialise a mission command as a stable one-byte tag plus payload.
///
/// Lives here (not in `avis-mavlite`) because the mavlite crate is kept
/// free of dependencies, including the shared byte codec.
pub fn encode_mission_command(w: &mut ByteWriter, cmd: &MissionCommand) {
    match cmd {
        MissionCommand::Takeoff { altitude } => {
            w.u8(0);
            w.f64(*altitude);
        }
        MissionCommand::Waypoint { x, y, z } => {
            w.u8(1);
            w.f64(*x);
            w.f64(*y);
            w.f64(*z);
        }
        MissionCommand::Land => w.u8(2),
        MissionCommand::ReturnToLaunch => w.u8(3),
    }
}

/// Decode a command previously written by [`encode_mission_command`].
pub fn decode_mission_command(r: &mut ByteReader<'_>) -> CodecResult<MissionCommand> {
    Ok(match r.u8()? {
        0 => MissionCommand::Takeoff { altitude: r.f64()? },
        1 => MissionCommand::Waypoint {
            x: r.f64()?,
            y: r.f64()?,
            z: r.f64()?,
        },
        2 => MissionCommand::Land,
        3 => MissionCommand::ReturnToLaunch,
        _ => return Err(CodecError::Malformed("mission command tag")),
    })
}

/// Serialise a mission item (sequence number + command).
pub fn encode_mission_item(w: &mut ByteWriter, item: &MissionItem) {
    w.u16(item.seq);
    encode_mission_command(w, &item.command);
}

/// Decode an item previously written by [`encode_mission_item`].
pub fn decode_mission_item(r: &mut ByteReader<'_>) -> CodecResult<MissionItem> {
    let seq = r.u16()?;
    let command = decode_mission_command(r)?;
    Ok(MissionItem { seq, command })
}

/// State of the vehicle-side mission upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum UploadPhase {
    Idle,
    /// Receiving items; the value is the next sequence number expected.
    Receiving(u16),
}

/// The mission manager: stores uploaded mission items, runs the
/// vehicle-driven upload protocol and tracks the active item during Auto
/// flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionManager {
    items: Vec<MissionItem>,
    staged: Vec<MissionItem>,
    expected_count: u16,
    phase: UploadPhase,
    current: usize,
}

impl Default for MissionManager {
    fn default() -> Self {
        MissionManager::new()
    }
}

impl MissionManager {
    /// Creates an empty mission manager.
    pub fn new() -> Self {
        MissionManager {
            items: Vec::new(),
            staged: Vec::new(),
            expected_count: 0,
            phase: UploadPhase::Idle,
            current: 0,
        }
    }

    /// The stored mission items.
    pub fn items(&self) -> &[MissionItem] {
        &self.items
    }

    /// Whether a (non-empty) mission is loaded.
    pub fn has_mission(&self) -> bool {
        !self.items.is_empty()
    }

    /// Index of the active mission item.
    pub fn current_index(&self) -> usize {
        self.current
    }

    /// The active mission item, if the mission has not finished.
    pub fn current_item(&self) -> Option<&MissionItem> {
        self.items.get(self.current)
    }

    /// The command of the active item, if any.
    pub fn current_command(&self) -> Option<MissionCommand> {
        self.current_item().map(|i| i.command)
    }

    /// Advances to the next mission item. Returns `false` if the mission
    /// is already complete.
    pub fn advance(&mut self) -> bool {
        if self.current < self.items.len() {
            self.current += 1;
        }
        self.current < self.items.len()
    }

    /// Whether every item has been completed.
    pub fn is_complete(&self) -> bool {
        self.has_mission() && self.current >= self.items.len()
    }

    /// Restarts the mission from the first item (entering Auto mode).
    pub fn restart(&mut self) {
        self.current = 0;
    }

    /// Serialise the manager (items, staging area and upload phase).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.seq(&self.items, encode_mission_item);
        w.seq(&self.staged, encode_mission_item);
        w.u16(self.expected_count);
        match self.phase {
            UploadPhase::Idle => w.u8(0),
            UploadPhase::Receiving(next) => {
                w.u8(1);
                w.u16(next);
            }
        }
        w.usize(self.current);
    }

    /// Decode a manager previously written by [`MissionManager::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<MissionManager> {
        Ok(MissionManager {
            items: r.seq(decode_mission_item)?,
            staged: r.seq(decode_mission_item)?,
            expected_count: r.u16()?,
            phase: match r.u8()? {
                0 => UploadPhase::Idle,
                1 => UploadPhase::Receiving(r.u16()?),
                _ => return Err(CodecError::Malformed("upload phase tag")),
            },
            current: r.usize()?,
        })
    }

    /// Handles one ground-station message of the upload protocol and
    /// returns the vehicle's protocol responses.
    pub fn handle_message(&mut self, msg: &Message) -> Vec<Message> {
        match *msg {
            Message::MissionCount { count } => {
                if count == 0 {
                    self.items.clear();
                    self.staged.clear();
                    self.phase = UploadPhase::Idle;
                    return vec![Message::MissionAck { accepted: true }];
                }
                self.expected_count = count;
                self.staged.clear();
                self.phase = UploadPhase::Receiving(0);
                vec![Message::MissionRequest { seq: 0 }]
            }
            Message::MissionItemMsg { item } => match self.phase {
                UploadPhase::Receiving(expected) if item.seq == expected => {
                    self.staged.push(item);
                    let next = expected + 1;
                    if next >= self.expected_count {
                        self.items = std::mem::take(&mut self.staged);
                        self.current = 0;
                        self.phase = UploadPhase::Idle;
                        vec![Message::MissionAck { accepted: true }]
                    } else {
                        self.phase = UploadPhase::Receiving(next);
                        vec![Message::MissionRequest { seq: next }]
                    }
                }
                UploadPhase::Receiving(expected) => {
                    // Out-of-order item: re-request the one we expected.
                    vec![Message::MissionRequest { seq: expected }]
                }
                UploadPhase::Idle => vec![Message::MissionAck { accepted: false }],
            },
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_mavlite::square_mission;

    fn upload(manager: &mut MissionManager, items: &[MissionItem]) {
        let mut responses = manager.handle_message(&Message::MissionCount {
            count: items.len() as u16,
        });
        loop {
            let mut next = Vec::new();
            for resp in &responses {
                match *resp {
                    Message::MissionRequest { seq } => {
                        next.extend(manager.handle_message(&Message::MissionItemMsg {
                            item: items[seq as usize],
                        }));
                    }
                    Message::MissionAck { accepted } => {
                        assert!(accepted);
                        return;
                    }
                    ref other => panic!("unexpected response {other:?}"),
                }
            }
            responses = next;
            assert!(!responses.is_empty(), "protocol stalled");
        }
    }

    #[test]
    fn full_upload_round_trip() {
        let mut manager = MissionManager::new();
        let items = square_mission(20.0, 20.0, true);
        upload(&mut manager, &items);
        assert!(manager.has_mission());
        assert_eq!(manager.items(), &items[..]);
        assert_eq!(manager.current_index(), 0);
    }

    #[test]
    fn empty_upload_clears_mission() {
        let mut manager = MissionManager::new();
        upload(&mut manager, &square_mission(10.0, 5.0, true));
        let resp = manager.handle_message(&Message::MissionCount { count: 0 });
        assert_eq!(resp, vec![Message::MissionAck { accepted: true }]);
        assert!(!manager.has_mission());
    }

    #[test]
    fn out_of_order_item_is_rerequested() {
        let mut manager = MissionManager::new();
        let items = square_mission(20.0, 20.0, true);
        let resp = manager.handle_message(&Message::MissionCount {
            count: items.len() as u16,
        });
        assert_eq!(resp, vec![Message::MissionRequest { seq: 0 }]);
        // Send item 3 instead of item 0.
        let resp = manager.handle_message(&Message::MissionItemMsg { item: items[3] });
        assert_eq!(resp, vec![Message::MissionRequest { seq: 0 }]);
        // Now send item 0: protocol continues with request 1.
        let resp = manager.handle_message(&Message::MissionItemMsg { item: items[0] });
        assert_eq!(resp, vec![Message::MissionRequest { seq: 1 }]);
    }

    #[test]
    fn unsolicited_item_rejected() {
        let mut manager = MissionManager::new();
        let resp = manager.handle_message(&Message::MissionItemMsg {
            item: MissionItem::new(0, MissionCommand::Land),
        });
        assert_eq!(resp, vec![Message::MissionAck { accepted: false }]);
        assert!(!manager.has_mission());
    }

    #[test]
    fn advance_and_completion() {
        let mut manager = MissionManager::new();
        let items = square_mission(20.0, 20.0, true);
        upload(&mut manager, &items);
        assert!(!manager.is_complete());
        let mut advances = 0;
        while manager.advance() {
            advances += 1;
        }
        assert_eq!(advances, items.len() - 1);
        assert!(manager.is_complete());
        assert!(manager.current_item().is_none());
        manager.restart();
        assert_eq!(manager.current_index(), 0);
        assert!(!manager.is_complete());
    }

    #[test]
    fn current_command_tracks_index() {
        let mut manager = MissionManager::new();
        let items = square_mission(15.0, 10.0, true);
        upload(&mut manager, &items);
        assert!(matches!(
            manager.current_command(),
            Some(MissionCommand::Takeoff { .. })
        ));
        manager.advance();
        assert!(matches!(
            manager.current_command(),
            Some(MissionCommand::Waypoint { .. })
        ));
    }

    #[test]
    fn non_mission_messages_ignored() {
        let mut manager = MissionManager::new();
        assert!(manager
            .handle_message(&Message::ArmDisarm { arm: true })
            .is_empty());
        assert!(manager
            .handle_message(&Message::StatusText { severity: 3 })
            .is_empty());
    }
}
