//! Operating modes.
//!
//! An *operating mode* encompasses all code execution associated with a
//! pilot command (§II). The paper's key insight is that sensor-failure
//! handling logic is often tailored to specific modes, so the checker
//! injects failures at the *transitions* between modes. The firmware
//! reports every mode change to the fault injector (`hinj_update_mode()`
//! in the paper), including transitions between mission legs inside the
//! Auto mode — those are the "Waypoint 1 → Waypoint 2" windows that appear
//! in the paper's Table II.

use avis_hinj::ModeCode;
use avis_mavlite::ProtocolMode;
use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The firmware's operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatingMode {
    /// On the ground, disarmed, running pre-flight checks.
    PreFlight,
    /// Climbing to the commanded takeoff altitude.
    Takeoff,
    /// Executing the uploaded mission; `leg` is the active mission item.
    Auto {
        /// Index of the active mission item.
        leg: u8,
    },
    /// Guided (ground-station driven) reposition flight.
    Guided,
    /// Manual attitude stabilisation (no position or altitude hold).
    Stabilize,
    /// Altitude hold with manual horizontal control.
    AltHold,
    /// Position hold (loiter).
    PosHold,
    /// Aggressively stop and hold position.
    Brake,
    /// Descending to land at the current position.
    Land,
    /// Returning to the launch point, then landing.
    ReturnToLaunch,
    /// The airframe crashed; motors are stopped.
    Crashed,
}

impl OperatingMode {
    /// A stable numeric code for the mode, reported to the fault injector.
    ///
    /// Auto legs get distinct codes so that waypoint-to-waypoint
    /// transitions are visible to SABRE as mode transitions.
    pub fn code(self) -> ModeCode {
        match self {
            OperatingMode::PreFlight => ModeCode(0),
            OperatingMode::Takeoff => ModeCode(1),
            OperatingMode::Guided => ModeCode(2),
            OperatingMode::Stabilize => ModeCode(3),
            OperatingMode::AltHold => ModeCode(4),
            OperatingMode::PosHold => ModeCode(5),
            OperatingMode::Brake => ModeCode(6),
            OperatingMode::Land => ModeCode(7),
            OperatingMode::ReturnToLaunch => ModeCode(8),
            OperatingMode::Crashed => ModeCode(9),
            OperatingMode::Auto { leg } => ModeCode(100 + leg as u32),
        }
    }

    /// Reconstructs a mode from its code, if the code is valid.
    pub fn from_code(code: ModeCode) -> Option<OperatingMode> {
        Some(match code.0 {
            0 => OperatingMode::PreFlight,
            1 => OperatingMode::Takeoff,
            2 => OperatingMode::Guided,
            3 => OperatingMode::Stabilize,
            4 => OperatingMode::AltHold,
            5 => OperatingMode::PosHold,
            6 => OperatingMode::Brake,
            7 => OperatingMode::Land,
            8 => OperatingMode::ReturnToLaunch,
            9 => OperatingMode::Crashed,
            n if (100..=355).contains(&n) => OperatingMode::Auto {
                leg: (n - 100) as u8,
            },
            _ => return None,
        })
    }

    /// A short human-readable name.
    pub fn name(self) -> String {
        match self {
            OperatingMode::PreFlight => "pre-flight".to_string(),
            OperatingMode::Takeoff => "takeoff".to_string(),
            OperatingMode::Auto { leg } => format!("auto[wp{leg}]"),
            OperatingMode::Guided => "guided".to_string(),
            OperatingMode::Stabilize => "stabilize".to_string(),
            OperatingMode::AltHold => "alt-hold".to_string(),
            OperatingMode::PosHold => "pos-hold".to_string(),
            OperatingMode::Brake => "brake".to_string(),
            OperatingMode::Land => "land".to_string(),
            OperatingMode::ReturnToLaunch => "rtl".to_string(),
            OperatingMode::Crashed => "crashed".to_string(),
        }
    }

    /// Whether the vehicle is flying a mission leg in this mode.
    pub fn is_auto(self) -> bool {
        matches!(self, OperatingMode::Auto { .. })
    }

    /// Whether this mode requires a valid horizontal position estimate.
    pub fn requires_position(self) -> bool {
        matches!(
            self,
            OperatingMode::Auto { .. }
                | OperatingMode::Guided
                | OperatingMode::PosHold
                | OperatingMode::Brake
                | OperatingMode::ReturnToLaunch
        )
    }

    /// Whether this is one of the fail-safe "safe modes" the invariant
    /// monitor permits even when it sacrifices liveliness (§IV.C.2).
    pub fn is_safe_mode(self) -> bool {
        matches!(
            self,
            OperatingMode::Land | OperatingMode::ReturnToLaunch | OperatingMode::Brake
        )
    }

    /// Serialise the mode as its stable numeric [`ModeCode`].
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u32(self.code().0);
    }

    /// Decode a mode previously written by [`OperatingMode::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<OperatingMode> {
        OperatingMode::from_code(ModeCode(r.u32()?))
            .ok_or(CodecError::Malformed("operating mode code"))
    }

    /// The coarse category used by the paper's Table IV breakdown
    /// (Takeoff / Manual / Waypoint / Land).
    pub fn category(self) -> ModeCategory {
        match self {
            OperatingMode::PreFlight | OperatingMode::Takeoff => ModeCategory::Takeoff,
            OperatingMode::Auto { .. } => ModeCategory::Waypoint,
            OperatingMode::Land | OperatingMode::ReturnToLaunch => ModeCategory::Land,
            OperatingMode::Crashed => ModeCategory::Land,
            _ => ModeCategory::Manual,
        }
    }
}

impl fmt::Display for OperatingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Coarse mode categories, matching the columns of the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModeCategory {
    /// Pre-flight and takeoff.
    Takeoff,
    /// Manual / pilot-stabilised modes (stabilize, alt-hold, pos-hold, guided).
    Manual,
    /// Autonomous waypoint flight.
    Waypoint,
    /// Landing and return-to-launch.
    Land,
}

impl ModeCategory {
    /// All categories in Table IV column order.
    pub const ALL: [ModeCategory; 4] = [
        ModeCategory::Takeoff,
        ModeCategory::Manual,
        ModeCategory::Waypoint,
        ModeCategory::Land,
    ];
}

impl fmt::Display for ModeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModeCategory::Takeoff => "Takeoff",
            ModeCategory::Manual => "Manual",
            ModeCategory::Waypoint => "Waypoint",
            ModeCategory::Land => "Land",
        };
        f.write_str(s)
    }
}

/// Maps a protocol-level mode request to an internal operating mode.
pub fn mode_from_protocol(mode: ProtocolMode) -> OperatingMode {
    match mode {
        ProtocolMode::Stabilize => OperatingMode::Stabilize,
        ProtocolMode::AltHold => OperatingMode::AltHold,
        ProtocolMode::PosHold => OperatingMode::PosHold,
        ProtocolMode::Auto => OperatingMode::Auto { leg: 0 },
        ProtocolMode::Guided => OperatingMode::Guided,
        ProtocolMode::Land => OperatingMode::Land,
        ProtocolMode::ReturnToLaunch => OperatingMode::ReturnToLaunch,
    }
}

/// Maps an internal operating mode back to the closest protocol mode for
/// heartbeat reporting.
pub fn mode_to_protocol(mode: OperatingMode) -> ProtocolMode {
    match mode {
        OperatingMode::PreFlight | OperatingMode::Stabilize | OperatingMode::Crashed => {
            ProtocolMode::Stabilize
        }
        OperatingMode::Takeoff | OperatingMode::Guided => ProtocolMode::Guided,
        OperatingMode::Auto { .. } => ProtocolMode::Auto,
        OperatingMode::AltHold => ProtocolMode::AltHold,
        OperatingMode::PosHold | OperatingMode::Brake => ProtocolMode::PosHold,
        OperatingMode::Land => ProtocolMode::Land,
        OperatingMode::ReturnToLaunch => ProtocolMode::ReturnToLaunch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_modes() -> Vec<OperatingMode> {
        let mut v = vec![
            OperatingMode::PreFlight,
            OperatingMode::Takeoff,
            OperatingMode::Guided,
            OperatingMode::Stabilize,
            OperatingMode::AltHold,
            OperatingMode::PosHold,
            OperatingMode::Brake,
            OperatingMode::Land,
            OperatingMode::ReturnToLaunch,
            OperatingMode::Crashed,
        ];
        for leg in [0u8, 1, 5, 255] {
            v.push(OperatingMode::Auto { leg });
        }
        v
    }

    #[test]
    fn codes_are_unique_and_round_trip() {
        let modes = all_modes();
        let mut codes: Vec<u32> = modes.iter().map(|m| m.code().0).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), modes.len());
        for m in modes {
            assert_eq!(OperatingMode::from_code(m.code()), Some(m), "{m}");
        }
        assert_eq!(OperatingMode::from_code(ModeCode(99)), None);
        assert_eq!(OperatingMode::from_code(ModeCode(10_000)), None);
    }

    #[test]
    fn auto_legs_have_distinct_codes() {
        let a = OperatingMode::Auto { leg: 1 }.code();
        let b = OperatingMode::Auto { leg: 2 }.code();
        assert_ne!(a, b);
    }

    #[test]
    fn safe_modes() {
        assert!(OperatingMode::Land.is_safe_mode());
        assert!(OperatingMode::ReturnToLaunch.is_safe_mode());
        assert!(!OperatingMode::Auto { leg: 0 }.is_safe_mode());
        assert!(!OperatingMode::Takeoff.is_safe_mode());
    }

    #[test]
    fn position_requirements() {
        assert!(OperatingMode::Auto { leg: 3 }.requires_position());
        assert!(OperatingMode::PosHold.requires_position());
        assert!(OperatingMode::ReturnToLaunch.requires_position());
        assert!(!OperatingMode::Stabilize.requires_position());
        assert!(!OperatingMode::Land.requires_position());
        assert!(!OperatingMode::AltHold.requires_position());
    }

    #[test]
    fn categories_match_table_iv_columns() {
        assert_eq!(OperatingMode::Takeoff.category(), ModeCategory::Takeoff);
        assert_eq!(OperatingMode::PreFlight.category(), ModeCategory::Takeoff);
        assert_eq!(
            OperatingMode::Auto { leg: 2 }.category(),
            ModeCategory::Waypoint
        );
        assert_eq!(OperatingMode::PosHold.category(), ModeCategory::Manual);
        assert_eq!(OperatingMode::Guided.category(), ModeCategory::Manual);
        assert_eq!(OperatingMode::Land.category(), ModeCategory::Land);
        assert_eq!(OperatingMode::ReturnToLaunch.category(), ModeCategory::Land);
        assert_eq!(ModeCategory::ALL.len(), 4);
    }

    #[test]
    fn protocol_round_trips_are_sensible() {
        for p in [
            ProtocolMode::Stabilize,
            ProtocolMode::AltHold,
            ProtocolMode::PosHold,
            ProtocolMode::Auto,
            ProtocolMode::Guided,
            ProtocolMode::Land,
            ProtocolMode::ReturnToLaunch,
        ] {
            let internal = mode_from_protocol(p);
            let back = mode_to_protocol(internal);
            assert_eq!(back, p, "protocol mode {p} did not round trip");
        }
    }

    #[test]
    fn names_are_nonempty_and_distinct_for_legs() {
        assert_eq!(OperatingMode::Auto { leg: 1 }.name(), "auto[wp1]");
        assert_ne!(
            OperatingMode::Auto { leg: 1 }.name(),
            OperatingMode::Auto { leg: 2 }.name()
        );
        for m in all_modes() {
            assert!(!m.name().is_empty());
        }
    }
}
