//! The navigation controller: translates a per-mode [`Setpoint`] into
//! motor commands through a position → velocity → attitude → mixer
//! cascade, exactly the "mode-aware navigation" block of the paper's
//! Figure 2.

use crate::estimator::EstimatorState;
use crate::params::FirmwareParams;
use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use avis_sim::math::{clamp, wrap_angle};
use avis_sim::{MotorCommands, Vec3, GRAVITY};
use serde::{Deserialize, Serialize};

/// What the active mode asks the navigator to do this step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Setpoint {
    /// Motors off (disarmed or crashed).
    Idle,
    /// Armed on the ground, motors at idle spin.
    GroundIdle,
    /// Climb to an altitude while holding a horizontal position.
    ClimbTo {
        /// Target altitude (m).
        altitude: f64,
        /// Horizontal hold position (m).
        hold: Vec3,
    },
    /// Fly to a 3-D position at a cruise speed.
    GotoPosition {
        /// Target position (z is the target altitude).
        target: Vec3,
        /// Cruise speed (m/s).
        speed: f64,
    },
    /// Hold a 3-D position.
    HoldPosition {
        /// Position to hold (z is the altitude to hold).
        target: Vec3,
    },
    /// Hold altitude only; no horizontal control.
    HoldAltitude {
        /// Altitude to hold (m).
        altitude: f64,
    },
    /// Descend at a fixed rate, optionally holding a horizontal position.
    Descend {
        /// Descent rate (m/s, positive number).
        rate: f64,
        /// Optional horizontal hold position.
        hold: Option<Vec3>,
    },
    /// Command a vertical speed directly (used by defect overrides).
    VerticalSpeed {
        /// Vertical speed (m/s, positive = climb).
        rate: f64,
        /// Optional horizontal hold position.
        hold: Option<Vec3>,
    },
    /// Command a horizontal velocity directly while holding altitude
    /// (used by defect overrides that model fly-aways).
    HorizontalVelocity {
        /// Desired world-frame horizontal velocity (m/s).
        velocity: Vec3,
        /// Altitude to hold (m).
        altitude: f64,
    },
    /// Fixed throttle with level attitude (used by defect overrides).
    RawThrottle {
        /// Collective throttle in `[0, 1]`.
        throttle: f64,
    },
}

impl Setpoint {
    /// Serialise the setpoint as a stable one-byte tag plus payload.
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            Setpoint::Idle => w.u8(0),
            Setpoint::GroundIdle => w.u8(1),
            Setpoint::ClimbTo { altitude, hold } => {
                w.u8(2);
                w.f64(*altitude);
                hold.encode(w);
            }
            Setpoint::GotoPosition { target, speed } => {
                w.u8(3);
                target.encode(w);
                w.f64(*speed);
            }
            Setpoint::HoldPosition { target } => {
                w.u8(4);
                target.encode(w);
            }
            Setpoint::HoldAltitude { altitude } => {
                w.u8(5);
                w.f64(*altitude);
            }
            Setpoint::Descend { rate, hold } => {
                w.u8(6);
                w.f64(*rate);
                w.option(hold.as_ref(), |w, v| v.encode(w));
            }
            Setpoint::VerticalSpeed { rate, hold } => {
                w.u8(7);
                w.f64(*rate);
                w.option(hold.as_ref(), |w, v| v.encode(w));
            }
            Setpoint::HorizontalVelocity { velocity, altitude } => {
                w.u8(8);
                velocity.encode(w);
                w.f64(*altitude);
            }
            Setpoint::RawThrottle { throttle } => {
                w.u8(9);
                w.f64(*throttle);
            }
        }
    }

    /// Decode a setpoint previously written by [`Setpoint::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Setpoint> {
        Ok(match r.u8()? {
            0 => Setpoint::Idle,
            1 => Setpoint::GroundIdle,
            2 => Setpoint::ClimbTo {
                altitude: r.f64()?,
                hold: Vec3::decode(r)?,
            },
            3 => Setpoint::GotoPosition {
                target: Vec3::decode(r)?,
                speed: r.f64()?,
            },
            4 => Setpoint::HoldPosition {
                target: Vec3::decode(r)?,
            },
            5 => Setpoint::HoldAltitude { altitude: r.f64()? },
            6 => Setpoint::Descend {
                rate: r.f64()?,
                hold: r.option(Vec3::decode)?,
            },
            7 => Setpoint::VerticalSpeed {
                rate: r.f64()?,
                hold: r.option(Vec3::decode)?,
            },
            8 => Setpoint::HorizontalVelocity {
                velocity: Vec3::decode(r)?,
                altitude: r.f64()?,
            },
            9 => Setpoint::RawThrottle { throttle: r.f64()? },
            _ => return Err(CodecError::Malformed("setpoint tag")),
        })
    }
}

/// Navigation gains (inner and outer loop).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NavGains {
    /// Position error → velocity demand (1/s).
    pub kp_pos: f64,
    /// Velocity error → acceleration demand (1/s).
    pub kp_vel: f64,
    /// Altitude error → climb-rate demand (1/s).
    pub kp_alt: f64,
    /// Climb-rate error → throttle.
    pub kp_climb: f64,
    /// Attitude error → mixer command.
    pub kp_att: f64,
    /// Body-rate damping → mixer command.
    pub kd_att: f64,
    /// Heading error → yaw mixer command.
    pub kp_yaw: f64,
    /// Yaw-rate damping → yaw mixer command.
    pub kd_yaw: f64,
    /// Maximum horizontal acceleration demand (m/s²).
    pub max_accel: f64,
    /// Baseline hover throttle.
    pub hover_throttle: f64,
}

impl Default for NavGains {
    fn default() -> Self {
        NavGains {
            kp_pos: 0.7,
            kp_vel: 1.0,
            kp_alt: 1.0,
            kp_climb: 0.12,
            kp_att: 3.0,
            kd_att: 0.25,
            kp_yaw: 1.0,
            kd_yaw: 0.5,
            max_accel: 3.0,
            hover_throttle: 0.38,
        }
    }
}

/// The per-run mutable slice of a [`Navigator`] (see
/// [`Navigator::dynamics`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NavDynamics {
    hover_trim: f64,
    yaw_hold: f64,
}

impl NavDynamics {
    /// Serialise the dynamic navigator state bit-exactly.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.f64(self.hover_trim);
        w.f64(self.yaw_hold);
    }

    /// Decode dynamics previously written by [`NavDynamics::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<NavDynamics> {
        Ok(NavDynamics {
            hover_trim: r.f64()?,
            yaw_hold: r.f64()?,
        })
    }
}

/// The navigation controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Navigator {
    gains: NavGains,
    max_tilt: f64,
    max_climb_rate: f64,
    /// Slow throttle trim integrator compensating for mass/thrust mismatch.
    hover_trim: f64,
    /// Heading held while no explicit yaw command is given.
    yaw_hold: f64,
}

impl Navigator {
    /// Creates a navigator from firmware parameters.
    pub fn new(params: &FirmwareParams) -> Self {
        Navigator {
            gains: NavGains::default(),
            max_tilt: params.max_tilt,
            max_climb_rate: params.max_climb_rate,
            hover_trim: 0.0,
            yaw_hold: 0.0,
        }
    }

    /// Creates a navigator with explicit gains (tests, ablations).
    pub fn with_gains(gains: NavGains, max_tilt: f64, max_climb_rate: f64) -> Self {
        Navigator {
            gains,
            max_tilt,
            max_climb_rate,
            hover_trim: 0.0,
            yaw_hold: 0.0,
        }
    }

    /// Resets transient controller state (on arming).
    pub fn reset(&mut self, yaw: f64) {
        self.hover_trim = 0.0;
        self.yaw_hold = yaw;
    }

    /// Captures the per-run dynamic state — the hover-trim integrator and
    /// the held heading. Gains and limits are static per run, so a
    /// delta-encoded snapshot chain stores them once in its keyframe.
    pub fn dynamics(&self) -> NavDynamics {
        NavDynamics {
            hover_trim: self.hover_trim,
            yaw_hold: self.yaw_hold,
        }
    }

    /// Overwrites the per-run dynamic state captured by
    /// [`Navigator::dynamics`].
    pub fn restore_dynamics(&mut self, dynamics: &NavDynamics) {
        self.hover_trim = dynamics.hover_trim;
        self.yaw_hold = dynamics.yaw_hold;
    }

    /// Computes motor commands for the given setpoint.
    ///
    /// `rates` are the measured body angular rates (zero if the gyroscope
    /// is unavailable — the cascade then loses its rate damping, which is
    /// the realistic degradation).
    pub fn update(
        &mut self,
        setpoint: Setpoint,
        est: &EstimatorState,
        rates: Vec3,
        dt: f64,
    ) -> MotorCommands {
        let g = self.gains;
        match setpoint {
            Setpoint::Idle => return MotorCommands::IDLE,
            Setpoint::GroundIdle => return MotorCommands::uniform(0.12),
            Setpoint::RawThrottle { throttle } => {
                let t = clamp(throttle, 0.0, 1.0);
                return self.attitude_mix(t, 0.0, 0.0, est, rates);
            }
            _ => {}
        }

        // Desired vertical speed and horizontal velocity in the world frame.
        let (vz_des, v_des): (f64, Option<Vec3>) = match setpoint {
            Setpoint::ClimbTo { altitude, hold } => (
                clamp(
                    g.kp_alt * (altitude - est.altitude),
                    -1.0,
                    self.max_climb_rate,
                ),
                Some(self.velocity_toward(hold, est, 2.0)),
            ),
            Setpoint::GotoPosition { target, speed } => (
                clamp(
                    g.kp_alt * (target.z - est.altitude),
                    -1.5,
                    self.max_climb_rate,
                ),
                Some(self.velocity_toward(target, est, speed)),
            ),
            Setpoint::HoldPosition { target } => (
                clamp(
                    g.kp_alt * (target.z - est.altitude),
                    -1.5,
                    self.max_climb_rate,
                ),
                Some(self.velocity_toward(target, est, 2.5)),
            ),
            Setpoint::HoldAltitude { altitude } => (
                clamp(
                    g.kp_alt * (altitude - est.altitude),
                    -1.5,
                    self.max_climb_rate,
                ),
                None,
            ),
            Setpoint::Descend { rate, hold } => {
                (-rate.abs(), hold.map(|h| self.velocity_toward(h, est, 1.5)))
            }
            Setpoint::VerticalSpeed { rate, hold } => {
                (rate, hold.map(|h| self.velocity_toward(h, est, 1.5)))
            }
            Setpoint::HorizontalVelocity { velocity, altitude } => (
                clamp(
                    g.kp_alt * (altitude - est.altitude),
                    -1.5,
                    self.max_climb_rate,
                ),
                Some(Vec3::new(velocity.x, velocity.y, 0.0)),
            ),
            Setpoint::Idle | Setpoint::GroundIdle | Setpoint::RawThrottle { .. } => unreachable!(),
        };

        // Throttle from the climb-rate loop plus the slow hover trim.
        let climb_err = vz_des - est.climb_rate;
        self.hover_trim = clamp(self.hover_trim + 0.02 * dt * climb_err, -0.15, 0.15);
        let throttle = clamp(
            g.hover_throttle + self.hover_trim + g.kp_climb * climb_err,
            0.05,
            1.0,
        );

        // Horizontal velocity loop → desired tilt.
        let (roll_des, pitch_des) = match v_des {
            Some(v) => {
                let ax = clamp(g.kp_vel * (v.x - est.velocity.x), -g.max_accel, g.max_accel);
                let ay = clamp(g.kp_vel * (v.y - est.velocity.y), -g.max_accel, g.max_accel);
                // Rotate the world-frame acceleration demand into the
                // heading frame.
                let (sy, cy) = est.yaw.sin_cos();
                let ax_h = cy * ax + sy * ay;
                let ay_h = -sy * ax + cy * ay;
                let pitch = clamp(ax_h / GRAVITY, -self.max_tilt, self.max_tilt);
                let roll = clamp(-ay_h / GRAVITY, -self.max_tilt, self.max_tilt);
                (roll, pitch)
            }
            None => (0.0, 0.0),
        };

        self.attitude_mix(throttle, roll_des, pitch_des, est, rates)
    }

    /// Desired world-frame velocity toward a target position.
    fn velocity_toward(&self, target: Vec3, est: &EstimatorState, speed: f64) -> Vec3 {
        let err = Vec3::new(target.x - est.position.x, target.y - est.position.y, 0.0);
        (err * self.gains.kp_pos).clamp_norm(speed.max(0.1))
    }

    /// Inner attitude loop and mixer.
    fn attitude_mix(
        &mut self,
        throttle: f64,
        roll_des: f64,
        pitch_des: f64,
        est: &EstimatorState,
        rates: Vec3,
    ) -> MotorCommands {
        let g = self.gains;
        let roll_cmd = clamp(
            g.kp_att * (roll_des - est.roll) - g.kd_att * rates.x,
            -0.4,
            0.4,
        );
        let pitch_cmd = clamp(
            g.kp_att * (pitch_des - est.pitch) - g.kd_att * rates.y,
            -0.4,
            0.4,
        );
        let yaw_cmd = clamp(
            g.kp_yaw * wrap_angle(self.yaw_hold - est.yaw) - g.kd_yaw * rates.z,
            -0.2,
            0.2,
        );
        MotorCommands::mix(throttle, roll_cmd, pitch_cmd, yaw_cmd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_sim::simulator::{SimConfig, Simulator};
    use avis_sim::{Environment, SensorNoise};

    const DT: f64 = 0.001;

    /// Runs the navigator closed-loop against the true simulator state
    /// (perfect state feedback), isolating the control cascade from the
    /// estimator.
    fn run_with_perfect_state(
        nav: &mut Navigator,
        sim: &mut Simulator,
        setpoint: impl Fn(f64, &EstimatorState) -> Setpoint,
        steps: usize,
    ) -> EstimatorState {
        let mut est = perfect_estimate(sim);
        for _ in 0..steps {
            let sp = setpoint(sim.time(), &est);
            let rates = sim.true_state().angular_velocity;
            let cmd = nav.update(sp, &est, rates, DT);
            sim.step(&cmd);
            est = perfect_estimate(sim);
        }
        est
    }

    fn perfect_estimate(sim: &Simulator) -> EstimatorState {
        let s = sim.true_state();
        let (roll, pitch, yaw) = s.attitude.to_euler();
        EstimatorState {
            roll,
            pitch,
            yaw,
            altitude: s.position.z,
            climb_rate: s.velocity.z,
            position: s.position,
            velocity: s.velocity,
            position_ok: true,
            altitude_ok: true,
            gps_loss_seconds: 0.0,
        }
    }

    fn quiet_sim() -> Simulator {
        let mut config = SimConfig::default();
        config.sensors.noise = SensorNoise::noiseless();
        Simulator::new(config, Environment::open_field())
    }

    fn default_nav() -> Navigator {
        Navigator::new(&FirmwareParams::ardupilot())
    }

    #[test]
    fn climbs_to_target_altitude() {
        let mut nav = default_nav();
        let mut sim = quiet_sim();
        let est = run_with_perfect_state(
            &mut nav,
            &mut sim,
            |_, _| Setpoint::ClimbTo {
                altitude: 20.0,
                hold: Vec3::ZERO,
            },
            25_000,
        );
        assert!(
            (est.altitude - 20.0).abs() < 1.5,
            "altitude {}",
            est.altitude
        );
        assert!(est.position.horizontal_distance(Vec3::ZERO) < 2.0);
        assert!(sim.first_collision().is_none());
    }

    #[test]
    fn flies_to_waypoint() {
        let mut nav = default_nav();
        let mut sim = quiet_sim();
        // Climb first.
        run_with_perfect_state(
            &mut nav,
            &mut sim,
            |_, _| Setpoint::ClimbTo {
                altitude: 15.0,
                hold: Vec3::ZERO,
            },
            15_000,
        );
        let target = Vec3::new(20.0, 10.0, 15.0);
        let est = run_with_perfect_state(
            &mut nav,
            &mut sim,
            move |_, _| Setpoint::GotoPosition { target, speed: 5.0 },
            25_000,
        );
        assert!(
            est.position.horizontal_distance(target) < 2.5,
            "pos {:?}",
            est.position
        );
        assert!((est.altitude - 15.0).abs() < 2.0);
        assert!(sim.first_collision().is_none());
    }

    #[test]
    fn holds_position_against_wind() {
        use avis_sim::Wind;
        let mut config = SimConfig::default();
        config.sensors.noise = SensorNoise::noiseless();
        let env = Environment::open_field().with_wind(Wind::steady(Vec3::new(3.0, 0.0, 0.0)));
        let mut sim = Simulator::new(config, env);
        let mut nav = default_nav();
        run_with_perfect_state(
            &mut nav,
            &mut sim,
            |_, _| Setpoint::ClimbTo {
                altitude: 10.0,
                hold: Vec3::ZERO,
            },
            12_000,
        );
        let hold = Vec3::new(0.0, 0.0, 10.0);
        let est = run_with_perfect_state(
            &mut nav,
            &mut sim,
            move |_, _| Setpoint::HoldPosition { target: hold },
            20_000,
        );
        assert!(
            est.position.horizontal_distance(hold) < 3.0,
            "pos {:?}",
            est.position
        );
        assert!(sim.first_collision().is_none());
    }

    #[test]
    fn gentle_descent_lands_without_crash() {
        let mut nav = default_nav();
        let mut sim = quiet_sim();
        run_with_perfect_state(
            &mut nav,
            &mut sim,
            |_, _| Setpoint::ClimbTo {
                altitude: 12.0,
                hold: Vec3::ZERO,
            },
            14_000,
        );
        let est = run_with_perfect_state(
            &mut nav,
            &mut sim,
            |_, _| Setpoint::Descend {
                rate: 0.8,
                hold: Some(Vec3::ZERO),
            },
            25_000,
        );
        assert!(est.altitude < 0.3, "altitude {}", est.altitude);
        assert!(
            sim.first_collision().is_none(),
            "gentle landing must not register a crash"
        );
    }

    #[test]
    fn fast_descent_from_altitude_crashes() {
        let mut nav = default_nav();
        let mut sim = quiet_sim();
        run_with_perfect_state(
            &mut nav,
            &mut sim,
            |_, _| Setpoint::ClimbTo {
                altitude: 15.0,
                hold: Vec3::ZERO,
            },
            16_000,
        );
        run_with_perfect_state(
            &mut nav,
            &mut sim,
            |_, _| Setpoint::VerticalSpeed {
                rate: -3.0,
                hold: Some(Vec3::ZERO),
            },
            15_000,
        );
        assert!(
            sim.first_collision().is_some(),
            "a 3 m/s descent into the ground is a crash"
        );
    }

    #[test]
    fn horizontal_velocity_setpoint_moves_vehicle() {
        let mut nav = default_nav();
        let mut sim = quiet_sim();
        run_with_perfect_state(
            &mut nav,
            &mut sim,
            |_, _| Setpoint::ClimbTo {
                altitude: 15.0,
                hold: Vec3::ZERO,
            },
            16_000,
        );
        let est = run_with_perfect_state(
            &mut nav,
            &mut sim,
            |_, _| Setpoint::HorizontalVelocity {
                velocity: Vec3::new(4.0, 0.0, 0.0),
                altitude: 15.0,
            },
            10_000,
        );
        assert!(est.position.x > 15.0, "x = {}", est.position.x);
        assert!((est.altitude - 15.0).abs() < 3.0);
    }

    #[test]
    fn idle_and_ground_idle_commands() {
        let mut nav = default_nav();
        let est = EstimatorState::default();
        let idle = nav.update(Setpoint::Idle, &est, Vec3::ZERO, DT);
        assert_eq!(idle, MotorCommands::IDLE);
        let ground = nav.update(Setpoint::GroundIdle, &est, Vec3::ZERO, DT);
        assert!(ground.mean() > 0.0 && ground.mean() < 0.2);
    }

    #[test]
    fn raw_throttle_is_clamped_and_level() {
        let mut nav = default_nav();
        let est = EstimatorState::default();
        let cmd = nav.update(
            Setpoint::RawThrottle { throttle: 2.0 },
            &est,
            Vec3::ZERO,
            DT,
        );
        assert!(cmd.is_valid());
        assert!(cmd.mean() > 0.8);
    }

    #[test]
    fn reset_sets_heading_hold() {
        let mut nav = default_nav();
        nav.reset(1.0);
        let est = EstimatorState {
            yaw: 0.0,
            ..EstimatorState::default()
        };
        // With heading hold at 1.0 rad and yaw 0, the yaw command is positive,
        // which raises motors 0/1 relative to 2/3 in the mixer.
        let cmd = nav.update(
            Setpoint::HoldAltitude { altitude: 0.0 },
            &est,
            Vec3::ZERO,
            DT,
        );
        assert!(cmd.throttle[0] > cmd.throttle[2]);
    }
}
