//! Firmware profiles and tunable parameters.
//!
//! The paper evaluates two firmware stacks, ArduPilot (ArduCopter 3.6.9)
//! and PX4 (1.9.0). They share the same architectural shape — sensor
//! frontend, estimator, mode-based navigation, failsafes — but differ in
//! defaults: arming requirements, failsafe actions, descent speeds. The
//! [`FirmwareProfile`] captures which stack is being modelled (and which
//! of the paper's bugs can apply), while [`FirmwareParams`] holds the
//! tunables the failsafe and navigation code reads.

use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which control-firmware stack the substrate is modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FirmwareProfile {
    /// ArduPilot / ArduCopter-like behaviour.
    ArduPilotLike,
    /// PX4-like behaviour.
    Px4Like,
}

impl FirmwareProfile {
    /// Both profiles, in the order the paper reports them.
    pub const ALL: [FirmwareProfile; 2] =
        [FirmwareProfile::ArduPilotLike, FirmwareProfile::Px4Like];

    /// The short name used in reports ("ArduPilot" / "PX4").
    pub fn name(self) -> &'static str {
        match self {
            FirmwareProfile::ArduPilotLike => "ArduPilot",
            FirmwareProfile::Px4Like => "PX4",
        }
    }
}

impl fmt::Display for FirmwareProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The action a failsafe takes when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailsafeAction {
    /// Continue the mission (report only).
    Warn,
    /// Hold altitude, give up horizontal position control.
    AltHold,
    /// Land at the current position.
    Land,
    /// Return to the launch point.
    ReturnToLaunch,
    /// Disarm immediately (only sensible on the ground).
    Disarm,
}

impl FailsafeAction {
    /// Serialise the action as a stable one-byte tag.
    pub fn encode(&self, w: &mut ByteWriter) {
        let tag: u8 = match self {
            FailsafeAction::Warn => 0,
            FailsafeAction::AltHold => 1,
            FailsafeAction::Land => 2,
            FailsafeAction::ReturnToLaunch => 3,
            FailsafeAction::Disarm => 4,
        };
        w.u8(tag);
    }

    /// Decode an action previously written by [`FailsafeAction::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<FailsafeAction> {
        Ok(match r.u8()? {
            0 => FailsafeAction::Warn,
            1 => FailsafeAction::AltHold,
            2 => FailsafeAction::Land,
            3 => FailsafeAction::ReturnToLaunch,
            4 => FailsafeAction::Disarm,
            _ => return Err(CodecError::Malformed("failsafe action tag")),
        })
    }
}

impl fmt::Display for FailsafeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailsafeAction::Warn => "warn",
            FailsafeAction::AltHold => "alt-hold",
            FailsafeAction::Land => "land",
            FailsafeAction::ReturnToLaunch => "rtl",
            FailsafeAction::Disarm => "disarm",
        };
        f.write_str(s)
    }
}

/// Tunable firmware parameters (the equivalent of ArduPilot's parameter
/// table, reduced to what the reproduction needs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirmwareParams {
    /// Default takeoff / mission altitude (m).
    pub default_takeoff_altitude: f64,
    /// Cruise speed between waypoints (m/s).
    pub waypoint_speed: f64,
    /// Maximum climb rate (m/s).
    pub max_climb_rate: f64,
    /// Nominal descent rate during landing, above the final approach (m/s).
    pub land_descent_rate: f64,
    /// Final-approach descent rate below `land_final_altitude` (m/s).
    pub land_final_rate: f64,
    /// Altitude below which the final landing rate applies (m).
    pub land_final_altitude: f64,
    /// Altitude flown during return-to-launch (m).
    pub rtl_altitude: f64,
    /// Descent rate used by RTL once above home (m/s).
    pub rtl_descent_rate: f64,
    /// Horizontal distance at which a waypoint counts as reached (m).
    pub waypoint_acceptance_radius: f64,
    /// Vertical tolerance for "reached altitude" checks (m).
    pub altitude_acceptance: f64,
    /// Maximum commanded tilt angle (rad).
    pub max_tilt: f64,
    /// Battery fraction below which the low-battery failsafe fires.
    pub battery_low_threshold: f64,
    /// Battery fraction below which the critical-battery failsafe fires.
    pub battery_critical_threshold: f64,
    /// Seconds without a usable position before the GPS failsafe fires.
    pub gps_loss_timeout: f64,
    /// Action taken by the GPS-loss failsafe.
    pub gps_failsafe_action: FailsafeAction,
    /// Action taken by the IMU/EKF failsafe.
    pub imu_failsafe_action: FailsafeAction,
    /// Action taken by the low-battery failsafe.
    pub battery_low_action: FailsafeAction,
    /// Action taken by the critical-battery failsafe.
    pub battery_critical_action: FailsafeAction,
    /// Whether arming requires a healthy compass.
    pub arming_requires_compass: bool,
    /// Whether arming requires a GPS fix.
    pub arming_requires_gps: bool,
}

impl FirmwareParams {
    /// ArduPilot-like defaults.
    pub fn ardupilot() -> Self {
        FirmwareParams {
            default_takeoff_altitude: 20.0,
            waypoint_speed: 5.0,
            max_climb_rate: 2.5,
            land_descent_rate: 1.0,
            land_final_rate: 0.5,
            land_final_altitude: 10.0,
            rtl_altitude: 15.0,
            rtl_descent_rate: 1.5,
            waypoint_acceptance_radius: 2.0,
            altitude_acceptance: 1.0,
            max_tilt: 0.35,
            battery_low_threshold: 0.20,
            battery_critical_threshold: 0.10,
            gps_loss_timeout: 1.0,
            gps_failsafe_action: FailsafeAction::Land,
            imu_failsafe_action: FailsafeAction::Land,
            battery_low_action: FailsafeAction::ReturnToLaunch,
            battery_critical_action: FailsafeAction::Land,
            arming_requires_compass: false,
            arming_requires_gps: true,
        }
    }

    /// PX4-like defaults: stricter arming checks, RTL-biased failsafes.
    pub fn px4() -> Self {
        FirmwareParams {
            default_takeoff_altitude: 20.0,
            waypoint_speed: 5.0,
            max_climb_rate: 3.0,
            land_descent_rate: 0.9,
            land_final_rate: 0.5,
            land_final_altitude: 8.0,
            rtl_altitude: 20.0,
            rtl_descent_rate: 1.2,
            waypoint_acceptance_radius: 2.0,
            altitude_acceptance: 1.0,
            max_tilt: 0.4,
            battery_low_threshold: 0.25,
            battery_critical_threshold: 0.12,
            gps_loss_timeout: 0.8,
            gps_failsafe_action: FailsafeAction::AltHold,
            imu_failsafe_action: FailsafeAction::Land,
            battery_low_action: FailsafeAction::ReturnToLaunch,
            battery_critical_action: FailsafeAction::Land,
            arming_requires_compass: true,
            arming_requires_gps: true,
        }
    }

    /// Defaults for the given profile.
    pub fn for_profile(profile: FirmwareProfile) -> Self {
        match profile {
            FirmwareProfile::ArduPilotLike => FirmwareParams::ardupilot(),
            FirmwareProfile::Px4Like => FirmwareParams::px4(),
        }
    }

    /// Validates parameter sanity (positive speeds, ordered thresholds).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.default_takeoff_altitude <= 0.0 {
            return Err("default takeoff altitude must be positive".to_string());
        }
        if self.waypoint_speed <= 0.0 || self.max_climb_rate <= 0.0 {
            return Err("speeds must be positive".to_string());
        }
        if self.land_final_rate > self.land_descent_rate {
            return Err("final landing rate must not exceed the nominal landing rate".to_string());
        }
        if self.battery_critical_threshold >= self.battery_low_threshold {
            return Err("critical battery threshold must be below the low threshold".to_string());
        }
        if !(0.0..=1.0).contains(&self.battery_low_threshold)
            || !(0.0..=1.0).contains(&self.battery_critical_threshold)
        {
            return Err("battery thresholds must be fractions in [0, 1]".to_string());
        }
        if self.max_tilt <= 0.0 || self.max_tilt > 1.0 {
            return Err("max tilt must be in (0, 1] radians".to_string());
        }
        Ok(())
    }
}

impl Default for FirmwareParams {
    fn default() -> Self {
        FirmwareParams::ardupilot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        FirmwareParams::ardupilot()
            .validate()
            .expect("ardupilot defaults");
        FirmwareParams::px4().validate().expect("px4 defaults");
        FirmwareParams::default().validate().expect("default");
    }

    #[test]
    fn profiles_have_distinct_defaults() {
        let apm = FirmwareParams::ardupilot();
        let px4 = FirmwareParams::px4();
        assert_ne!(apm, px4);
        assert!(px4.arming_requires_compass);
        assert!(!apm.arming_requires_compass);
        assert_eq!(FirmwareParams::for_profile(FirmwareProfile::Px4Like), px4);
        assert_eq!(
            FirmwareParams::for_profile(FirmwareProfile::ArduPilotLike),
            apm
        );
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut p = FirmwareParams::ardupilot();
        p.default_takeoff_altitude = -1.0;
        assert!(p.validate().is_err());

        let mut p = FirmwareParams::ardupilot();
        p.land_final_rate = 10.0;
        assert!(p.validate().is_err());

        let mut p = FirmwareParams::ardupilot();
        p.battery_critical_threshold = 0.5;
        assert!(p.validate().is_err());

        let mut p = FirmwareParams::ardupilot();
        p.battery_low_threshold = 1.5;
        assert!(p.validate().is_err());

        let mut p = FirmwareParams::ardupilot();
        p.max_tilt = 0.0;
        assert!(p.validate().is_err());

        let mut p = FirmwareParams::ardupilot();
        p.waypoint_speed = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn profile_names() {
        assert_eq!(FirmwareProfile::ArduPilotLike.to_string(), "ArduPilot");
        assert_eq!(FirmwareProfile::Px4Like.to_string(), "PX4");
        assert_eq!(FirmwareProfile::ALL.len(), 2);
    }

    #[test]
    fn failsafe_action_display() {
        assert_eq!(FailsafeAction::Land.to_string(), "land");
        assert_eq!(FailsafeAction::ReturnToLaunch.to_string(), "rtl");
        assert_eq!(FailsafeAction::AltHold.to_string(), "alt-hold");
    }
}
