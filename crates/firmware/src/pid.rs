//! A small PID controller used by the navigation cascade.

use serde::{Deserialize, Serialize};

/// A proportional-integral-derivative controller with output clamping and
/// integral anti-windup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain (applied to the error derivative).
    pub kd: f64,
    /// Symmetric output limit.
    pub output_limit: f64,
    /// Symmetric integral-term limit (anti-windup).
    pub integral_limit: f64,
    integral: f64,
    last_error: Option<f64>,
}

impl Pid {
    /// Creates a PID controller with the given gains and output limit.
    pub fn new(kp: f64, ki: f64, kd: f64, output_limit: f64) -> Self {
        Pid {
            kp,
            ki,
            kd,
            output_limit: output_limit.abs(),
            integral_limit: output_limit.abs() * 0.5,
            integral: 0.0,
            last_error: None,
        }
    }

    /// Creates a proportional-only controller.
    pub fn proportional(kp: f64, output_limit: f64) -> Self {
        Pid::new(kp, 0.0, 0.0, output_limit)
    }

    /// Advances the controller by `dt` seconds with the given error and
    /// returns the clamped output.
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        debug_assert!(dt > 0.0);
        self.integral =
            (self.integral + error * dt).clamp(-self.integral_limit, self.integral_limit);
        let derivative = match self.last_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.last_error = Some(error);
        let out = self.kp * error + self.ki * self.integral + self.kd * derivative;
        out.clamp(-self.output_limit, self.output_limit)
    }

    /// Advances the controller using an externally measured rate for the
    /// derivative term (classic "derivative on measurement" form), which
    /// avoids derivative kick on setpoint changes.
    pub fn update_with_rate(&mut self, error: f64, rate: f64, dt: f64) -> f64 {
        debug_assert!(dt > 0.0);
        self.integral =
            (self.integral + error * dt).clamp(-self.integral_limit, self.integral_limit);
        self.last_error = Some(error);
        let out = self.kp * error + self.ki * self.integral - self.kd * rate;
        out.clamp(-self.output_limit, self.output_limit)
    }

    /// Resets the integral and derivative history (e.g. on mode change).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }

    /// The accumulated integral term (for tests and telemetry).
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_response() {
        let mut pid = Pid::proportional(2.0, 10.0);
        assert_eq!(pid.update(1.0, 0.01), 2.0);
        assert_eq!(pid.update(-3.0, 0.01), -6.0);
    }

    #[test]
    fn output_is_clamped() {
        let mut pid = Pid::proportional(100.0, 1.0);
        assert_eq!(pid.update(5.0, 0.01), 1.0);
        assert_eq!(pid.update(-5.0, 0.01), -1.0);
    }

    #[test]
    fn integral_accumulates_and_saturates() {
        let mut pid = Pid::new(0.0, 1.0, 0.0, 2.0);
        for _ in 0..100 {
            pid.update(1.0, 0.1);
        }
        // Integral limit is half the output limit.
        assert!((pid.integral() - 1.0).abs() < 1e-9);
        assert!((pid.update(1.0, 0.1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn derivative_damps_rising_error() {
        let mut pid = Pid::new(1.0, 0.0, 1.0, 100.0);
        pid.update(0.0, 0.1);
        // Error rose by 1 over 0.1 s -> derivative 10.
        let out = pid.update(1.0, 0.1);
        assert!((out - (1.0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn update_with_rate_subtracts_rate_term() {
        let mut pid = Pid::new(2.0, 0.0, 0.5, 100.0);
        let out = pid.update_with_rate(1.0, 4.0, 0.01);
        assert!((out - (2.0 - 2.0)).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(1.0, 1.0, 1.0, 10.0);
        pid.update(1.0, 0.1);
        pid.update(2.0, 0.1);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        // After reset, derivative term has no history.
        let out = pid.update(1.0, 0.1);
        assert!((out - (1.0 + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn closed_loop_converges_on_first_order_plant() {
        // Plant: x' = u. Controller drives x to 5.
        let mut pid = Pid::new(2.0, 0.2, 0.0, 4.0);
        let mut x = 0.0;
        let dt = 0.01;
        for _ in 0..5000 {
            let u = pid.update(5.0 - x, dt);
            x += u * dt;
        }
        assert!((x - 5.0).abs() < 0.05, "x = {x}");
    }
}
